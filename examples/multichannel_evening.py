#!/usr/bin/env python
"""A multi-program evening: three channels, one audience.

The measured service broadcast several programs; viewers picked one on a
web page and the Fig. 5a audience drop at ~22:00 came from "the ending of
some programs".  This example runs three channels with Zipf-skewed
popularity, a zapping audience, and staggered program endings -- the
platform-wide audience curve shows the partial collapse at each ending
while the surviving channels keep their viewers.

Run:  python examples/multichannel_evening.py
"""

import numpy as np

from repro.analysis import SessionTable
from repro.core.config import SystemConfig
from repro.core.multichannel import MultiChannelDeployment
from repro.experiments.render import render_series
from repro.telemetry.reports import LeaveReason
from repro.workload.surfing import ChannelAudience


def main() -> None:
    horizon = 900.0
    cfg = SystemConfig(n_servers=2)
    deployment = MultiChannelDeployment(3, cfg, seed=11)

    rng = np.random.default_rng(3)
    times = np.sort(rng.uniform(0.0, 0.3 * horizon, 150))
    audience = ChannelAudience(
        deployment, arrival_times=times,
        popularity_skew=1.0, zap_probability=0.25, zap_after_s=90.0,
    )

    # programs end at staggered times; their watchers leave
    def end_program(channel_idx: int) -> None:
        for peer in deployment.channel(channel_idx).peers(alive_only=True):
            peer.leave(LeaveReason.PROGRAM_END)

    deployment.engine.schedule_at(0.6 * horizon, lambda: end_program(2))
    deployment.engine.schedule_at(0.8 * horizon, lambda: end_program(1))

    # sample the platform audience as the evening unfolds
    samples = []

    def sample() -> None:
        samples.append((deployment.engine.now,
                        list(deployment.audience_by_channel())))

    for t in np.arange(30.0, horizon, 30.0):
        deployment.engine.schedule_at(float(t), sample)

    print(f"running 3 channels, {len(times)} viewers, {horizon:.0f} s ...")
    deployment.run(until=horizon)

    ts = [s[0] for s in samples]
    for ch in range(3):
        series = [s[1][ch] for s in samples]
        print(render_series(f"channel {ch} viewers", ts, series, fmt="%.0f"))
    total = [sum(s[1]) for s in samples]
    print(render_series("platform total", ts, total, fmt="%.0f"))

    table = SessionTable.from_log(deployment.merged_log())
    print()
    print(f"  platform sessions : {len(table)} from {len(times)} viewers")
    print(f"  zaps              : {audience.zap_count}")
    print(f"  audience at end   : {deployment.audience_by_channel()}"
          f"  (programs 1 and 2 ended)")


if __name__ == "__main__":
    main()
