#!/usr/bin/env python
"""Peer-adaptation theory vs practice (Section IV.C).

Prints the closed forms of Eqs. 3-6 side by side with micro-simulations
of the actual push scheduler, then shows the consequence the paper draws
from Eq. 6: children of high-degree (contributor-class) parents rarely
lose competitions, which is why the overlay converges to the Fig. 4
shape.

Run:  python examples/adaptation_theory.py
"""

from repro.experiments import (
    validate_convergence_model,
    validate_dynamics_equations,
)


def main() -> None:
    print(validate_dynamics_equations().render())
    print()
    print("Now the macroscopic consequence: overlay convergence under")
    print("random selection (measured vs two-state Markov model).")
    print()
    print(validate_convergence_model(
        rate_per_s=0.3, horizon_s=1000.0, snapshot_every_s=100.0
    ).render())


if __name__ == "__main__":
    main()
