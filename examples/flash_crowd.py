#!/usr/bin/env python
"""Flash crowd: the join storm that stresses a mesh-pull overlay.

Section V.C observes that during flash crowds the mCache fills with
newly joined peers that cannot yet provide stable streams, so join times
stretch and many users retry (Fig. 10b).  This example throws a burst of
arrivals at a small server fleet using the *reference* engine (full
protocol, message latencies) and reports the join-time CDFs and the
retry histogram -- then repeats the run with the paper's suggested
age-biased mCache replacement to show the improvement.

Run:  python examples/flash_crowd.py
"""

from repro.analysis import Cdf, SessionTable
from repro.core.config import SystemConfig
from repro.workload import flash_crowd_storm


def run_once(mcache_replacement: str, seed: int = 7):
    cfg = SystemConfig(n_servers=2, mcache_replacement=mcache_replacement)
    scenario = flash_crowd_storm(
        burst_users_per_s=1.5, horizon_s=600.0, n_servers=2, cfg=cfg
    )
    system, population = scenario.run(seed=seed)
    table = SessionTable.from_log(system.log)
    ready = table.ready_delays()
    return {
        "sessions": len(table),
        "ready_median": Cdf.from_samples(ready).median if ready else float("nan"),
        "ready_p90": Cdf.from_samples(ready).quantile(0.9) if ready else float("nan"),
        "success": population.success_fraction(),
        "retries": dict(sorted(population.retry_histogram().items())),
    }


def main() -> None:
    for policy in ("random", "age"):
        out = run_once(policy)
        print(f"--- mCache replacement: {policy} "
              f"({'deployed' if policy == 'random' else 'paper-suggested'}) ---")
        print(f"  sessions           : {out['sessions']}")
        print(f"  ready time         : median {out['ready_median']:.1f} s, "
              f"p90 {out['ready_p90']:.1f} s")
        print(f"  users ever playing : {out['success'] * 100:.0f}%")
        print(f"  retry histogram    : {out['retries']}")
        print()


if __name__ == "__main__":
    main()
