#!/usr/bin/env python
"""The measurement pipeline end to end: run, dump, reload, analyse.

Demonstrates that the analysis toolkit works from a *log file* alone --
run a system, dump the log server's contents to disk in the deployed
``<arrival> /log?name=value&...`` line format, reload it in a fresh
process-like state, and reproduce the session and QoS statistics.

Run:  python examples/log_pipeline.py
"""

import tempfile
from pathlib import Path

from repro import CoolstreamingSystem, SystemConfig
from repro.analysis import SessionTable, classify_users
from repro.analysis.classification import type_distribution
from repro.analysis.continuity import mean_continuity
from repro.telemetry.server import LogServer


def main() -> None:
    system = CoolstreamingSystem(SystemConfig(n_servers=2), seed=1)
    for user in range(40):
        system.engine.schedule(
            user * 1.5, lambda u=user: system.spawn_peer(user_id=u)
        )
    system.run(until=700.0)

    with tempfile.TemporaryDirectory() as tmp:
        log_path = Path(tmp) / "event.log"
        with open(log_path, "w") as fp:
            lines = system.log.dump(fp)
        size = log_path.stat().st_size
        print(f"dumped {lines} log strings ({size / 1024:.1f} KiB) "
              f"to {log_path.name}")
        print("sample lines:")
        for line in log_path.read_text().splitlines()[:3]:
            print("   ", line)

        with open(log_path) as fp:
            reloaded = LogServer.load(fp)

    assert len(reloaded) == len(system.log)
    table = SessionTable.from_log(reloaded)
    print(f"\nreconstructed {len(table)} sessions "
          f"({len(table.normal_sessions())} normal)")
    print(f"mean continuity (from reloaded log): "
          f"{mean_continuity(reloaded, after=300.0):.4f}")
    dist = type_distribution(classify_users(reloaded))
    print("user types:",
          {k.value: f"{v * 100:.0f}%" for k, v in dist.items() if v > 0})


if __name__ == "__main__":
    main()
