#!/usr/bin/env python
"""Observing a run: metrics, Chrome trace and run manifest for a flash crowd.

The ``repro.obs`` layer measures the *simulator itself* -- counters for
protocol hot spots, per-callback wall-time timers, a Chrome trace of the
event loop -- without touching the paper's telemetry pipeline
(``repro.telemetry``), which only ever sees parsed log strings like the
deployed system's collector did.

Everything activates ambiently: open an ``obs.session(...)`` and any
engine built inside it attaches automatically; no experiment code
changes.  Outside a session the engines run their original,
instrumentation-free hot loops.

Run:  python examples/observed_run.py
"""

import json
import tempfile
from pathlib import Path

import repro.obs as obs
from repro.core.config import SystemConfig
from repro.workload import flash_crowd_storm


def main() -> None:
    outdir = Path(tempfile.mkdtemp(prefix="repro_obs_"))
    metrics = outdir / "metrics.jsonl"
    trace = outdir / "trace.json"

    cfg = SystemConfig(n_servers=2)
    scenario = flash_crowd_storm(
        burst_users_per_s=1.0, horizon_s=300.0, n_servers=2, cfg=cfg
    )

    with obs.session(
        metrics_path=str(metrics),
        trace_path=str(trace),
        progress=True,          # heartbeat lines on stderr while it runs
        progress_interval_s=0.5,
        scenario="flash_crowd_example",
        seed=7,
    ) as ctx:
        system, population = scenario.run(seed=7)
        snapshot = ctx.registry.snapshot()

    # --- what got written -------------------------------------------------
    manifest = json.loads((outdir / "metrics.manifest.json").read_text())
    n_lines = sum(1 for _ in metrics.open())
    n_spans = len(json.loads(trace.read_text())["traceEvents"])

    print("observed flash crowd (reference engine)")
    print(f"  sessions spawned     : {system.sessions_spawned}")
    print(f"  users ever playing   : {population.success_fraction() * 100:.0f}%")
    print()
    print("protocol hot-spot counters")
    for name in (
        "core.partnerships_formed", "core.parent_switches",
        "core.bm_exchanges", "core.gossip_messages",
        "engine.events_executed",
    ):
        print(f"  {name:28s}: {snapshot.get(name, 0)}")
    print()
    print("artefacts")
    print(f"  metrics time series  : {metrics} ({n_lines} snapshots)")
    print(f"  Chrome trace         : {trace} ({n_spans} events;"
          " open in chrome://tracing or ui.perfetto.dev)")
    print(f"  run manifest         : seed={manifest['seed']}"
          f" config_hash={manifest['config_hash']}"
          f" git_rev={str(manifest['git_rev'])[:12]}"
          f" wall={manifest['wall_time_s']:.1f}s")


if __name__ == "__main__":
    main()
