#!/usr/bin/env python
"""Cross-engine parity: one scenario, both engines, side by side.

``repro.runtime`` samples the workload realization once from seed-derived
named RNG streams and feeds the *same* audience to the event-driven
reference engine and the vectorized fluid engine.  This script runs a
steady audience on both, prints the per-engine metric snapshots, and
then the parity report the CI smoke job gates on -- peak concurrent
users, mean continuity and retry-session fraction compared within
calibrated tolerances.

Run:  python examples/parity_run.py              (about a minute)
      python examples/parity_run.py --seed 3
"""

import sys

from repro.runtime import run_parity, run_scenario
from repro.workload.scenarios import steady_audience


def main() -> int:
    seed = 0
    if "--seed" in sys.argv:
        seed = int(sys.argv[sys.argv.index("--seed") + 1])

    scenario = steady_audience(rate_per_s=0.4, horizon_s=600.0, n_servers=3)

    # -- the same scenario, either engine -------------------------------
    print(f"scenario: {scenario.name}, horizon {scenario.horizon_s:.0f} s, "
          f"seed {seed}")
    print()
    for engine in ("detailed", "fast"):
        res = run_scenario(scenario, seed=seed, engine=engine)
        m = res.metrics()
        print(f"[{engine}] arrived users: {res.workload.n_users}")
        for key in ("concurrent_users", "playing_users", "mean_continuity",
                    "success_fraction"):
            print(f"[{engine}]   {key}: {m[key]:.4f}")
        print()

    # -- the parity harness the CI smoke job runs -----------------------
    report = run_parity(scenario, seed=seed)
    print(report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
