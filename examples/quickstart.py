#!/usr/bin/env python
"""Quickstart: run a small Coolstreaming system and read its telemetry.

Builds a 2-server deployment, lets 30 users join over a minute, streams
for five simulated minutes, then answers the three questions the paper's
measurement pipeline answers: how fast did players get ready, how good
was playback, and who did the uploading.

Run:  python examples/quickstart.py
"""

from repro import CoolstreamingSystem, SystemConfig
from repro.analysis import Cdf, SessionTable, classify_users
from repro.analysis.contribution import contributor_class_share

def main() -> None:
    cfg = SystemConfig(n_servers=2)
    system = CoolstreamingSystem(cfg, seed=42)

    # 30 users join over the first 60 seconds
    for user in range(30):
        system.engine.schedule(
            user * 2.0, lambda u=user: system.spawn_peer(user_id=u)
        )

    system.run(until=360.0)

    print("--- simulator view ---")
    for key, value in system.summary().items():
        print(f"  {key:>18s} : {value:,.2f}")

    # Everything below uses only the log server, like the paper did.
    table = SessionTable.from_log(system.log)
    ready = table.ready_delays()
    print("\n--- from the log server ---")
    print(f"  sessions reconstructed : {len(table)}")
    if ready:
        cdf = Cdf.from_samples(ready)
        print(f"  media-player-ready time: median {cdf.median:.1f} s, "
              f"p90 {cdf.quantile(0.9):.1f} s")
    types = classify_users(system.log)
    pop, up = contributor_class_share(system.log, types)
    print(f"  contributor-class peers: {pop * 100:.0f}% of users, "
          f"{up * 100:.0f}% of uploaded bytes")
    print("\nfirst log line:")
    print(" ", system.log.entries()[0].to_line())


if __name__ == "__main__":
    main()
