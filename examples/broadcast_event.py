#!/usr/bin/env python
"""The evening broadcast: a scaled rerun of the 2006-09-27 measurement.

Uses the vectorized engine to push thousands of concurrent viewers
through a diurnal evening: steep ramp, prime-time plateau, program-end
cliff.  Prints the Fig. 5-style audience curve, the Fig. 8-style
continuity summary and the Fig. 10-style session statistics -- all
derived from the log server, not simulator internals.

Run:  python examples/broadcast_event.py          (about a minute)
      python examples/broadcast_event.py --big    (several minutes)
"""

import sys


from repro.analysis import Cdf, SessionTable
from repro.analysis.continuity import continuity_timeseries, mean_continuity
from repro.core.config import SystemConfig
from repro.experiments.render import render_series
from repro.fastsim import FastSimulation
from repro.workload.arrivals import FlashCrowd
from repro.workload.sessions import SessionDurationModel


def main() -> None:
    big = "--big" in sys.argv
    horizon = 7200.0 if big else 2400.0
    peak_rate = 4.0 if big else 2.0

    cfg = SystemConfig(n_servers=6 if big else 4)
    sim = FastSimulation(cfg, seed=2006_09_27 % 2**31, capacity_hint=16384)
    rng = sim.rng.stream("workload.arrivals")

    arrivals = FlashCrowd(
        start_s=0.0, ramp_s=0.25 * horizon, hold_s=0.4 * horizon,
        decay_s=0.1 * horizon, peak_rate=peak_rate, base_rate=0.05,
    )
    times = arrivals.sample(horizon, rng)
    durations = SessionDurationModel(
        lognorm_median_s=0.2 * horizon, pareto_scale_s=0.6 * horizon
    ).sample(sim.rng.stream("workload.durations"), len(times))
    sim.add_arrivals(times, durations)
    sim.add_program_ending(0.8 * horizon, leave_probability=0.75)

    print(f"running {len(times)} arrivals over {horizon:.0f} simulated "
          f"seconds...")
    sim.run(until=horizon)

    table = SessionTable.from_log(sim.log)
    grid, counts = table.concurrent_users(step_s=horizon / 240, t1=horizon)
    print()
    print(render_series("concurrent users", grid, counts, fmt="%.0f"))
    centers, cont, _n = continuity_timeseries(sim.log, bin_s=300.0, t1=horizon)
    print(render_series("mean continuity", centers, cont, fmt="%.3f"))
    print()
    print(f"  peak concurrent users : {int(counts.max())}")
    print(f"  sessions / users      : {len(table)} / {len(times)}")
    ready = table.ready_delays()
    print(f"  ready time            : median "
          f"{Cdf.from_samples(ready).median:.0f} s")
    print(f"  steady continuity     : "
          f"{mean_continuity(sim.log, after=0.3 * horizon):.4f}")
    print(f"  <1 min sessions       : "
          f"{table.short_session_fraction(60.0) * 100:.0f}%")
    drop_t = 0.8 * horizon + 0.05 * horizon
    at_drop = counts[min(len(counts) - 1, int(drop_t / (horizon / 240)))]
    print(f"  audience kept after program end: "
          f"{at_drop / max(1, counts.max()) * 100:.0f}%")


if __name__ == "__main__":
    main()
