"""Content-addressed result store + crash-safe campaign journal.

Layout under the store root (default ``.campaign/``)::

    objects/<k0k1>/<key>.json           # run payload (metrics, blocks, notes)
    objects/<k0k1>/<key>.manifest.json  # provenance sidecar (git rev, host...)
    journal.jsonl                       # append-only event log

Payloads are written atomically (temp file + ``os.replace``) so a crash
never leaves a half-written object; the journal is appended with
flush+fsync per record and read tolerantly (a torn final line from a
crash is ignored), which is what makes ``--resume`` safe: after a crash
the store holds exactly the completed runs, and re-running the same spec
executes only the missing ones.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["ResultStore"]

DEFAULT_STORE_DIR = ".campaign"


class ResultStore:
    """On-disk cache of run results keyed by content hash."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.objects_dir = self.root / "objects"
        self.journal_path = self.root / "journal.jsonl"

    # --- object cache -----------------------------------------------------
    def object_path(self, key: str) -> Path:
        """Payload path for ``key`` (two-level fan-out like git)."""
        return self.objects_dir / key[:2] / f"{key}.json"

    def manifest_path(self, key: str) -> Path:
        """Provenance sidecar path for ``key``."""
        return self.objects_dir / key[:2] / f"{key}.manifest.json"

    def has(self, key: str) -> bool:
        """Whether a completed result for ``key`` is cached."""
        return self.object_path(key).is_file()

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Cached payload for ``key`` or None (corrupt objects read as
        missing rather than poisoning a campaign)."""
        path = self.object_path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None

    def put(self, key: str, payload: Dict[str, Any],
            manifest: Optional[Dict[str, Any]] = None) -> Path:
        """Atomically persist ``payload`` (and its manifest sidecar)."""
        path = self.object_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        _atomic_write_json(path, payload)
        if manifest is not None:
            _atomic_write_json(self.manifest_path(key), manifest)
        return path

    def delete(self, key: str) -> bool:
        """Drop one cached result; returns whether it existed."""
        existed = False
        for path in (self.object_path(key), self.manifest_path(key)):
            try:
                path.unlink()
                existed = True
            except FileNotFoundError:
                pass
        return existed

    def keys(self) -> Iterator[str]:
        """Iterate all cached run keys."""
        if not self.objects_dir.is_dir():
            return
        for path in sorted(self.objects_dir.glob("*/*.json")):
            if not path.name.endswith(".manifest.json"):
                yield path.stem

    def clean(self) -> int:
        """Remove every object and the journal; returns objects removed."""
        n = 0
        for key in list(self.keys()):
            if self.delete(key):
                n += 1
        try:
            self.journal_path.unlink()
        except FileNotFoundError:
            pass
        # prune the (now empty) fan-out dirs
        if self.objects_dir.is_dir():
            for sub in sorted(self.objects_dir.iterdir()):
                try:
                    sub.rmdir()
                except OSError:
                    pass
            try:
                self.objects_dir.rmdir()
            except OSError:
                pass
        return n

    # --- journal ----------------------------------------------------------
    def journal(self, event: str, **fields: Any) -> None:
        """Append one event record; fsync'd so a crash loses at most the
        record being written (never corrupts earlier ones)."""
        record = {"ts": time.time(), "event": event}  # repro: noqa[DET002] journal timestamp metadata, excluded from payload hashing
        record.update(fields)
        self.root.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True, default=str)
        with open(self.journal_path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def read_journal(self) -> List[Dict[str, Any]]:
        """All intact journal records (a torn final line is skipped)."""
        try:
            text = self.journal_path.read_text(encoding="utf-8")
        except OSError:
            return []
        records = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # torn write from a crash
        return records

    def journal_status(self) -> Dict[str, Dict[str, Any]]:
        """Fold the journal into per-campaign status:
        ``{campaign_key: {name, counts by final run state, last_ts}}``.

        A run's state is its *latest* event (``start`` with no later
        ``done``/``failed``/``cached`` means the process died mid-run).
        """
        campaigns: Dict[str, Dict[str, Any]] = {}
        for rec in self.read_journal():
            ck = rec.get("campaign")
            if ck is None:
                continue
            info = campaigns.setdefault(ck, {
                "name": rec.get("name"), "runs": {}, "last_ts": 0.0,
                "interrupted": False,
            })
            if rec.get("name"):
                info["name"] = rec.get("name")
            info["last_ts"] = max(info["last_ts"], float(rec.get("ts", 0.0)))
            if rec.get("event") == "interrupted":
                info["interrupted"] = True
            run = rec.get("run")
            if run is not None:
                info["runs"][run] = rec.get("event")
        out: Dict[str, Dict[str, Any]] = {}
        for ck, info in campaigns.items():
            counts: Dict[str, int] = {}
            for state in info["runs"].values():
                counts[state] = counts.get(state, 0) + 1
            out[ck] = {
                "name": info["name"],
                "total": len(info["runs"]),
                "counts": counts,
                "last_ts": info["last_ts"],
                "interrupted": info["interrupted"],
            }
        return out


def _atomic_write_json(path: Path, data: Dict[str, Any]) -> None:
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2, sort_keys=True, default=str)
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
