"""``python -m repro campaign`` — run/status/clean experiment campaigns.

Usage::

    python -m repro campaign run spec.json --jobs 4 --store .campaign
    python -m repro campaign run spec.json --resume --progress
    python -m repro campaign run spec.json --log-spill /tmp/spill
    python -m repro campaign status --store .campaign
    python -m repro campaign status --follow      # live until terminal
    python -m repro campaign clean --store .campaign

``run`` executes the spec's grid, skipping runs already present in the
content-addressed store; ``--force`` re-executes everything, ``--resume``
requires a prior journal for the same campaign (the crash-recovery
workflow: identical spec, only missing runs execute).  Observability
follows the PR-1 conventions: ``--metrics-out`` streams heartbeat
snapshots (runs completed/cached/failed gauges) as JSONL with a manifest
sidecar, ``--progress`` prints campaign heartbeat lines to stderr.

Exit codes: 0 success, 1 any failed run or backend-startup failure,
2 bad spec / unknown experiment, 130 interrupted (shared convention
with ``python -m repro`` and ``python -m repro parity``).
"""

from __future__ import annotations

import argparse
import contextlib
import sys

import repro.obs as obs
from repro.campaign.aggregate import to_replication, write_metrics_json
from repro.campaign.runner import run_campaign
from repro.campaign.spec import CampaignSpec, SpecError
from repro.campaign.store import DEFAULT_STORE_DIR, ResultStore
from repro.experiments.render import render_table
from repro.runtime.backends import BackendStartupError

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro campaign",
        description="Parallel experiment campaigns with content-addressed "
                    "result caching and crash-safe resume.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="execute a campaign spec")
    p_run.add_argument("spec", help="JSON campaign spec file")
    p_run.add_argument("--jobs", type=int, default=None,
                       help="worker processes (default: cpu count; "
                            "1 = in-process)")
    p_run.add_argument("--store", default=DEFAULT_STORE_DIR,
                       help="result store directory (default %(default)s)")
    p_run.add_argument("--force", action="store_true",
                       help="re-execute runs even when cached")
    p_run.add_argument("--resume", action="store_true",
                       help="continue a previously journalled campaign "
                            "(error if none exists)")
    p_run.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="per-run wall-clock timeout in seconds")
    p_run.add_argument("--retries", type=int, default=2,
                       help="max retries for transient failures "
                            "(default %(default)s)")
    p_run.add_argument("--backoff", type=float, default=0.5, metavar="S",
                       help="base of the exponential retry backoff "
                            "(default %(default)ss)")
    p_run.add_argument("--out", default=None, metavar="PATH",
                       help="write the figure-ready campaign JSON artifact")
    p_run.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write a JSONL metrics time series (plus "
                            "*.manifest.json sidecar); view live with "
                            "'python -m repro watch PATH'")
    p_run.add_argument("--progress", action="store_true",
                       help="print campaign heartbeat lines to stderr")
    p_run.add_argument("--log-spill", default=None, metavar="DIR",
                       help="spill every run's telemetry log to gzip chunks "
                            "under DIR (storage-only; never enters run keys; "
                            "overrides the spec's 'log_spill' key)")
    p_run.add_argument("--quiet", action="store_true",
                       help="suppress the per-run table on stdout")

    p_status = sub.add_parser("status", help="show journalled campaigns")
    p_status.add_argument("--store", default=DEFAULT_STORE_DIR)
    p_status.add_argument("--follow", action="store_true",
                          help="re-poll the journal until every campaign "
                               "reaches a terminal state")
    p_status.add_argument("--interval", type=float, default=2.0, metavar="S",
                          help="poll interval with --follow "
                               "(default %(default)ss)")

    p_clean = sub.add_parser("clean", help="drop the store and journal")
    p_clean.add_argument("--store", default=DEFAULT_STORE_DIR)
    return parser


def _cmd_run(args) -> int:
    try:
        spec = CampaignSpec.from_file(args.spec)
    except SpecError as exc:
        print(f"error: bad spec: {exc}", file=sys.stderr)
        return 2
    if args.log_spill:
        spec.log_spill = args.log_spill
    store = ResultStore(args.store)

    if args.resume:
        status = store.journal_status().get(spec.campaign_key)
        if status is None:
            print(f"error: --resume: no journalled campaign matches "
                  f"{args.spec} in {store.root}", file=sys.stderr)
            return 2
        done = sum(n for ev, n in status["counts"].items()
                   if ev in ("done", "cached"))
        print(f"resuming campaign {spec.name!r}: {done}/{len(spec.runs)} "
              f"runs already complete", file=sys.stderr)

    if args.metrics_out:
        obs_session = obs.session(
            metrics_path=args.metrics_out,
            progress=False,  # the campaign prints its own heartbeat
            scenario=f"campaign:{spec.name}",
        )
    else:
        obs_session = contextlib.nullcontext()

    try:
        with obs_session:
            report = run_campaign(
                spec, store,
                jobs=args.jobs,
                timeout_s=args.timeout,
                retries=args.retries,
                backoff_s=args.backoff,
                force=args.force,
                progress=args.progress,
            )
    except SpecError as exc:  # unknown experiment surfaces pre-execution
        print(f"error: bad spec: {exc}", file=sys.stderr)
        return 2
    except BackendStartupError as exc:
        print(f"error: backend startup: {exc}", file=sys.stderr)
        return 1

    if args.out:
        write_metrics_json(report, args.out)
    if not args.quiet:
        rows = []
        for r in report.results:
            rows.append((
                r.spec.experiment, r.spec.seed, r.status, r.attempts,
                f"{r.wall_time_s:.2f}",
                r.error or ("-" if r.status != "cached" else "(cache)"),
            ))
        print(render_table(
            ("experiment", "seed", "status", "attempts", "wall (s)", "info"),
            rows,
        ))
        experiments = {r.spec.experiment for r in report.results
                       if r.status in ("done", "cached")}
        if len(experiments) == 1 and report.results:
            with contextlib.suppress(ValueError):
                print()
                print(to_replication(report).render())
    print(report.summary_line())
    if report.interrupted:
        return 130
    return 0 if report.failed == 0 else 1


def _status_rows(store: ResultStore):
    """(table rows, cached-object count, any-campaign-still-running)."""
    campaigns = store.journal_status()
    n_objects = sum(1 for _ in store.keys())
    rows = []
    any_running = False
    for ck, info in sorted(campaigns.items(), key=lambda kv: kv[1]["last_ts"]):
        counts = info["counts"]
        state = "interrupted" if info["interrupted"] else (
            "incomplete" if counts.get("start", 0) or counts.get("retry", 0)
            else "complete"
        )
        if state == "incomplete":
            any_running = True
        rows.append((
            info["name"], ck[:12], info["total"],
            counts.get("done", 0), counts.get("cached", 0),
            counts.get("failed", 0), state,
        ))
    return rows, n_objects, any_running


def _print_status(store: ResultStore, rows, n_objects) -> None:
    if not rows:
        print(f"no journalled campaigns in {store.root} "
              f"({n_objects} cached objects)")
        return
    print(render_table(
        ("campaign", "key", "runs", "done", "cached", "failed", "state"),
        rows,
    ))
    print(f"{n_objects} cached objects in {store.root}")


def _cmd_status(args) -> int:
    store = ResultStore(args.store)
    if not getattr(args, "follow", False):
        rows, n_objects, _ = _status_rows(store)
        _print_status(store, rows, n_objects)
        return 0
    if args.interval <= 0:
        print("error: status: --interval must be positive", file=sys.stderr)
        return 2
    # follow mode: re-render whenever the journal changes, stop once every
    # campaign is terminal (complete or interrupted)
    import time

    last_rows = None
    while True:
        rows, n_objects, any_running = _status_rows(store)
        if rows != last_rows:
            _print_status(store, rows, n_objects)
            last_rows = rows
        if not any_running:
            return 0
        time.sleep(args.interval)  # repro: noqa[DET002] status-poll pacing, no simulation state


def _cmd_clean(args) -> int:
    store = ResultStore(args.store)
    n = store.clean()
    print(f"removed {n} cached objects (and the journal) from {store.root}")
    return 0


def main(argv=None) -> int:
    """Campaign CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "status":
            return _cmd_status(args)
        if args.command == "clean":
            return _cmd_clean(args)
    except KeyboardInterrupt:
        print("error: interrupted", file=sys.stderr)
        return 130
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":
    sys.exit(main())
