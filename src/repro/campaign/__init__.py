"""repro.campaign — parallel experiment-campaign orchestration.

The paper's evaluation is a *campaign*: sweeps over system size and join
rate (Fig. 9), per-period distributions over a simulated day (Fig. 7),
and seed replication behind every claim.  This package fans those
independent runs out across worker processes, caches results by content
hash, and survives crashes:

* :mod:`repro.campaign.spec` — a campaign as a grid of runs
  (experiment × overrides × seeds), each keyed by a canonical content
  hash of (experiment, resolved config, seed, code version);
* :mod:`repro.campaign.runner` — ProcessPool scheduling with per-run
  timeout, bounded retry with exponential backoff, and graceful Ctrl-C
  draining; ``jobs=1`` is the bit-identical in-process reference path;
* :mod:`repro.campaign.store` — content-addressed on-disk cache plus a
  crash-safe JSONL journal enabling ``--resume``;
* :mod:`repro.campaign.aggregate` — folds per-run metrics into the
  existing ``MetricSummary`` / ``ReplicationResult`` machinery and emits
  figure-ready artifacts.

CLI: ``python -m repro campaign run|status|clean`` (see
:mod:`repro.campaign.cli`).
"""

from repro.campaign.aggregate import (
    report_to_dict,
    successful_results,
    sweep_series,
    to_replication,
    write_metrics_json,
)
from repro.campaign.registry import (
    CAMPAIGN_EXPERIMENTS,
    UnknownExperimentError,
    experiment_ref,
    resolve_experiment,
)
from repro.campaign.runner import (
    DEFAULT_TRANSIENT,
    CampaignReport,
    RunResult,
    RunTimeout,
    run_campaign,
)
from repro.campaign.spec import CampaignSpec, RunSpec, SpecError, run_key, sweep
from repro.campaign.store import ResultStore

__all__ = [
    "CampaignSpec", "RunSpec", "SpecError", "run_key", "sweep",
    "ResultStore",
    "run_campaign", "CampaignReport", "RunResult", "RunTimeout",
    "DEFAULT_TRANSIENT",
    "CAMPAIGN_EXPERIMENTS", "UnknownExperimentError", "resolve_experiment",
    "experiment_ref",
    "successful_results", "to_replication", "sweep_series",
    "report_to_dict", "write_metrics_json",
]
