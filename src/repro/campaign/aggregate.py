"""Fold per-run campaign results into figure-ready aggregates.

The campaign executor returns raw per-run payloads; this module turns
them into the same :class:`~repro.experiments.replication.MetricSummary`
/ :class:`~repro.experiments.replication.ReplicationResult` objects the
sequential ``replicate()`` path produces (including per-seed raw
samples), plus sweep series (param value → metric summary) and a JSON
artifact for plotting pipelines.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.campaign.runner import CampaignReport, RunResult
from repro.experiments.replication import MetricSummary, ReplicationResult

__all__ = [
    "successful_results",
    "to_replication",
    "sweep_series",
    "report_to_dict",
    "write_metrics_json",
]


def successful_results(report: CampaignReport) -> List[RunResult]:
    """Results with a payload (executed or cache-served), spec order."""
    return [r for r in report.results if r.status in ("done", "cached")]


def to_replication(
    report: CampaignReport,
    *,
    experiment: Optional[str] = None,
    name: str = "",
) -> ReplicationResult:
    """Aggregate a (single-experiment) campaign across seeds.

    Mirrors ``replicate()``: one sample per seed per metric, NaN where a
    run lacks the metric, summaries via :class:`MetricSummary`.  With a
    multi-experiment campaign pass ``experiment=`` to select one.
    """
    rows = successful_results(report)
    if experiment is not None:
        rows = [r for r in rows if r.spec.experiment == experiment]
    if not rows:
        raise ValueError("campaign produced no successful runs to aggregate")
    experiments = sorted({r.spec.experiment for r in rows})
    if len(experiments) > 1:
        raise ValueError(
            f"campaign mixes experiments {experiments}; pass experiment="
        )
    seeds = [r.spec.seed for r in rows]
    per_seed = [r.metrics for r in rows]
    metric_names: List[str] = []
    for m in per_seed:
        for key in m:
            if key not in metric_names:
                metric_names.append(key)
    out = ReplicationResult(
        experiment=name or experiments[0], seeds=list(seeds)
    )
    for key in metric_names:
        values = [float(m.get(key, math.nan)) for m in per_seed]
        out.samples[key] = values
        out.summaries[key] = MetricSummary.from_samples(key, values)
    return out


def sweep_series(
    report: CampaignReport, param: str, metric: str
) -> Tuple[List[Any], List[MetricSummary]]:
    """Figure-ready sweep: for each value of ``overrides[param]`` (sorted),
    the cross-seed summary of ``metric``.  Runs missing the param are
    ignored (a mixed campaign may sweep several axes)."""
    buckets: Dict[Any, List[float]] = {}
    for r in successful_results(report):
        if param not in r.spec.overrides:
            continue
        value = r.spec.overrides[param]
        buckets.setdefault(value, []).append(
            float(r.metrics.get(metric, math.nan))
        )
    xs = sorted(buckets)
    summaries = [
        MetricSummary.from_samples(f"{metric}@{param}={x}", buckets[x])
        for x in xs
    ]
    return xs, summaries


def report_to_dict(report: CampaignReport) -> Dict[str, Any]:
    """Machine-readable form of a campaign report (per-run metrics kept)."""
    return {
        "campaign": report.spec.campaign_key,
        "name": report.spec.name,
        "code_version": report.spec.code_version,
        "jobs": report.jobs,
        "wall_time_s": report.wall_time_s,
        "interrupted": report.interrupted,
        "counts": {
            "total": len(report.spec.runs),
            "executed": report.executed,
            "cached": report.cached,
            "failed": report.failed,
        },
        "runs": [
            {
                "experiment": r.spec.experiment,
                "seed": r.spec.seed,
                "overrides": dict(r.spec.overrides),
                "key": r.spec.key,
                "status": r.status,
                "attempts": r.attempts,
                "wall_time_s": r.wall_time_s,
                "error": r.error,
                "metrics": r.metrics,
            }
            for r in report.results
        ],
    }


def write_metrics_json(report: CampaignReport, path) -> Path:
    """Write the figure-ready JSON artifact of a campaign; returns path."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    with open(p, "w", encoding="utf-8") as fh:
        json.dump(report_to_dict(report), fh, indent=2, sort_keys=True,
                  default=str)
        fh.write("\n")
    return p
