"""Experiment registry: how workers resolve a run's callable by name.

Campaign runs carry only a *string* experiment reference so that specs
are serialisable and worker processes can re-resolve the callable on
their side.  Two forms are accepted:

* a short registry name (``"fig3"``, ``"fig9_size"``, ...) listed in
  :data:`CAMPAIGN_EXPERIMENTS`;
* a ``"module:qualname"`` path to any importable callable accepting a
  ``seed`` keyword and returning a
  :class:`~repro.experiments.render.FigureResult`.

The registered callables are exactly the in-process figure functions —
a campaign worker therefore seeds :class:`~repro.sim.rng.RngHub` exactly
as a sequential call does, which is what makes parallel runs bit-identical
to ``--jobs 1``.
"""

from __future__ import annotations

import importlib
from typing import Callable, Dict

from repro.campaign.spec import SpecError
from repro.experiments.figures import (
    fig3_user_types_and_contribution,
    fig4_overlay_structure,
    fig5_user_evolution,
    fig6_join_time_cdfs,
    fig7_ready_time_by_period,
    fig8_continuity_by_type,
    fig9_rate_point,
    fig9_scalability,
    fig9_size_point,
    fig10_sessions_and_retries,
)
from repro.experiments.model_validation import (
    validate_convergence_model,
    validate_dynamics_equations,
)

__all__ = ["CAMPAIGN_EXPERIMENTS", "UnknownExperimentError",
           "resolve_experiment", "experiment_ref"]


class UnknownExperimentError(SpecError):
    """The experiment reference cannot be resolved (CLI exit code 2)."""


CAMPAIGN_EXPERIMENTS: Dict[str, Callable] = {
    "fig3": fig3_user_types_and_contribution,
    "fig4": fig4_overlay_structure,
    "fig5": fig5_user_evolution,
    "fig6": fig6_join_time_cdfs,
    "fig7": fig7_ready_time_by_period,
    "fig8": fig8_continuity_by_type,
    "fig9": fig9_scalability,
    "fig9_size": fig9_size_point,
    "fig9_rate": fig9_rate_point,
    "fig10": fig10_sessions_and_retries,
    "model": validate_dynamics_equations,
    "convergence": validate_convergence_model,
}


def resolve_experiment(ref: str) -> Callable:
    """Resolve an experiment reference to its callable.

    Registry names win; otherwise ``module:qualname`` is imported.  Raises
    :class:`UnknownExperimentError` on anything unresolvable.
    """
    fn = CAMPAIGN_EXPERIMENTS.get(ref)
    if fn is not None:
        return fn
    if ":" in ref:
        mod_name, _, qualname = ref.partition(":")
        try:
            mod = importlib.import_module(mod_name)
        except ImportError as exc:
            raise UnknownExperimentError(
                f"cannot import experiment module {mod_name!r}: {exc}"
            ) from exc
        obj = mod
        for part in qualname.split("."):
            obj = getattr(obj, part, None)
            if obj is None:
                raise UnknownExperimentError(
                    f"no callable {qualname!r} in module {mod_name!r}"
                )
        if not callable(obj):
            raise UnknownExperimentError(f"{ref!r} is not callable")
        return obj
    raise UnknownExperimentError(
        f"unknown experiment {ref!r}; registry names: "
        f"{', '.join(sorted(CAMPAIGN_EXPERIMENTS))} "
        f"(or use 'module:qualname')"
    )


def experiment_ref(fn: Callable) -> str:
    """The canonical string reference for a callable.

    Prefers a registry name; falls back to ``module:qualname``, verifying
    it round-trips to the same object (closures and lambdas do not and are
    rejected — they cannot be re-resolved inside a worker process).
    """
    for name, registered in CAMPAIGN_EXPERIMENTS.items():
        if registered is fn:
            return name
    mod = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", "")
    ref = f"{mod}:{qualname}"
    if not mod or "<" in qualname:
        raise UnknownExperimentError(
            f"experiment {fn!r} is not importable by name; campaign workers "
            f"need a module-level callable"
        )
    if resolve_experiment(ref) is not fn:
        raise UnknownExperimentError(
            f"experiment reference {ref!r} does not round-trip to {fn!r}"
        )
    return ref
