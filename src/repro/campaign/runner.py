"""Parallel campaign executor.

Schedules a :class:`~repro.campaign.spec.CampaignSpec`'s runs onto a
``ProcessPoolExecutor`` (``jobs=1`` short-circuits to in-process
execution — the reference path parallel runs must be bit-identical to).
Features:

* **content-addressed caching** — runs whose key already exists in the
  :class:`~repro.campaign.store.ResultStore` are returned without
  executing anything (``force=True`` bypasses);
* **per-run timeout** via ``SIGALRM`` inside the worker (POSIX; no-op
  where unavailable);
* **bounded retry with exponential backoff** for *transient* failures
  (classified by exception type name, so OS-level hiccups retry while a
  deterministic ``ValueError`` fails fast);
* **crash-safe journal** — every start/done/failed/cached transition is
  fsync'd, so an interrupted campaign resumes from exactly the completed
  set;
* **graceful Ctrl-C draining** — stop submitting, let in-flight runs
  finish, journal the interruption, return a partial report.

Workers resolve the experiment by name through
:mod:`repro.campaign.registry` and call the very same figure function the
sequential path calls, with the same seed — RngHub seeding is therefore
identical and per-run metrics are bit-identical across ``--jobs`` values.
"""

from __future__ import annotations

import os
import platform
import signal
import sys
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import multiprocessing

import repro.obs as obs
from repro.campaign.registry import resolve_experiment
from repro.campaign.spec import CampaignSpec, RunSpec
from repro.campaign.store import ResultStore

__all__ = [
    "DEFAULT_TRANSIENT",
    "RunTimeout",
    "RunResult",
    "CampaignReport",
    "run_campaign",
]

# exception type names (anywhere in the MRO) treated as transient, i.e.
# worth a bounded retry with backoff
DEFAULT_TRANSIENT: Tuple[str, ...] = (
    "OSError", "ConnectionError", "MemoryError", "BrokenProcessPool",
    "TransientRunError",
)


class RunTimeout(Exception):
    """A run exceeded its per-run wall-clock budget (not transient:
    re-running the same deterministic run would time out again)."""


@dataclass
class RunResult:
    """Outcome of one campaign run."""

    spec: RunSpec
    status: str  # "done" | "cached" | "failed"
    payload: Optional[Dict[str, Any]] = None
    attempts: int = 1
    wall_time_s: float = 0.0
    error: Optional[str] = None

    @property
    def metrics(self) -> Dict[str, float]:
        """The run's metric dict ({} when failed)."""
        if not self.payload:
            return {}
        return dict(self.payload.get("metrics", {}))


@dataclass
class CampaignReport:
    """Everything a finished (or interrupted) campaign produced."""

    spec: CampaignSpec
    results: List[RunResult] = field(default_factory=list)
    wall_time_s: float = 0.0
    jobs: int = 1
    interrupted: bool = False

    def _count(self, status: str) -> int:
        return sum(1 for r in self.results if r.status == status)

    @property
    def executed(self) -> int:
        """Runs actually executed this invocation."""
        return self._count("done")

    @property
    def cached(self) -> int:
        """Runs satisfied from the result store."""
        return self._count("cached")

    @property
    def failed(self) -> int:
        """Runs that exhausted their retries (or failed fatally)."""
        return self._count("failed")

    @property
    def ok(self) -> bool:
        """Campaign fully succeeded (nothing failed, nothing skipped)."""
        return (not self.interrupted and self.failed == 0
                and len(self.results) == len(self.spec.runs))

    def summary_line(self) -> str:
        """One-line outcome, e.g. for the CLI and heartbeats."""
        return (f"campaign {self.spec.name}: {len(self.spec.runs)} runs: "
                f"{self.executed} executed, {self.cached} cached, "
                f"{self.failed} failed in {self.wall_time_s:.1f}s "
                f"(jobs={self.jobs})"
                + (" [interrupted]" if self.interrupted else ""))


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------
def _worker_init() -> None:
    """Pool initializer: forked workers inherit the parent's ambient obs
    session, whose registry describes the *parent* process — clear it so
    worker runs neither double-count nor race the parent's exporters."""
    obs.deactivate()


@contextmanager
def _alarm(timeout_s: Optional[float]):
    """Raise :class:`RunTimeout` after ``timeout_s`` wall seconds
    (SIGALRM; silently a no-op off the main thread or off POSIX)."""
    usable = (
        timeout_s is not None and timeout_s > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _on_alarm(signum, frame):
        raise RunTimeout(f"run exceeded {timeout_s:g}s")

    old = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, float(timeout_s))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, old)


def _payload_from(result: Any) -> Dict[str, Any]:
    """Serialise an experiment's return value into the stored payload."""
    to_dict = getattr(result, "to_dict", None)
    if callable(to_dict):
        payload = dict(to_dict())
        blocks = getattr(result, "blocks", None)
        if blocks:
            payload["blocks"] = list(blocks)
        payload["metrics"] = {
            k: float(v) for k, v in payload.get("metrics", {}).items()
        }
        return payload
    if isinstance(result, Mapping) and "metrics" in result:
        return dict(result)
    raise TypeError(
        f"experiment returned {type(result).__name__}; expected a "
        f"FigureResult (or a mapping with a 'metrics' key)"
    )


def _execute_run(
    experiment: str, seed: int, overrides: Mapping[str, Any],
    timeout_s: Optional[float],
) -> Dict[str, Any]:
    """Run one experiment (in a worker or, for jobs=1, in-process) and
    return an outcome dict — exceptions are captured, never propagated, so
    the scheduling loop owns the retry decision."""
    t0 = perf_counter()  # repro: noqa[DET002] orchestration wall time, not simulation state
    try:
        fn = resolve_experiment(experiment)
        with _alarm(timeout_s):
            result = fn(seed=int(seed), **dict(overrides))
        # timing stays OUT of the payload: the stored object is a pure
        # function of (experiment, overrides, seed, code), byte-identical
        # across runs and worker counts; wall time goes in the sidecar
        return {"ok": True, "payload": _payload_from(result),
                "wall_time_s": perf_counter() - t0}  # repro: noqa[DET002] orchestration wall time, not simulation state
    except (KeyboardInterrupt, SystemExit):
        raise
    except BaseException as exc:
        return {
            "ok": False,
            "error": f"{type(exc).__name__}: {exc}",
            "error_types": [c.__name__ for c in type(exc).__mro__],
            "wall_time_s": perf_counter() - t0,  # repro: noqa[DET002] orchestration wall time, not simulation state
        }


# ---------------------------------------------------------------------------
# scheduler
# ---------------------------------------------------------------------------
class _Heartbeat:
    """Wall-clock-throttled progress line + obs counter bridge."""

    def __init__(self, spec: CampaignSpec, total: int, *, enabled: bool,
                 interval_s: float, stream) -> None:
        self._spec = spec
        self._total = total
        self._enabled = enabled
        self._interval = interval_s
        self._stream = stream
        self._t0 = perf_counter()  # repro: noqa[DET002] progress heartbeat pacing
        self._t_last = self._t0

    def tick(self, *, done: int, cached: int, failed: int, running: int,
             force: bool = False) -> None:
        now = perf_counter()  # repro: noqa[DET002] progress heartbeat pacing
        finished = done + cached + failed
        ctx = obs.current()
        if ctx is not None:
            obs.set_gauge("campaign.runs_total", float(self._total))
            obs.set_gauge("campaign.runs_done", float(done))
            obs.set_gauge("campaign.runs_cached", float(cached))
            obs.set_gauge("campaign.runs_failed", float(failed))
            obs.set_gauge("campaign.runs_in_flight", float(running))
            if ctx.progress is not None:
                # drives the JSONL metrics time series of an obs session
                ctx.progress.maybe_beat(now - self._t0, finished, "runs")
        if not self._enabled:
            return
        if not force and now - self._t_last < self._interval:
            return
        self._t_last = now
        self._stream.write(
            f"[campaign] {self._spec.name}: {finished}/{self._total} "
            f"({done} run, {cached} cached, {failed} failed, "
            f"{running} in flight) elapsed={now - self._t0:.1f}s\n"
        )
        self._stream.flush()


def _is_transient(error_types: Sequence[str],
                  transient: Sequence[str]) -> bool:
    return bool(set(error_types) & set(transient))


def run_campaign(
    spec: CampaignSpec,
    store: Optional[ResultStore] = None,
    *,
    jobs: Optional[int] = None,
    timeout_s: Optional[float] = None,
    retries: int = 2,
    backoff_s: float = 0.5,
    force: bool = False,
    progress: bool = False,
    heartbeat_s: float = 5.0,
    stream=None,
    transient: Sequence[str] = DEFAULT_TRANSIENT,
) -> CampaignReport:
    """Execute every run of ``spec``; returns a :class:`CampaignReport`.

    ``jobs=None`` uses ``os.cpu_count()``; ``jobs=1`` executes in-process
    (no pool) — the reference against which parallel runs are
    bit-identical.  With a ``store``, completed runs are served from the
    content-addressed cache (unless ``force``) and every transition is
    journalled, so re-invoking after a crash executes only missing runs.
    """
    jobs = max(1, int(jobs if jobs is not None else (os.cpu_count() or 1)))
    stream = stream if stream is not None else sys.stderr
    if spec.log_spill:
        # before any worker forks: the spill root rides the environment
        # into every run (storage-only — never part of a run key)
        from repro.telemetry.sink import SPILL_ENV_VAR

        os.environ[SPILL_ENV_VAR] = spec.log_spill
    t0 = perf_counter()  # repro: noqa[DET002] campaign wall time, excluded from run keys
    results: Dict[str, RunResult] = {}

    def journal(event: str, run: Optional[RunSpec] = None, **fields) -> None:
        if store is None:
            return
        rec: Dict[str, Any] = {
            "campaign": spec.campaign_key, "name": spec.name,
        }
        if run is not None:
            rec.update(run=run.key, experiment=run.experiment, seed=run.seed)
        rec.update(fields)
        store.journal(event, **rec)

    def sidecar(run: RunSpec, attempts: int, wall_s: float) -> Dict[str, Any]:
        return {
            "experiment": run.experiment,
            "seed": run.seed,
            "overrides": dict(run.overrides),
            "key": run.key,
            "campaign": spec.campaign_key,
            "campaign_name": spec.name,
            "code_version": spec.code_version,
            "attempts": attempts,
            "wall_time_s": wall_s,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "written_at_unix": time.time(),  # repro: noqa[DET002] journal metadata, excluded from run keys
        }

    # --- phase 1: serve what the cache already has ------------------------
    pending: List[RunSpec] = []
    for run in spec.runs:
        payload = None if (store is None or force) else store.get(run.key)
        if payload is not None:
            results[run.key] = RunResult(
                spec=run, status="cached", payload=payload, attempts=0,
                wall_time_s=0.0,
            )
            journal("cached", run)
        else:
            pending.append(run)

    journal("campaign-start", jobs=jobs, total=len(spec.runs),
            cached=len(spec.runs) - len(pending))
    beat = _Heartbeat(spec, len(spec.runs), enabled=progress,
                      interval_s=heartbeat_s, stream=stream)

    def counts() -> Dict[str, int]:
        out = {"done": 0, "cached": 0, "failed": 0}
        for r in results.values():
            out[r.status] += 1
        return out

    def record_done(run: RunSpec, payload: Dict[str, Any],
                    attempts: int, wall: float) -> None:
        results[run.key] = RunResult(
            spec=run, status="done", payload=payload, attempts=attempts,
            wall_time_s=wall,
        )
        if store is not None:
            store.put(run.key, payload, sidecar(run, attempts, wall))
        journal("done", run, attempt=attempts, wall_time_s=wall)
        obs.inc("campaign.runs_completed")

    def record_failed(run: RunSpec, outcome: Dict[str, Any],
                      attempts: int) -> None:
        results[run.key] = RunResult(
            spec=run, status="failed", payload=None, attempts=attempts,
            wall_time_s=float(outcome.get("wall_time_s", 0.0)),
            error=outcome.get("error"),
        )
        journal("failed", run, attempt=attempts, error=outcome.get("error"))
        obs.inc("campaign.runs_failed")

    interrupted = False
    try:
        if jobs == 1:
            _run_inprocess(pending, results, journal, record_done,
                           record_failed, beat, counts, timeout_s=timeout_s,
                           retries=retries, backoff_s=backoff_s,
                           transient=transient)
        else:
            _run_pooled(pending, results, journal, record_done,
                        record_failed, beat, counts, jobs=jobs,
                        timeout_s=timeout_s, retries=retries,
                        backoff_s=backoff_s, transient=transient)
    except KeyboardInterrupt:
        interrupted = True
        journal("interrupted", completed=len(results))
        if progress:
            stream.write(f"[campaign] {spec.name}: interrupted — "
                         f"{len(results)}/{len(spec.runs)} settled\n")
            stream.flush()

    c = counts()
    beat.tick(done=c["done"], cached=c["cached"], failed=c["failed"],
              running=0, force=True)
    journal("campaign-end", executed=c["done"], cached=c["cached"],
            failed=c["failed"], interrupted=interrupted)
    report = CampaignReport(
        spec=spec,
        results=[results[r.key] for r in spec.runs if r.key in results],
        wall_time_s=perf_counter() - t0,  # repro: noqa[DET002] campaign wall time, excluded from run keys
        jobs=jobs,
        interrupted=interrupted,
    )
    return report


def _run_inprocess(pending, results, journal, record_done, record_failed,
                   beat, counts, *, timeout_s, retries, backoff_s,
                   transient) -> None:
    """The jobs=1 path: same semantics, no pool, no pickling."""
    for run in pending:
        attempts = 0
        while True:
            attempts += 1
            journal("start", run, attempt=attempts)
            outcome = _execute_run(run.experiment, run.seed, run.overrides,
                                   timeout_s)
            if outcome["ok"]:
                record_done(run, outcome["payload"], attempts,
                            float(outcome.get("wall_time_s", 0.0)))
                break
            if (attempts <= retries
                    and _is_transient(outcome.get("error_types", ()),
                                      transient)):
                journal("retry", run, attempt=attempts,
                        error=outcome.get("error"))
                time.sleep(backoff_s * (2 ** (attempts - 1)))
                continue
            record_failed(run, outcome, attempts)
            break
        c = counts()
        beat.tick(done=c["done"], cached=c["cached"], failed=c["failed"],
                  running=0)


def _run_pooled(pending, results, journal, record_done, record_failed,
                beat, counts, *, jobs, timeout_s, retries, backoff_s,
                transient) -> None:
    """The jobs>1 path: ProcessPoolExecutor with retry/backoff queue.

    A broken pool (a worker died hard, e.g. OOM-killed) is rebuilt and the
    in-flight runs are recycled through the transient-retry path.
    """
    # fork keeps worker start cheap and inherits sys.path/imports; fall
    # back to the platform default elsewhere
    if "fork" in multiprocessing.get_all_start_methods():
        mp_ctx = multiprocessing.get_context("fork")
    else:  # pragma: no cover - non-POSIX
        mp_ctx = multiprocessing.get_context()

    def make_pool() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=jobs, mp_context=mp_ctx,
                                   initializer=_worker_init)

    pool = make_pool()
    queue = deque(pending)
    in_flight: Dict[Future, Tuple[RunSpec, int]] = {}
    retry_q: List[Tuple[float, RunSpec, int]] = []  # (due, run, prior tries)

    def submit(run: RunSpec, prior_attempts: int) -> None:
        journal("start", run, attempt=prior_attempts + 1)
        fut = pool.submit(_execute_run, run.experiment, run.seed,
                          dict(run.overrides), timeout_s)
        in_flight[fut] = (run, prior_attempts)

    def handle_failure(run: RunSpec, outcome: Dict[str, Any],
                       attempts: int) -> None:
        if (attempts <= retries
                and _is_transient(outcome.get("error_types", ()), transient)):
            journal("retry", run, attempt=attempts,
                    error=outcome.get("error"))
            due = perf_counter() + backoff_s * (2 ** (attempts - 1))  # repro: noqa[DET002] retry backoff deadline, host-time by design
            retry_q.append((due, run, attempts))
        else:
            record_failed(run, outcome, attempts)

    try:
        while queue or in_flight or retry_q:
            now = perf_counter()  # repro: noqa[DET002] retry backoff deadline, host-time by design
            if retry_q:
                due_now = [item for item in retry_q if item[0] <= now]
                retry_q[:] = [item for item in retry_q if item[0] > now]
                for _, run, prior in due_now:
                    submit(run, prior)
            while queue and len(in_flight) < jobs:
                submit(queue.popleft(), 0)
            if not in_flight:
                # only backoff timers outstanding
                next_due = min(item[0] for item in retry_q)
                time.sleep(max(0.0, min(0.5, next_due - perf_counter())))  # repro: noqa[DET002] retry backoff deadline, host-time by design
                continue
            done_set, _ = wait(set(in_flight), timeout=0.5,
                               return_when=FIRST_COMPLETED)
            pool_broken = False
            for fut in done_set:
                run, prior = in_flight.pop(fut)
                attempts = prior + 1
                try:
                    outcome = fut.result()
                except BrokenProcessPool as exc:
                    pool_broken = True
                    handle_failure(run, {
                        "ok": False,
                        "error": f"BrokenProcessPool: {exc}",
                        "error_types": ["BrokenProcessPool"],
                    }, attempts)
                    continue
                except Exception as exc:  # pickling errors and friends
                    handle_failure(run, {
                        "ok": False,
                        "error": f"{type(exc).__name__}: {exc}",
                        "error_types": [c.__name__
                                        for c in type(exc).__mro__],
                    }, attempts)
                    continue
                if outcome["ok"]:
                    record_done(run, outcome["payload"], attempts,
                                float(outcome.get("wall_time_s", 0.0)))
                else:
                    handle_failure(run, outcome, attempts)
            if pool_broken or getattr(pool, "_broken", False):
                # recycle whatever was in flight through the retry path
                for fut, (run, prior) in list(in_flight.items()):
                    handle_failure(run, {
                        "ok": False,
                        "error": "BrokenProcessPool: worker died",
                        "error_types": ["BrokenProcessPool"],
                    }, prior + 1)
                in_flight.clear()
                pool.shutdown(wait=False, cancel_futures=True)
                pool = make_pool()
            c = counts()
            beat.tick(done=c["done"], cached=c["cached"], failed=c["failed"],
                      running=len(in_flight))
    except KeyboardInterrupt:
        # graceful drain: stop submitting, let in-flight runs finish
        for fut in list(in_flight):
            fut.cancel()
        settled, _ = wait(set(in_flight), timeout=None)
        for fut in settled:
            run, prior = in_flight.pop(fut)
            if fut.cancelled():
                continue
            try:
                outcome = fut.result()
            except Exception:
                continue
            if outcome.get("ok"):
                record_done(run, outcome["payload"], prior + 1,
                            float(outcome.get("wall_time_s", 0.0)))
        raise
    finally:
        pool.shutdown(wait=True, cancel_futures=True)
