"""Campaign specs: a grid of runs with content-addressed identities.

A campaign is a list of *sweep entries*, each expanding to
``experiment x grid(overrides) x seeds`` runs.  Every expanded
:class:`RunSpec` carries a canonical content hash over (experiment name,
resolved overrides, seed, code version) computed with
:func:`repro.obs.manifest.stable_hash` — the same key the result store
files results under, so identical runs are recognised across invocations
and processes.

Spec files are JSON::

    {
      "name": "fig9-sweep",
      "entries": [
        {"experiment": "fig9_size", "seeds": [0, 1],
         "grid": {"n_users": [250, 500, 1000]},
         "overrides": {"horizon_s": 600.0}},
        {"experiment": "fig3", "seeds": [0, 1, 2]}
      ]
    }

``grid`` maps parameter names to value lists (cartesian product);
``overrides`` holds fixed keyword arguments.  ``seeds`` defaults to
``[0]``.  An optional ``"engine"`` entry key (any registered engine:
``detailed``, ``fast``, ``net``, ...) pins the
simulation engine for every run the entry expands to; it is folded into
the resolved overrides, so the engine is part of each run's
content-addressed key (cached results from one engine are never replayed
as the other's).  Entries without an ``engine`` key keep the
experiment's own default and their historical run keys.  An optional
top-level ``"log_spill": "DIR"`` key spills every run's telemetry log to
gzip chunks under ``DIR`` (:mod:`repro.telemetry.sink`); spilling only
relocates log storage — results are byte-identical — so it is *never*
folded into run keys and cached results stay valid either way.
Malformed specs raise :class:`SpecError`, which the CLI maps to exit
code 2.
"""

from __future__ import annotations

import inspect
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.obs.manifest import git_revision, stable_hash

__all__ = ["SpecError", "RunSpec", "CampaignSpec", "run_key", "sweep"]


class SpecError(ValueError):
    """A campaign spec is malformed (CLI exit code 2)."""


def _auto_code_version() -> Optional[str]:
    """Git revision of the *package's* checkout, independent of cwd.

    Run keys must not change with the caller's working directory — a
    campaign launched from /tmp and resumed from the repo root is the
    same campaign if the code is the same.
    """
    return git_revision(cwd=Path(__file__).resolve().parent)


def run_key(
    experiment: str,
    seed: int,
    overrides: Mapping[str, Any],
    code_version: Optional[str],
) -> str:
    """Canonical content hash identifying one run.

    Two runs share a key iff they name the same experiment, resolve to the
    same overrides (order-insensitively), use the same seed and the same
    code version — precisely the conditions under which their results are
    interchangeable.
    """
    return stable_hash({
        "experiment": str(experiment),
        "seed": int(seed),
        "overrides": dict(overrides),
        "code": code_version,
    })


@dataclass(frozen=True)
class RunSpec:
    """One expanded run of a campaign."""

    experiment: str
    seed: int
    overrides: Mapping[str, Any]
    key: str

    def describe(self) -> str:
        """Short human-readable label (experiment, seed, overrides)."""
        ov = ",".join(f"{k}={v!r}" for k, v in sorted(self.overrides.items()))
        return f"{self.experiment}(seed={self.seed}{', ' + ov if ov else ''})"


@dataclass
class CampaignSpec:
    """A named, fully expanded list of runs."""

    name: str
    runs: List[RunSpec] = field(default_factory=list)
    code_version: Optional[str] = None
    # optional telemetry spill root for every run (storage-only: spilling
    # never changes results, so it is deliberately NOT part of any run key)
    log_spill: Optional[str] = None

    @property
    def campaign_key(self) -> str:
        """Content hash of the whole campaign (name + every run key)."""
        return stable_hash({"name": self.name,
                            "runs": [r.key for r in self.runs]})

    # --- construction -----------------------------------------------------
    @classmethod
    def from_dict(
        cls, data: Mapping[str, Any], *,
        code_version: Optional[str] = "auto",
    ) -> "CampaignSpec":
        """Expand a spec mapping into runs (raises :class:`SpecError`).

        ``code_version="auto"`` stamps the current git revision into every
        run key; pass ``None`` to key runs on inputs alone.
        """
        if not isinstance(data, Mapping):
            raise SpecError("spec must be a JSON object")
        name = data.get("name", "campaign")
        if not isinstance(name, str) or not name:
            raise SpecError("spec 'name' must be a non-empty string")
        entries = data.get("entries")
        if not isinstance(entries, Sequence) or isinstance(entries, (str, bytes)) \
                or not entries:
            raise SpecError("spec 'entries' must be a non-empty list")
        unknown = set(data) - {"name", "entries", "log_spill"}
        if unknown:
            raise SpecError(f"unknown spec keys: {sorted(unknown)}")
        log_spill = data.get("log_spill")
        if log_spill is not None and (
                not isinstance(log_spill, str) or not log_spill):
            raise SpecError("spec 'log_spill' must be a non-empty string")
        if code_version == "auto":
            code_version = _auto_code_version()
        spec = cls(name=name, code_version=code_version,
                   log_spill=log_spill)
        for i, entry in enumerate(entries):
            spec.runs.extend(_expand_entry(entry, i, code_version))
        seen: Dict[str, RunSpec] = {}
        for run in spec.runs:
            if run.key in seen:
                raise SpecError(
                    f"duplicate run in spec: {run.describe()}"
                )
            seen[run.key] = run
        return spec

    @classmethod
    def from_file(cls, path, **kwargs) -> "CampaignSpec":
        """Load and expand a JSON spec file (raises :class:`SpecError`)."""
        p = Path(path)
        try:
            text = p.read_text(encoding="utf-8")
        except OSError as exc:
            raise SpecError(f"cannot read spec {p}: {exc}") from exc
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"spec {p} is not valid JSON: {exc}") from exc
        return cls.from_dict(data, **kwargs)


def _validate_override_keys(
    experiment: str, keys: Iterable[str], where: str
) -> None:
    """Reject override/grid keys the experiment callable cannot accept.

    Without this, a typo'd key (``horizont_s``) is silently folded into
    every run's content hash, the whole campaign executes -- and fails
    (or worse, runs at defaults) while the store remembers the bogus key
    forever.  Keys are checked against the resolved callable's keyword
    parameters; ``**kwargs`` experiments accept anything.  References
    that cannot be resolved here (e.g. a ``module:qualname`` only
    importable inside workers) are left for run time, which already
    surfaces :class:`UnknownExperimentError` as exit code 2.
    """
    keys = [k for k in keys]
    if not keys:
        return
    # local import: registry imports this module for SpecError
    from repro.campaign.registry import (
        UnknownExperimentError,
        resolve_experiment,
    )
    try:
        fn = resolve_experiment(experiment)
    except UnknownExperimentError:
        return
    try:
        params = inspect.signature(fn).parameters
    except (TypeError, ValueError):  # pragma: no cover - C callables
        return
    if "seed" in keys:
        raise SpecError(
            f"{where}: 'seed' cannot be an override; use the entry's "
            f"'seeds' list"
        )
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()):
        return
    valid = {
        name for name, p in params.items()
        if p.kind in (inspect.Parameter.POSITIONAL_OR_KEYWORD,
                      inspect.Parameter.KEYWORD_ONLY)
    }
    unknown = sorted(set(keys) - valid)
    if unknown:
        accepted = sorted(valid - {"seed"})
        raise SpecError(
            f"{where}: override keys {unknown} are not parameters of "
            f"experiment {experiment!r} (accepts: {accepted})"
        )


def _expand_entry(
    entry: Any, index: int, code_version: Optional[str]
) -> List[RunSpec]:
    """Expand one sweep entry into its ``grid x seeds`` runs."""
    where = f"entries[{index}]"
    if not isinstance(entry, Mapping):
        raise SpecError(f"{where} must be an object")
    unknown = set(entry) - {"experiment", "seeds", "overrides", "grid",
                            "engine"}
    if unknown:
        raise SpecError(f"{where} has unknown keys: {sorted(unknown)}")
    experiment = entry.get("experiment")
    if not isinstance(experiment, str) or not experiment:
        raise SpecError(f"{where}.experiment must be a non-empty string")
    seeds = entry.get("seeds", [0])
    if (not isinstance(seeds, Sequence) or isinstance(seeds, (str, bytes))
            or not seeds):
        raise SpecError(f"{where}.seeds must be a non-empty list of ints")
    try:
        seeds = [int(s) for s in seeds]
    except (TypeError, ValueError) as exc:
        raise SpecError(f"{where}.seeds must be ints: {exc}") from exc
    overrides = entry.get("overrides", {})
    if not isinstance(overrides, Mapping):
        raise SpecError(f"{where}.overrides must be an object")
    engine = entry.get("engine")
    if engine is not None:
        from repro.runtime.backends import available_engines

        if engine not in available_engines():
            raise SpecError(
                f"{where}.engine must be one of "
                f"{', '.join(repr(e) for e in available_engines())}, "
                f"got {engine!r}"
            )
        if "engine" in overrides:
            raise SpecError(
                f"{where}: 'engine' given both as an entry key and in "
                f"overrides"
            )
    grid = entry.get("grid", {})
    if not isinstance(grid, Mapping):
        raise SpecError(f"{where}.grid must be an object")
    for param, values in grid.items():
        if (not isinstance(values, Sequence) or isinstance(values, (str, bytes))
                or not values):
            raise SpecError(
                f"{where}.grid[{param!r}] must be a non-empty list"
            )
        if param in overrides:
            raise SpecError(
                f"{where}: {param!r} appears in both grid and overrides"
            )
    if engine is not None:
        if "engine" in grid:
            raise SpecError(
                f"{where}: 'engine' given both as an entry key and in grid"
            )
        overrides = dict(overrides)
        overrides["engine"] = engine
    _validate_override_keys(
        experiment, list(overrides) + list(grid), where)

    runs: List[RunSpec] = []
    params = sorted(grid)
    combos: Iterable[tuple] = itertools.product(*(grid[p] for p in params))
    for combo in combos:
        resolved = dict(overrides)
        resolved.update(zip(params, combo))
        for seed in seeds:
            runs.append(RunSpec(
                experiment=experiment,
                seed=seed,
                overrides=resolved,
                key=run_key(experiment, seed, resolved, code_version),
            ))
    return runs


def sweep(
    experiment: str,
    *,
    seeds: Sequence[int] = (0,),
    overrides: Optional[Mapping[str, Any]] = None,
    grid: Optional[Mapping[str, Sequence[Any]]] = None,
    name: str = "",
    code_version: Optional[str] = "auto",
) -> CampaignSpec:
    """Programmatic one-entry campaign (what ``replicate`` and the Fig. 9
    sweeps build internally)."""
    entry: Dict[str, Any] = {"experiment": experiment, "seeds": list(seeds)}
    if overrides:
        entry["overrides"] = dict(overrides)
    if grid:
        entry["grid"] = {k: list(v) for k, v in grid.items()}
    return CampaignSpec.from_dict(
        {"name": name or experiment, "entries": [entry]},
        code_version=code_version,
    )
