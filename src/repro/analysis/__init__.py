"""Trace analysis toolkit.

Everything here consumes *only* the log server's contents -- the same
information the authors had -- so the measurement artefacts of Section V
(5-minute report granularity, reports lost to abrupt departures) affect
our figures the same way they affected the paper's.

* :mod:`repro.analysis.sessions` -- session reconstruction (Figs. 5, 6, 7, 10).
* :mod:`repro.analysis.classification` -- the Section V.B user-type
  classifier (Fig. 3a).
* :mod:`repro.analysis.contribution` -- upload-contribution shares (Fig. 3b).
* :mod:`repro.analysis.continuity` -- continuity-index aggregation (Figs. 8, 9).
* :mod:`repro.analysis.topology` -- overlay-structure statistics (Fig. 4),
  the one consumer of simulator-side snapshots (the paper, too, could only
  *conjecture* the overlay -- we get to check the conjecture).
* :mod:`repro.analysis.stats` -- CDF / binning helpers shared by all.
* :mod:`repro.analysis.streaming` -- the single-pass fold layer every
  whole-trace reconstruction above now routes through, so N statistics
  over a spilled production-volume log cost one streaming read.
"""

from repro.analysis.funnel import (
    JoinFunnel,
    funnel_by_attempt,
    funnel_of_table,
    join_funnel,
)
from repro.analysis.streaming import (
    ClassifyUsersFold,
    ConcurrentUsersFold,
    ContinuitySamplesFold,
    Fold,
    JoinFunnelFold,
    PartnerEventsFold,
    SessionTableFold,
    UploadTotalsFold,
    fold_log,
    iter_reports,
)
from repro.analysis.partners import (
    churn_by_type,
    churn_rate_timeseries,
    partner_events,
    partnership_lifetimes,
)
from repro.analysis.resources import (
    SupplyDemand,
    supply_demand_snapshot,
    upload_rate_timeseries,
    utilization_by_class,
)
from repro.analysis.sessions import Session, SessionTable
from repro.analysis.classification import UserType, classify_users
from repro.analysis.contribution import contribution_by_type, upload_shares, lorenz_curve
from repro.analysis.continuity import continuity_timeseries, continuity_by_type
from repro.analysis.topology import OverlaySnapshot, snapshot_overlay
from repro.analysis.stats import Cdf, bin_timeseries

__all__ = [
    "JoinFunnel",
    "funnel_by_attempt",
    "funnel_of_table",
    "join_funnel",
    "Fold",
    "fold_log",
    "iter_reports",
    "SessionTableFold",
    "ClassifyUsersFold",
    "UploadTotalsFold",
    "ContinuitySamplesFold",
    "PartnerEventsFold",
    "ConcurrentUsersFold",
    "JoinFunnelFold",
    "churn_by_type",
    "churn_rate_timeseries",
    "partner_events",
    "partnership_lifetimes",
    "SupplyDemand",
    "supply_demand_snapshot",
    "upload_rate_timeseries",
    "utilization_by_class",
    "Session",
    "SessionTable",
    "UserType",
    "classify_users",
    "contribution_by_type",
    "upload_shares",
    "lorenz_curve",
    "continuity_timeseries",
    "continuity_by_type",
    "OverlaySnapshot",
    "snapshot_overlay",
    "Cdf",
    "bin_timeseries",
]
