"""Join-funnel analysis: where sessions stall in the join pipeline.

Section V.C defines the session event chain -- join, start-subscription,
media-player-ready, leave -- and Sections V.C/V.E discuss the users that
fall out before readiness (impatient re-tries, flash-crowd victims).
This module quantifies the funnel from the log: how many sessions reach
each stage, the per-stage conversion, and how the funnel tightens with
load -- the diagnostic the paper's "possible improvement" paragraph calls
for when tuning the mCache policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.sessions import SessionTable
from repro.telemetry.server import LogServer

__all__ = ["JoinFunnel", "join_funnel", "funnel_of_table", "funnel_by_attempt"]


@dataclass(frozen=True)
class JoinFunnel:
    """Session counts at each stage of the Section V.C event chain."""

    joined: int
    subscribed: int
    ready: int
    completed: int  # reached ready AND reported a leave (a normal session)

    def __post_init__(self) -> None:
        if not (self.joined >= self.subscribed >= self.ready >= self.completed
                >= 0):
            raise ValueError("funnel stages must be monotone non-increasing")

    @property
    def subscription_rate(self) -> float:
        """P(start-subscription | join)."""
        return self.subscribed / self.joined if self.joined else float("nan")

    @property
    def ready_rate(self) -> float:
        """P(player-ready | join) -- the join success probability."""
        return self.ready / self.joined if self.joined else float("nan")

    @property
    def buffering_survival(self) -> float:
        """P(player-ready | start-subscription): surviving the buffer fill."""
        return self.ready / self.subscribed if self.subscribed else float("nan")

    def rows(self) -> List[Tuple[str, int, str]]:
        """(stage, sessions, conversion-from-join) table rows."""
        out = []
        for name, count in (
            ("join", self.joined),
            ("start-subscription", self.subscribed),
            ("player-ready", self.ready),
            ("normal (ready + leave)", self.completed),
        ):
            frac = count / self.joined if self.joined else float("nan")
            out.append((name, count, f"{frac * 100:.1f}%"))
        return out


def funnel_of_table(table: SessionTable) -> JoinFunnel:
    """Count the funnel stages of an already-reconstructed table (shared
    by :func:`join_funnel` and the streaming
    :class:`~repro.analysis.streaming.JoinFunnelFold`)."""
    joined = subscribed = ready = completed = 0
    for sess in table:
        if sess.join_time is None:
            continue
        joined += 1
        if sess.subscription_time is not None:
            subscribed += 1
            if sess.ready_time is not None:
                ready += 1
                if sess.leave_time is not None:
                    completed += 1
    return JoinFunnel(joined=joined, subscribed=subscribed, ready=ready,
                      completed=completed)


def join_funnel(log: LogServer,
                table: Optional[SessionTable] = None) -> JoinFunnel:
    """Build the funnel over every session in the log."""
    if table is None:
        table = SessionTable.from_log(log)
    return funnel_of_table(table)


def funnel_by_attempt(log: LogServer) -> Dict[int, JoinFunnel]:
    """One funnel per join-attempt number.

    Retry attempts face a *warmer* overlay (the user's earlier failures
    seeded nothing, but time passed), so later attempts usually convert
    better -- the mechanism behind Fig. 10b's "1 or 2 retries suffice".
    """
    table = SessionTable.from_log(log)
    buckets: Dict[int, List] = {}
    for sess in table:
        if sess.join_time is not None:
            buckets.setdefault(sess.attempt, []).append(sess)
    out: Dict[int, JoinFunnel] = {}
    for attempt, sessions in sorted(buckets.items()):
        joined = len(sessions)
        subscribed = sum(1 for s in sessions if s.subscription_time is not None)
        ready = sum(1 for s in sessions if s.ready_time is not None)
        completed = sum(
            1 for s in sessions
            if s.ready_time is not None and s.leave_time is not None
        )
        out[attempt] = JoinFunnel(joined=joined, subscribed=subscribed,
                                  ready=ready, completed=completed)
    return out
