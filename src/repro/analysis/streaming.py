"""Single-pass streaming analysis: incremental folds over a report stream.

Every figure reconstruction in :mod:`repro.analysis` used to iterate the
whole log once *per statistic*; at production volume (the ROADMAP
north star) that re-parses millions of log strings over and over, and
requires the log to fit in RAM in the first place.  This module factors
the per-report logic of each reconstruction into a :class:`Fold` --
``update(report)`` consumes one parsed report, ``result()`` finalises --
and :func:`fold_log` drives any number of folds down a single pass over
any report source (an in-memory :class:`~repro.telemetry.server.LogServer`,
a spilled :class:`~repro.telemetry.sink.LogReader`, or a plain iterable).

The whole-trace functions (``SessionTable.from_log``, ``classify_users``,
``upload_totals``, ``continuity_samples``, ``partner_events``,
``join_funnel``) are now thin wrappers over these folds, so every
caller's output is bit-identical by construction: the folds run the very
same per-report statements in the very same encounter order.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.analysis.classification import UserType, _Observed
from repro.analysis.sessions import Session, SessionTable
from repro.telemetry.reports import (
    ActivityEvent,
    ActivityReport,
    PartnerOp,
    PartnerReport,
    QoSReport,
    Report,
    TrafficReport,
)

__all__ = [
    "Fold",
    "fold_log",
    "iter_reports",
    "SessionTableFold",
    "ClassifyUsersFold",
    "UploadTotalsFold",
    "ContinuitySamplesFold",
    "PartnerEventsFold",
    "ConcurrentUsersFold",
    "JoinFunnelFold",
    "fold_many",
]


class Fold:
    """One incremental statistic over a report stream.

    Subclasses consume parsed reports through :meth:`update` and finalise
    through :meth:`result`.  A fold must depend only on the reports it is
    shown and their order, never on the storage they came from -- that is
    what makes spilled and in-memory analysis bit-identical.
    """

    def update(self, report: Report) -> None:
        """Consume one parsed report."""
        raise NotImplementedError

    def result(self):
        """Finalise and return this fold's statistic."""
        raise NotImplementedError


def iter_reports(source) -> Iterator[Report]:
    """Parsed-report stream of ``source``.

    Accepts a :class:`~repro.telemetry.server.LogServer`, a
    :class:`~repro.telemetry.sink.LogReader` (anything with ``reports()``),
    anything with ``iter_entries()``, or a plain iterable of reports.
    """
    reports = getattr(source, "reports", None)
    if callable(reports):
        return iter(reports())
    iter_entries = getattr(source, "iter_entries", None)
    if callable(iter_entries):
        return (entry.parse() for entry in iter_entries())
    return iter(source)


def fold_log(source, *folds: Fold) -> Tuple:
    """Drive every fold down one pass over ``source``'s reports.

    Returns one result per fold, in argument order.  This is the whole
    point of the module: N statistics over a spilled multi-gigabyte log
    cost one streaming read, not N.
    """
    if not folds:
        raise ValueError("fold_log needs at least one fold")
    stream = iter_reports(source)
    if len(folds) == 1:
        fold = folds[0]
        update = fold.update
        for report in stream:
            update(report)
        return (fold.result(),)
    updates = [f.update for f in folds]
    for report in stream:
        for update in updates:
            update(report)
    return tuple(f.result() for f in folds)


# ---------------------------------------------------------------------------
# the figure-reconstruction folds
# ---------------------------------------------------------------------------
class SessionTableFold(Fold):
    """Session reconstruction (Section V.C) as a fold.

    Per-report logic identical to the historical
    ``SessionTable.from_log`` loop, which now wraps this fold.
    """

    def __init__(self) -> None:
        self._sessions: Dict[int, Session] = {}

    def update(self, report: Report) -> None:
        """Fold one report in (non-activity reports are ignored)."""
        if not isinstance(report, ActivityReport):
            return
        sess = self._sessions.get(report.session_id)
        if sess is None:
            sess = Session(
                session_id=report.session_id,
                user_id=report.user_id,
                node_id=report.node_id,
                attempt=report.attempt,
                address_public=report.address_public,
            )
            self._sessions[report.session_id] = sess
        if report.event is ActivityEvent.JOIN:
            sess.join_time = report.time
        elif report.event is ActivityEvent.START_SUBSCRIPTION:
            sess.subscription_time = report.time
        elif report.event is ActivityEvent.PLAYER_READY:
            sess.ready_time = report.time
        elif report.event is ActivityEvent.LEAVE:
            sess.leave_time = report.time
            sess.leave_reason = report.reason

    def result(self) -> SessionTable:
        """The reconstructed session table."""
        return SessionTable(self._sessions)


class ClassifyUsersFold(Fold):
    """The Section V.B user-type classifier as a fold."""

    def __init__(self) -> None:
        self._observed: Dict[int, _Observed] = {}

    def update(self, report: Report) -> None:
        """Fold one report's address/partnership evidence in."""
        if isinstance(report, ActivityReport):
            obs = self._observed.setdefault(report.node_id, _Observed())
            obs.address_public = report.address_public
        elif isinstance(report, PartnerReport):
            obs = self._observed.setdefault(report.node_id, _Observed())
            # cumulative counters: the latest report carries the total
            obs.incoming = max(obs.incoming, report.n_incoming)
            obs.outgoing = max(obs.outgoing, report.n_outgoing)
            # the compact event series also reveals direction
            for event in report.events:
                if event.incoming:
                    obs.incoming = max(obs.incoming, 1)
                else:
                    obs.outgoing = max(obs.outgoing, 1)

    def result(self) -> Dict[int, UserType]:
        """node_id -> :class:`UserType`, per the Section V.B rules."""
        result: Dict[int, UserType] = {}
        for node_id, obs in self._observed.items():
            public = bool(obs.address_public)
            has_incoming = obs.incoming > 0
            if public and has_incoming:
                result[node_id] = UserType.DIRECT
            elif not public and has_incoming:
                result[node_id] = UserType.UPNP
            elif not public:
                result[node_id] = UserType.NAT
            else:
                result[node_id] = UserType.FIREWALL
        return result


class UploadTotalsFold(Fold):
    """Per-node upload totals (Fig. 3b input) as a fold."""

    def __init__(self) -> None:
        self._totals: Dict[int, float] = {}

    def update(self, report: Report) -> None:
        """Track the running max of each node's cumulative upload."""
        if not isinstance(report, TrafficReport):
            return
        prev = self._totals.get(report.node_id, 0.0)
        self._totals[report.node_id] = max(prev, report.total_up)

    def result(self) -> Dict[int, float]:
        """node_id -> total uploaded bytes."""
        return self._totals


class ContinuitySamplesFold(Fold):
    """Continuity samples (Figs. 8/9 input) as a fold."""

    def __init__(self, *, playing_only: bool = True) -> None:
        self._playing_only = playing_only
        self._samples: List[Tuple[float, int, float]] = []

    def update(self, report: Report) -> None:
        """Collect one QoS report's continuity sample, if it carried one."""
        if not isinstance(report, QoSReport):
            return
        if report.continuity is None:
            return
        if self._playing_only and not report.playing:
            return
        self._samples.append((report.time, report.node_id, report.continuity))

    def result(self) -> List[Tuple[float, int, float]]:
        """``(report_time, node_id, continuity)`` in encounter order."""
        return self._samples


class PartnerEventsFold(Fold):
    """Flattened partner add/drop events as a fold."""

    def __init__(self) -> None:
        self._events: List[Tuple[float, int, PartnerOp, int, bool]] = []

    def update(self, report: Report) -> None:
        """Unpack one compact partner report's event series."""
        if not isinstance(report, PartnerReport):
            return
        for ev in report.events:
            self._events.append(
                (ev.time, report.node_id, ev.op, ev.partner_id, ev.incoming)
            )

    def result(self) -> List[Tuple[float, int, PartnerOp, int, bool]]:
        """Events sorted by event time (stable, as before)."""
        self._events.sort(key=lambda x: x[0])
        return self._events


class ConcurrentUsersFold(Fold):
    """Fig. 5's concurrent-user curve as a fold over activity reports."""

    def __init__(self, *, t0: float = 0.0, t1: Optional[float] = None,
                 step_s: float = 60.0) -> None:
        self._table = SessionTableFold()
        self._t0 = t0
        self._t1 = t1
        self._step_s = step_s

    def update(self, report: Report) -> None:
        """Fold one report into the underlying session table."""
        self._table.update(report)

    def result(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(grid, counts)`` exactly as ``SessionTable.concurrent_users``."""
        return self._table.result().concurrent_users(
            t0=self._t0, t1=self._t1, step_s=self._step_s
        )


class JoinFunnelFold(Fold):
    """The Section V.C join funnel as a fold over activity reports."""

    def __init__(self) -> None:
        self._table = SessionTableFold()

    def update(self, report: Report) -> None:
        """Fold one report into the underlying session table."""
        self._table.update(report)

    def result(self):
        """The :class:`~repro.analysis.funnel.JoinFunnel` of the stream."""
        from repro.analysis.funnel import funnel_of_table

        return funnel_of_table(self._table.result())


def fold_many(source, folds: Iterable[Fold]) -> Tuple:
    """``fold_log`` with the folds given as an iterable (convenience for
    callers assembling fold sets dynamically)."""
    return fold_log(source, *folds)
