"""Session reconstruction from activity reports (Section V.C).

"For each pair of join/leave event, a *session* is counted.  The session
duration is the time between join and leave events.  For a normal session,
the sequences of reported events include: (1) join, (2) start
subscription, (3) media player ready, and (4) leave."

This module rebuilds exactly that view from the raw log: sessions that
never reach readiness, sessions with missing leave events (abrupt
departures -- their duration is unknowable from the log, as in the real
data set), retry chains linked by user id, and the timing metrics of
Figs. 5, 6, 7 and 10.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.telemetry.reports import LeaveReason
from repro.telemetry.server import LogServer

__all__ = ["Session", "SessionTable"]


@dataclass
class Session:
    """One reconstructed session (all times are *report* times)."""

    session_id: int
    user_id: int
    node_id: int
    attempt: int
    address_public: bool
    join_time: Optional[float] = None
    subscription_time: Optional[float] = None
    ready_time: Optional[float] = None
    leave_time: Optional[float] = None
    leave_reason: Optional[LeaveReason] = None

    # --- derived metrics -------------------------------------------------
    @property
    def is_normal(self) -> bool:
        """A *normal session* reported all four events in order."""
        return (
            self.join_time is not None
            and self.subscription_time is not None
            and self.ready_time is not None
            and self.leave_time is not None
        )

    @property
    def started_playback(self) -> bool:
        """Whether the session ever reached playback."""
        return self.ready_time is not None

    @property
    def duration(self) -> Optional[float]:
        """Join-to-leave time; None when either endpoint is missing."""
        if self.join_time is None or self.leave_time is None:
            return None
        return self.leave_time - self.join_time

    @property
    def start_subscription_delay(self) -> Optional[float]:
        """join-to-subscription delay (None if unknown)."""
        if self.join_time is None or self.subscription_time is None:
            return None
        return self.subscription_time - self.join_time

    @property
    def ready_delay(self) -> Optional[float]:
        """The *media player ready time* of Fig. 6."""
        if self.join_time is None or self.ready_time is None:
            return None
        return self.ready_time - self.join_time

    @property
    def buffering_delay(self) -> Optional[float]:
        """ready - start_subscription: the buffer-fill wait of Fig. 6."""
        if self.subscription_time is None or self.ready_time is None:
            return None
        return self.ready_time - self.subscription_time


class SessionTable:
    """All sessions of a log, with the paper's aggregate views."""

    def __init__(self, sessions: Dict[int, Session]) -> None:
        self._sessions = sessions

    @classmethod
    def from_log(cls, log: LogServer) -> "SessionTable":
        """Reconstruct from a log's activity reports (single streaming
        pass; the per-report logic lives in
        :class:`repro.analysis.streaming.SessionTableFold`)."""
        from repro.analysis.streaming import SessionTableFold, fold_log

        return fold_log(log, SessionTableFold())[0]

    # --- access -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._sessions)

    def __iter__(self):
        return iter(self._sessions.values())

    def get(self, session_id: int) -> Optional[Session]:
        """Look up by id (None when absent)."""
        return self._sessions.get(session_id)

    def sessions(self) -> List[Session]:
        """All reconstructed sessions."""
        return list(self._sessions.values())

    def normal_sessions(self) -> List[Session]:
        """Sessions that reported all four events."""
        return [s for s in self._sessions.values() if s.is_normal]

    # --- Fig. 5: concurrent users over time ---------------------------------
    def concurrent_users(
        self, *, t0: float = 0.0, t1: Optional[float] = None, step_s: float = 60.0
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Concurrent-session counts on a regular grid.

        Sessions without a leave event are treated as still present until
        ``t1`` -- matching the paper's methodology, where abrupt departures
        inflate the apparent tail population slightly.
        """
        joins = [s.join_time for s in self._sessions.values()
                 if s.join_time is not None]
        if t1 is None:
            all_t = joins + [
                s.leave_time for s in self._sessions.values()
                if s.leave_time is not None
            ]
            t1 = max(all_t) + step_s if all_t else t0 + step_s
        grid = np.arange(t0, t1 + step_s / 2, step_s)
        delta = np.zeros(grid.size + 1)
        for s in self._sessions.values():
            if s.join_time is None:
                continue
            j = int(np.searchsorted(grid, s.join_time, side="right"))
            delta[min(j, grid.size)] += 1
            if s.leave_time is not None:
                l = int(np.searchsorted(grid, s.leave_time, side="right"))
                delta[min(l, grid.size)] -= 1
        counts = np.cumsum(delta[:-1])
        return grid, counts

    # --- Figs. 6/7: join timing ------------------------------------------------
    def subscription_delays(self) -> List[float]:
        """All observed start-subscription delays (s)."""
        out = [s.start_subscription_delay for s in self._sessions.values()]
        return [d for d in out if d is not None]

    def ready_delays(self, *, join_after: float = -np.inf,
                     join_before: float = np.inf) -> List[float]:
        """Media-player-ready times, optionally windowed by join time
        (Fig. 7 slices the day into four periods this way)."""
        out = []
        for s in self._sessions.values():
            d = s.ready_delay
            if d is None or s.join_time is None:
                continue
            if join_after <= s.join_time < join_before:
                out.append(d)
        return out

    def buffering_delays(self) -> List[float]:
        """All observed ready-minus-subscription waits (s)."""
        out = [s.buffering_delay for s in self._sessions.values()]
        return [d for d in out if d is not None]

    # --- Fig. 10: durations & retries -------------------------------------------
    def durations(self) -> List[float]:
        """All observed join-to-leave durations (s)."""
        out = [s.duration for s in self._sessions.values()]
        return [d for d in out if d is not None]

    def short_session_fraction(self, threshold_s: float = 60.0) -> float:
        """Fraction of sessions shorter than the threshold."""
        durs = self.durations()
        if not durs:
            return float("nan")
        return sum(1 for d in durs if d < threshold_s) / len(durs)

    def retry_histogram(self) -> Dict[int, int]:
        """retries -> user count, from join events linked by user id.

        A user with ``n`` join events retried ``n - 1`` times; this is how
        the paper derives Fig. 10b (it cannot see intent, only joins).
        """
        joins_per_user: Dict[int, int] = {}
        for s in self._sessions.values():
            if s.join_time is not None:
                joins_per_user[s.user_id] = joins_per_user.get(s.user_id, 0) + 1
        hist: Dict[int, int] = {}
        for n in joins_per_user.values():
            hist[n - 1] = hist.get(n - 1, 0) + 1
        return hist

    def sessions_per_user(self) -> Dict[int, List[Session]]:
        """Sessions grouped by user id, join-ordered."""
        by_user: Dict[int, List[Session]] = {}
        for s in self._sessions.values():
            by_user.setdefault(s.user_id, []).append(s)
        for lst in by_user.values():
            lst.sort(key=lambda s: (s.join_time if s.join_time is not None else np.inf))
        return by_user
