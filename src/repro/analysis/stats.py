"""Shared statistical helpers: empirical CDFs and time binning."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = ["Cdf", "bin_timeseries", "tail_fraction"]


@dataclass(frozen=True)
class Cdf:
    """Empirical cumulative distribution function."""

    xs: np.ndarray  # sorted sample values
    ps: np.ndarray  # cumulative probabilities at xs

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "Cdf":
        """Build from raw samples."""
        arr = np.sort(np.asarray(list(samples), dtype=float))
        if arr.size == 0:
            raise ValueError("cannot build a CDF from zero samples")
        ps = np.arange(1, arr.size + 1, dtype=float) / arr.size
        return cls(xs=arr, ps=ps)

    @property
    def n(self) -> int:
        """Number of underlying samples."""
        return int(self.xs.size)

    def at(self, x: float) -> float:
        """P(X <= x)."""
        return float(np.searchsorted(self.xs, x, side="right") / self.xs.size)

    def quantile(self, q: float) -> float:
        """Inverse CDF (nearest-rank)."""
        if not (0.0 <= q <= 1.0):
            raise ValueError("quantile must be in [0, 1]")
        idx = min(self.xs.size - 1, int(np.ceil(q * self.xs.size)) - 1)
        return float(self.xs[max(0, idx)])

    @property
    def median(self) -> float:
        """The distribution median."""
        return self.quantile(0.5)

    @property
    def mean(self) -> float:
        """The sample mean."""
        return float(self.xs.mean())

    def evaluate(self, grid: Sequence[float]) -> np.ndarray:
        """CDF values on an arbitrary grid (for table rendering)."""
        g = np.asarray(grid, dtype=float)
        return np.searchsorted(self.xs, g, side="right") / self.xs.size

    def table(self, grid: Sequence[float]) -> list[Tuple[float, float]]:
        """(x, P(X<=x)) rows on the given grid."""
        return list(zip([float(g) for g in grid], self.evaluate(grid).tolist()))


def bin_timeseries(
    times: Sequence[float],
    values: Sequence[float],
    *,
    bin_s: float,
    t0: float = 0.0,
    t1: Optional[float] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Average ``values`` into fixed-width time bins.

    Returns ``(bin_centers, means, counts)``; bins with no samples hold
    NaN means.  Used for e.g. the Fig. 8 continuity-vs-time curves where
    each sample is one 5-minute QoS report.
    """
    if bin_s <= 0:
        raise ValueError("bin_s must be positive")
    t = np.asarray(times, dtype=float)
    v = np.asarray(values, dtype=float)
    if t.shape != v.shape:
        raise ValueError("times and values must align")
    if t1 is None:
        t1 = float(t.max()) + bin_s if t.size else t0 + bin_s
    n_bins = max(1, int(np.ceil((t1 - t0) / bin_s)))
    idx = np.floor((t - t0) / bin_s).astype(int)
    mask = (idx >= 0) & (idx < n_bins)
    sums = np.zeros(n_bins)
    counts = np.zeros(n_bins)
    np.add.at(sums, idx[mask], v[mask])
    np.add.at(counts, idx[mask], 1.0)
    means = np.divide(sums, counts, out=np.full(n_bins, np.nan), where=counts > 0)
    centers = t0 + (np.arange(n_bins) + 0.5) * bin_s
    return centers, means, counts


def tail_fraction(samples: Sequence[float], threshold: float) -> float:
    """Fraction of samples strictly above ``threshold``."""
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("no samples")
    return float((arr > threshold).mean())
