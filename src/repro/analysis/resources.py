"""Resource distribution and bottleneck analysis.

Section VI lists as open work: "it is important to analyze the resource
distribution and bottleneck in the system".  This module does that
analysis on our logs plus simulator capacity ground truth:

* system-wide supply/demand ratio over time (the [23] critical-ratio
  quantity: aggregate usable upload vs aggregate stream demand);
* per-class capacity utilization (how much of each class's upload
  capacity actually carries bytes);
* a bottleneck verdict per run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple

import numpy as np

from repro.analysis.stats import bin_timeseries
from repro.network.connectivity import ConnectivityClass
from repro.telemetry.reports import TrafficReport
from repro.telemetry.server import LogServer

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import CoolstreamingSystem

__all__ = [
    "SupplyDemand",
    "supply_demand_snapshot",
    "utilization_by_class",
    "upload_rate_timeseries",
]


@dataclass(frozen=True)
class SupplyDemand:
    """One instant of the capacity balance."""

    time: float
    demand_bps: float           # concurrent viewers x stream rate
    server_supply_bps: float
    peer_supply_bps: float      # reachability-weighted peer upload
    raw_peer_supply_bps: float  # ignoring reachability

    @property
    def supply_bps(self) -> float:
        """Total usable supply (servers + reachable peers)."""
        return self.server_supply_bps + self.peer_supply_bps

    @property
    def ratio(self) -> float:
        """Usable supply over demand -- the critical ratio of [23].
        Infinity when nobody is watching."""
        if self.demand_bps == 0:
            return float("inf")
        return self.supply_bps / self.demand_bps

    @property
    def bottleneck(self) -> str:
        """A verdict: 'none' (ratio >= 1.2), 'tight' (1.0-1.2) or
        'capacity' (under-provisioned)."""
        r = self.ratio
        if r >= 1.2:
            return "none"
        if r >= 1.0:
            return "tight"
        return "capacity"


def supply_demand_snapshot(
    system: "CoolstreamingSystem", *, nat_usability: float = 0.35
) -> SupplyDemand:
    """Capacity balance right now, from simulator ground truth.

    ``nat_usability`` discounts NAT/firewall upload by the probability
    that it is reachable at all (they serve only over partnerships they
    initiated); contributor-class upload counts fully.
    """
    demand = system.concurrent_users * system.cfg.stream_rate_bps
    server_supply = sum(s.upload_bps for s in system.servers if s.alive)
    peer_supply = 0.0
    raw_supply = 0.0
    for peer in system.peers(alive_only=True):
        raw_supply += peer.upload_bps
        if peer.connectivity.is_contributor_class:
            peer_supply += peer.upload_bps
        else:
            peer_supply += nat_usability * peer.upload_bps
    return SupplyDemand(
        time=system.engine.now,
        demand_bps=demand,
        server_supply_bps=server_supply,
        peer_supply_bps=peer_supply,
        raw_peer_supply_bps=raw_supply,
    )


def utilization_by_class(
    system: "CoolstreamingSystem",
) -> Dict[ConnectivityClass, Tuple[float, float]]:
    """Per class: (uploaded bits so far, capacity-seconds so far is not
    tracked, so we report current upload rate share instead).

    Returns class -> (total uploaded bits, share of all uploaded bits).
    """
    totals: Dict[ConnectivityClass, float] = {}
    for node in system.all_streaming_nodes():
        totals.setdefault(node.connectivity, 0.0)
        totals[node.connectivity] += node.scheduler.bits_uploaded
    grand = sum(totals.values())
    return {
        cls: (bits, bits / grand if grand > 0 else 0.0)
        for cls, bits in totals.items()
    }


def upload_rate_timeseries(
    log: LogServer, *, bin_s: float = 300.0, t1: Optional[float] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """System-wide upload throughput (bytes/s) per time bin, from traffic
    reports -- the log-only view of resource usage."""
    times = []
    rates = []
    for report in log.reports_of(TrafficReport):
        assert isinstance(report, TrafficReport)
        times.append(report.time)
        rates.append(report.bytes_up)
    if not times:
        raise ValueError("log contains no traffic reports")
    if t1 is None:
        t1 = max(times) + bin_s
    centers, _means, _counts = bin_timeseries(
        times, rates, bin_s=bin_s, t1=t1
    )
    sums = np.zeros_like(centers)
    idx = np.floor(np.asarray(times) / bin_s).astype(int)
    mask = (idx >= 0) & (idx < sums.size)
    np.add.at(sums, idx[mask], np.asarray(rates)[mask])
    return centers, sums / bin_s
