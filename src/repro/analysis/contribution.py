"""Upload-contribution analysis (Fig. 3b).

The paper's headline imbalance: "30% or so peer nodes in the overlay,
i.e. nodes under UPnP and direct-connect, contribute more than 80% of the
upload bandwidth."  We recover per-node upload totals from traffic
reports, attribute them to the classified user types, and compute the
share/Lorenz statistics.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.classification import UserType
from repro.telemetry.server import LogServer

__all__ = [
    "upload_totals",
    "upload_shares",
    "contribution_by_type",
    "lorenz_curve",
    "top_contributor_share",
]


def upload_totals(log: LogServer) -> Dict[int, float]:
    """Total uploaded bytes per node, from the last traffic report of each
    node (reports carry cumulative totals, so the max is the total).

    Single streaming pass via
    :class:`repro.analysis.streaming.UploadTotalsFold`.
    """
    from repro.analysis.streaming import UploadTotalsFold, fold_log

    return fold_log(log, UploadTotalsFold())[0]


def upload_shares(log: LogServer) -> Dict[int, float]:
    """Per-node fraction of all uploaded bytes."""
    totals = upload_totals(log)
    grand = sum(totals.values())
    if grand <= 0:
        return {nid: 0.0 for nid in totals}
    return {nid: up / grand for nid, up in totals.items()}


def contribution_by_type(
    log: LogServer, types: Optional[Dict[int, UserType]] = None
) -> Dict[UserType, Tuple[float, float]]:
    """Per user type: (population fraction, upload-bytes fraction).

    This is exactly Fig. 3's pairing: compare the ~30% contributor-class
    population share against its >80% byte share.
    """
    if types is None:
        # one streaming pass computes both inputs
        from repro.analysis.streaming import (
            ClassifyUsersFold,
            UploadTotalsFold,
            fold_log,
        )

        types, totals = fold_log(log, ClassifyUsersFold(), UploadTotalsFold())
    else:
        totals = upload_totals(log)
    # population over all classified nodes; bytes over reported traffic
    n = len(types)
    grand = sum(totals.values())
    out: Dict[UserType, Tuple[float, float]] = {}
    for t in UserType:
        members = [nid for nid, ut in types.items() if ut is t]
        pop = len(members) / n if n else 0.0
        byt = (
            sum(totals.get(nid, 0.0) for nid in members) / grand
            if grand > 0 else 0.0
        )
        out[t] = (pop, byt)
    return out


def contributor_class_share(
    log: LogServer, types: Optional[Dict[int, UserType]] = None
) -> Tuple[float, float]:
    """(population fraction, upload fraction) of direct+UPnP peers --
    the paper's "30% contribute more than 80%" statistic."""
    per_type = contribution_by_type(log, types)
    pop = sum(per_type[t][0] for t in UserType if t.is_contributor)
    byt = sum(per_type[t][1] for t in UserType if t.is_contributor)
    return pop, byt


def lorenz_curve(uploads: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Lorenz curve of upload contribution.

    Returns ``(population_fraction, cumulative_upload_fraction)`` with
    nodes sorted ascending by contribution; the Fig. 3b CDF is the same
    data read from the top end.
    """
    arr = np.sort(np.asarray(list(uploads), dtype=float))
    if arr.size == 0:
        raise ValueError("no upload samples")
    if (arr < 0).any():
        raise ValueError("uploads must be non-negative")
    cum = np.cumsum(arr)
    total = cum[-1]
    if total == 0:
        return (
            np.linspace(0, 1, arr.size + 1),
            np.zeros(arr.size + 1),
        )
    x = np.arange(0, arr.size + 1) / arr.size
    y = np.concatenate([[0.0], cum / total])
    return x, y


def top_contributor_share(uploads: Sequence[float], top_fraction: float) -> float:
    """Fraction of bytes uploaded by the top ``top_fraction`` of nodes."""
    if not (0.0 < top_fraction <= 1.0):
        raise ValueError("top_fraction must be in (0, 1]")
    arr = np.sort(np.asarray(list(uploads), dtype=float))[::-1]
    if arr.size == 0:
        raise ValueError("no upload samples")
    total = arr.sum()
    if total == 0:
        return 0.0
    k = max(1, int(round(top_fraction * arr.size)))
    return float(arr[:k].sum() / total)
