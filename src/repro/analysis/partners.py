"""Partner-churn analysis from the compact partner reports.

The deployed log system batches partner add/drop events into 5-minute
partner reports precisely because "nodes might change partners
frequently"; this module unpacks those series again and quantifies the
churn the paper describes qualitatively (Section V.B: unstable peers
"have to re-select parent relatively often").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.classification import UserType
from repro.analysis.stats import bin_timeseries
from repro.telemetry.reports import PartnerOp
from repro.telemetry.server import LogServer

__all__ = [
    "partner_events",
    "churn_rate_timeseries",
    "partnership_lifetimes",
    "churn_by_type",
]


def partner_events(log: LogServer) -> List[Tuple[float, int, PartnerOp, int, bool]]:
    """Flatten every compact partner report back into
    ``(event_time, node_id, op, partner_id, incoming)`` tuples, sorted by
    event time.

    Single streaming pass via
    :class:`repro.analysis.streaming.PartnerEventsFold`.
    """
    from repro.analysis.streaming import PartnerEventsFold, fold_log

    return fold_log(log, PartnerEventsFold())[0]


def churn_rate_timeseries(
    log: LogServer, *, bin_s: float = 300.0, t1: Optional[float] = None
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Partner add and drop counts per time bin.

    Returns ``(bin_centers, adds, drops)`` -- the overlay's re-wiring
    intensity over time; spikes align with flash crowds and program ends.
    """
    events = partner_events(log)
    if not events:
        raise ValueError("log contains no partner events")
    times = np.array([e[0] for e in events])
    is_add = np.array([e[2] is PartnerOp.ADD for e in events], dtype=float)
    if t1 is None:
        t1 = float(times.max()) + bin_s
    centers, _means, add_counts = bin_timeseries(
        times[is_add.astype(bool)], np.ones(int(is_add.sum())),
        bin_s=bin_s, t1=t1,
    )
    _c, _m, drop_counts = bin_timeseries(
        times[~is_add.astype(bool)], np.ones(int((1 - is_add).sum())),
        bin_s=bin_s, t1=t1,
    )
    return centers, add_counts, drop_counts


def partnership_lifetimes(log: LogServer) -> List[float]:
    """Observed partnership lifetimes: time between the ADD and DROP of
    the same (node, partner) pair.  Pairs never dropped (still alive or
    lost to abrupt departure) are right-censored and omitted, exactly as
    they would be in the real trace."""
    open_at: Dict[Tuple[int, int], float] = {}
    lifetimes: List[float] = []
    for t, node, op, partner, _inc in partner_events(log):
        key = (node, partner)
        if op is PartnerOp.ADD:
            open_at[key] = t
        else:
            start = open_at.pop(key, None)
            if start is not None and t >= start:
                lifetimes.append(t - start)
    return lifetimes


def churn_by_type(
    log: LogServer, types: Optional[Dict[int, UserType]] = None
) -> Dict[UserType, float]:
    """Mean partner drops per node, by user type.

    The paper's stability story predicts NAT/firewall peers re-wire more
    than direct/UPnP peers (their parents' children lose competitions).
    """
    if types is None:
        # one streaming pass computes the classifier and the events
        from repro.analysis.streaming import (
            ClassifyUsersFold,
            PartnerEventsFold,
            fold_log,
        )

        types, events = fold_log(
            log, ClassifyUsersFold(), PartnerEventsFold()
        )
    else:
        events = partner_events(log)
    drops: Dict[int, int] = {}
    for _t, node, op, _p, _inc in events:
        if op is PartnerOp.DROP:
            drops[node] = drops.get(node, 0) + 1
    out: Dict[UserType, float] = {}
    for ut in UserType:
        members = [nid for nid, t in types.items() if t is ut]
        if members:
            out[ut] = float(np.mean([drops.get(nid, 0) for nid in members]))
    return out
