"""Continuity-index aggregation (Figs. 8 and 9).

"Continuity index is defined as the number of blocks that arrive before
playback deadlines over the total number of blocks."  Each 5-minute QoS
report carries the window continuity of one node; Fig. 8 bins those
samples by time and user type, Fig. 9 relates run-level averages to
system size and join rate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.classification import UserType
from repro.analysis.stats import bin_timeseries
from repro.telemetry.server import LogServer

__all__ = [
    "continuity_samples",
    "continuity_timeseries",
    "continuity_by_type",
    "mean_continuity",
]


def continuity_samples(
    log: LogServer, *, playing_only: bool = True
) -> List[Tuple[float, int, float]]:
    """(report_time, node_id, continuity) for every QoS report that carried
    a continuity value.

    Single streaming pass via
    :class:`repro.analysis.streaming.ContinuitySamplesFold`.
    """
    from repro.analysis.streaming import ContinuitySamplesFold, fold_log

    return fold_log(log, ContinuitySamplesFold(playing_only=playing_only))[0]


def continuity_timeseries(
    log: LogServer, *, bin_s: float = 300.0, t0: float = 0.0,
    t1: Optional[float] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Average continuity over all users per time bin (centers, means,
    sample counts)."""
    samples = continuity_samples(log)
    if not samples:
        raise ValueError("log contains no continuity samples")
    times = [s[0] for s in samples]
    values = [s[2] for s in samples]
    return bin_timeseries(times, values, bin_s=bin_s, t0=t0, t1=t1)


def continuity_by_type(
    log: LogServer,
    *,
    bin_s: float = 300.0,
    t0: float = 0.0,
    t1: Optional[float] = None,
    types: Optional[Dict[int, UserType]] = None,
) -> Dict[UserType, Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Fig. 8: continuity-vs-time, one series per user type.

    Types come from the Section V.B classifier unless supplied.  Note the
    paper's artefact is preserved end-to-end: NAT/firewall nodes that
    stalled and departed never delivered the QoS report covering their bad
    window, so their curve can sit *above* the direct-connect curve.
    """
    if types is None:
        # one streaming pass computes the classifier and the samples
        from repro.analysis.streaming import (
            ClassifyUsersFold,
            ContinuitySamplesFold,
            fold_log,
        )

        types, samples = fold_log(
            log, ClassifyUsersFold(), ContinuitySamplesFold()
        )
    else:
        samples = continuity_samples(log)
    if not samples:
        raise ValueError("log contains no continuity samples")
    out: Dict[UserType, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
    horizon = t1 if t1 is not None else max(s[0] for s in samples) + bin_s
    for ut in UserType:
        sub = [s for s in samples if types.get(s[1]) is ut]
        if not sub:
            continue
        out[ut] = bin_timeseries(
            [s[0] for s in sub], [s[2] for s in sub],
            bin_s=bin_s, t0=t0, t1=horizon,
        )
    return out


def mean_continuity(
    log: LogServer, *, after: float = 0.0, types: Optional[Dict[int, UserType]] = None,
    user_type: Optional[UserType] = None,
) -> float:
    """Run-level average continuity (the Fig. 9 y-value), optionally for
    one user type and excluding warm-up reports before ``after``."""
    if user_type is not None and types is None:
        from repro.analysis.streaming import (
            ClassifyUsersFold,
            ContinuitySamplesFold,
            fold_log,
        )

        types, samples = fold_log(
            log, ClassifyUsersFold(), ContinuitySamplesFold()
        )
    else:
        samples = continuity_samples(log)
    values = []
    for t, node_id, c in samples:
        if t < after:
            continue
        if user_type is not None and types.get(node_id) is not user_type:
            continue
        values.append(c)
    if not values:
        return float("nan")
    return float(np.mean(values))
