"""The Section V.B user-type classifier.

"Based on their IP addresses, we can classify the users into private or
public users.  By checking whether they are successful in establishing TCP
connections or not, we can further classify users into ... Direct-connect
/ UPnP / NAT / Firewall."

We reproduce that inference, including its fallibility ("this is primarily
based on the local information ... thus errors can occur"): the classifier
sees only (a) the address-type flag from activity reports and (b) the
incoming/outgoing partnership counters from partner reports.  A
direct-connect peer that never happened to receive an incoming partnership
is misclassified as firewalled, exactly as in the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from repro.network.connectivity import ConnectivityClass
from repro.telemetry.server import LogServer

__all__ = ["UserType", "classify_users", "expected_user_type"]


class UserType(str, enum.Enum):
    """The four observable classes of Fig. 3a."""

    DIRECT = "direct"
    UPNP = "upnp"
    NAT = "nat"
    FIREWALL = "firewall"

    @property
    def is_contributor(self) -> bool:
        """Whether this type belongs to the contributor classes."""
        return self in (UserType.DIRECT, UserType.UPNP)


def expected_user_type(cls: ConnectivityClass) -> UserType:
    """Ground-truth mapping (what a perfect classifier would output)."""
    return {
        ConnectivityClass.DIRECT: UserType.DIRECT,
        ConnectivityClass.UPNP: UserType.UPNP,
        ConnectivityClass.NAT: UserType.NAT,
        ConnectivityClass.FIREWALL: UserType.FIREWALL,
    }[cls]


@dataclass
class _Observed:
    address_public: Optional[bool] = None
    incoming: int = 0
    outgoing: int = 0


def classify_users(log: LogServer) -> Dict[int, UserType]:
    """Classify every node seen in the log, per the Section V.B rules.

    Returns node_id -> :class:`UserType`.  Nodes with no partner report at
    all (very short sessions) are classified from address type alone:
    public -> firewall, private -> NAT -- the conservative choice, since
    no incoming partnership was ever observed.

    Single streaming pass; the per-report logic lives in
    :class:`repro.analysis.streaming.ClassifyUsersFold`.
    """
    from repro.analysis.streaming import ClassifyUsersFold, fold_log

    return fold_log(log, ClassifyUsersFold())[0]


def type_distribution(types: Dict[int, UserType]) -> Dict[UserType, float]:
    """Fractions per user type (the Fig. 3a pie)."""
    if not types:
        return {t: 0.0 for t in UserType}
    n = len(types)
    out = {t: 0.0 for t in UserType}
    for t in types.values():
        out[t] += 1.0 / n
    return out
