"""Overlay-topology analysis (Fig. 4 and the Section V.B conjecture).

The paper could not capture topology snapshots ("it is usually difficult
to capture the exact snapshot of the overlay topology in a real system")
and instead *conjectured* the structure: peers clog under direct/UPnP
parents, links among NAT/firewall peers are rare, and the mesh resembles a
tree with a few random links.  Our simulator can take exact snapshots, so
this module both reproduces the conjectured statistics and verifies the
convergence claim (the fraction of stable contributor-parented peers grows
over time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict

import networkx as nx

from repro.network.connectivity import ConnectivityClass

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import CoolstreamingSystem

__all__ = ["OverlaySnapshot", "snapshot_overlay"]


@dataclass(frozen=True)
class OverlaySnapshot:
    """One instant of the parent-child overlay.

    The graph is a directed multigraph-flattened DiGraph: an edge (p, c)
    exists when p serves c at least one sub-stream; edge attribute
    ``substreams`` counts how many.
    """

    time: float
    graph: nx.DiGraph
    classes: Dict[int, ConnectivityClass]
    source_id: int

    # --- Fig. 4 statistics --------------------------------------------------
    @property
    def n_peers(self) -> int:
        """Number of user peers in the snapshot."""
        return sum(
            1 for n, c in self.classes.items()
            if c is not ConnectivityClass.SERVER
        )

    def contributor_parent_fraction(self) -> float:
        """Fraction of peer-held sub-stream subscriptions whose parent is a
        direct/UPnP peer or a server -- "large amount of peers tends to
        clog under direct-connect/UPnP peers"."""
        total = 0
        contributed = 0
        for p, c, data in self.graph.edges(data=True):
            if self.classes.get(c) is ConnectivityClass.SERVER:
                continue  # a server's parents are infrastructure
            w = data.get("substreams", 1)
            total += w
            if self.classes.get(p, ConnectivityClass.NAT).is_contributor_class:
                contributed += w
        return contributed / total if total else float("nan")

    def random_link_fraction(self) -> float:
        """Fraction of peer-to-peer edges where *both* endpoints are
        NAT/firewall -- the "random links" the paper calls relatively rare."""
        total = 0
        random_links = 0
        for p, c in self.graph.edges():
            cp = self.classes.get(p)
            cc = self.classes.get(c)
            if cp is ConnectivityClass.SERVER or cc is ConnectivityClass.SERVER:
                continue
            total += 1
            if (cp is not None and not cp.is_contributor_class
                    and cc is not None and not cc.is_contributor_class):
                random_links += 1
        return random_links / total if total else float("nan")

    def depth_distribution(self) -> Dict[int, int]:
        """Hop distance from the source, per peer (depth -> count).

        Unreachable peers (no parent chain to the source at this instant)
        are reported at depth -1.
        """
        lengths = nx.single_source_shortest_path_length(self.graph, self.source_id)
        out: Dict[int, int] = {}
        for node, cls in self.classes.items():
            if cls is ConnectivityClass.SERVER or node == self.source_id:
                continue
            d = lengths.get(node, -1)
            out[d] = out.get(d, 0) + 1
        return out

    def mean_depth(self) -> float:
        """Mean hop distance from the source over reachable peers."""
        dist = self.depth_distribution()
        pairs = [(d, n) for d, n in dist.items() if d >= 0]
        total = sum(n for _d, n in pairs)
        if total == 0:
            return float("nan")
        return sum(d * n for d, n in pairs) / total

    def out_degree_by_class(self) -> Dict[ConnectivityClass, float]:
        """Mean sub-stream out-degree (D_p) per connectivity class."""
        sums: Dict[ConnectivityClass, float] = {}
        counts: Dict[ConnectivityClass, int] = {}
        degrees: Dict[int, int] = {}
        for p, _c, data in self.graph.edges(data=True):
            degrees[p] = degrees.get(p, 0) + data.get("substreams", 1)
        for node, cls in self.classes.items():
            sums[cls] = sums.get(cls, 0.0) + degrees.get(node, 0)
            counts[cls] = counts.get(cls, 0) + 1
        return {
            cls: sums[cls] / counts[cls] for cls in sums if counts[cls] > 0
        }


def snapshot_overlay(system: "CoolstreamingSystem") -> OverlaySnapshot:
    """Capture the current parent-child overlay of a running system."""
    graph = nx.DiGraph()
    classes: Dict[int, ConnectivityClass] = {}
    from repro.core.source import SOURCE_ID

    classes[SOURCE_ID] = ConnectivityClass.SERVER
    graph.add_node(SOURCE_ID)
    for node in system.all_streaming_nodes():
        classes[node.node_id] = node.connectivity
        graph.add_node(node.node_id)
    for parent, child, _sub in system.parent_child_edges():
        if graph.has_edge(parent, child):
            graph[parent][child]["substreams"] += 1
        else:
            graph.add_edge(parent, child, substreams=1)
    return OverlaySnapshot(
        time=system.engine.now, graph=graph, classes=classes, source_id=SOURCE_ID
    )
