"""Content-hash result cache for ``repro check --cache DIR``.

Each checked file is keyed on the SHA-256 of its raw bytes plus the
*rule signature* (``RULESET_VERSION`` + the sorted active rule ids), so
a cache entry can never survive a rule change or a ``--select`` swap.
An entry stores the file's harvested :class:`~repro.check.project.FileFacts`
together with its per-file findings -- a warm run rebuilds the full
:class:`~repro.check.project.ProjectContext` (and thus re-runs every
project rule) without parsing a single unchanged file, which is what
makes the clean-tree CI gate and pre-commit use near-instant.

Entries are plain JSON files written atomically (tmp + rename);
anything unreadable or mismatched is treated as a miss and rewritten.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import List, Optional, Tuple

from repro.check.engine import RULESET_VERSION, Finding, Rule
from repro.check.project import FileFacts

__all__ = ["ResultCache", "rule_signature"]

_ENTRY_VERSION = 1


def rule_signature(rules: List[Rule]) -> str:
    """Cache-key component tying entries to the exact active rule set."""
    return f"{RULESET_VERSION}:{','.join(sorted(r.id for r in rules))}"


class ResultCache:
    """Per-file (facts, findings) store under one directory."""

    def __init__(self, root: Path, rules: List[Rule]) -> None:
        self.root = root
        self.rulesig = rule_signature(rules)
        self.root.mkdir(parents=True, exist_ok=True)

    def _entry_path(self, data: bytes) -> Path:
        digest = hashlib.sha256(data).hexdigest()
        sig = hashlib.sha256(self.rulesig.encode("utf-8")).hexdigest()[:12]
        return self.root / f"{digest}-{sig}.json"

    def lookup(self, data: bytes) -> Optional[Tuple[FileFacts,
                                                    List[Finding]]]:
        """Cached (facts, findings) for these file bytes, or ``None``."""
        path = self._entry_path(data)
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if (doc.get("entry_version") != _ENTRY_VERSION
                or doc.get("rulesig") != self.rulesig):
            return None
        try:
            facts = FileFacts.from_json(doc["facts"])
            findings = [Finding.from_dict(d) for d in doc["findings"]]
        except (KeyError, TypeError, IndexError):
            return None
        return facts, findings

    def store(self, data: bytes, facts: FileFacts,
              findings: List[Finding]) -> None:
        """Persist one file's results; failures are silently ignored
        (a broken cache degrades to a cold run, never to wrong output)."""
        path = self._entry_path(data)
        doc = {
            "entry_version": _ENTRY_VERSION,
            "rulesig": self.rulesig,
            "facts": facts.to_json(),
            "findings": [f.to_dict() for f in findings],
        }
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        try:
            tmp.write_text(json.dumps(doc, sort_keys=True),
                           encoding="utf-8")
            tmp.replace(path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
