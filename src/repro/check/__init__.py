"""repro.check -- determinism lint for the simulation stack.

The reproduction's headline guarantees (byte-identical workload
realizations across engines, content-addressed campaign caching,
seed-determinism regression tests) all rest on one convention: every
stochastic or ordering-sensitive operation routes through
:mod:`repro.sim.rng` named streams.  A single unseeded
``random.random()``, wall-clock read, or ``set`` iteration in a hot path
silently poisons cache keys and the parity harness.

This package is a custom AST-based static-analysis pass that makes such
regressions visible before they merge::

    python -m repro check src/            # text findings, exit 1 if any
    python -m repro check src/ --format json
    python -m repro check --list-rules

Rule catalog
------------

======  ==============================================================
DET001  unseeded global RNG use (``random.*`` / ``numpy.random.*``
        module-level draws) -- use :class:`repro.sim.rng.RngHub`
DET002  wall-clock reads (``time.time``, ``datetime.now``,
        ``perf_counter``, ...) outside the obs/telemetry allowlist
DET003  iteration over ``set``/``frozenset`` (or ``dict.keys()``
        feeding RNG draws): hash-order-dependent behaviour
FLT001  float ``==`` / ``!=`` comparisons outside tests
CFG001  config dataclass numeric field lacking validation in
        ``__post_init__`` while sibling fields are validated
======  ==============================================================

Findings are suppressed per line with ``# repro: noqa[RULE]`` (comma
lists allowed; bare ``# repro: noqa`` suppresses every rule) plus a
short justification comment.

Exit codes: 0 clean, 1 findings, 2 usage/parse error.
"""

from repro.check.engine import (
    CheckReport,
    Finding,
    Rule,
    all_rules,
    check_paths,
    check_source,
    register,
)

# importing the rule modules populates the registry
import repro.check.rules_determinism  # noqa: F401
import repro.check.rules_float  # noqa: F401
import repro.check.rules_config  # noqa: F401

__all__ = [
    "CheckReport",
    "Finding",
    "Rule",
    "all_rules",
    "check_paths",
    "check_source",
    "register",
]
