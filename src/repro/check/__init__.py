"""repro.check -- static contract analysis for the simulation stack.

The reproduction's headline guarantees (byte-identical workload
realizations across engines, content-addressed campaign caching,
seed-determinism regression tests) all rest on one convention: every
stochastic or ordering-sensitive operation routes through
:mod:`repro.sim.rng` named streams.  A single unseeded
``random.random()``, wall-clock read, or ``set`` iteration in a hot path
silently poisons cache keys and the parity harness.

v2 grew the per-file determinism lint into a **two-pass project
analyzer**: pass 1 harvests cross-module facts from every file
(telemetry wire fields written by ``Report.to_params`` /
``to_log_string``, fields each analysis ``Fold`` reads, obs metric
names emitted vs referenced, the async function inventory -- see
:mod:`repro.check.project`); pass 2 runs the per-file rules plus
*project rules* that check producer/consumer contracts across module
boundaries -- the drift class that corrupts reproduced figures without
ever crashing::

    python -m repro check src/              # text findings, exit 1 if any
    python -m repro check src/ --output json
    python -m repro check src/ --output sarif   # PR-diff annotations
    python -m repro check src/ --cache .repro-check-cache
    python -m repro check --list-rules

Rule catalog
------------

======  ==============================================================
DET001  unseeded global RNG use (``random.*`` / ``numpy.random.*``
        module-level draws) -- use :class:`repro.sim.rng.RngHub`
DET002  wall-clock reads (``time.time``, ``datetime.now``,
        ``perf_counter``, ...) outside the obs/telemetry allowlist
DET003  iteration over ``set``/``frozenset`` (or ``dict.keys()``
        feeding RNG draws): hash-order-dependent behaviour
FLT001  float ``==`` / ``!=`` comparisons outside tests
CFG001  config dataclass numeric field lacking validation in
        ``__post_init__`` while sibling fields are validated
ASY001  blocking call (``time.sleep``, sync socket/file I/O,
        ``subprocess.run``) inside an ``async def``
ASY002  coroutine called but never awaited or scheduled (project)
ASY003  ``create_task``/``ensure_future`` result dropped without a
        reference or done-callback (silent task death)
SCH001  telemetry field read (fold / ``from_params``) that no report
        emits; also ``to_params``/``to_log_string`` twin drift (project)
SCH002  *warn*: emitted telemetry field nothing consumes (project)
OBS001  metric name referenced in watch/exporters that no
        instrumentation site emits (project)
UNIT001 additive arithmetic mixing unit suffixes (``_s``/``_ms`` vs
        ``_blocks`` vs ``_bps``/``_kbps``)
======  ==============================================================

Findings are suppressed with ``# repro: noqa[RULE]`` (comma lists
allowed; bare ``# repro: noqa`` suppresses every rule) plus a short
justification comment.  A marker on *any* physical line of a
multi-line statement covers the whole statement.

Exit codes: 0 clean (warn-only findings included), 1 error-severity
findings, 2 usage/parse error.
"""

from repro.check.engine import (
    CheckReport,
    Finding,
    Rule,
    all_rules,
    check_paths,
    check_source,
    register,
)
from repro.check.project import FileFacts, ProjectContext, harvest_file

# importing the rule modules populates the registry
import repro.check.rules_determinism  # noqa: F401
import repro.check.rules_float  # noqa: F401
import repro.check.rules_config  # noqa: F401
import repro.check.rules_async  # noqa: F401
import repro.check.rules_schema  # noqa: F401
import repro.check.rules_obs  # noqa: F401
import repro.check.rules_units  # noqa: F401

__all__ = [
    "CheckReport",
    "FileFacts",
    "Finding",
    "ProjectContext",
    "Rule",
    "all_rules",
    "check_paths",
    "check_source",
    "harvest_file",
    "register",
]
