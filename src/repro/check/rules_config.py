"""CFG001: config dataclass fields missing ``__post_init__`` validation.

The config dataclasses (``SystemConfig``, ``FastSimConfig``, ...) are
the public override surface of every experiment and campaign: a
mistyped override that no ``__post_init__`` guard catches runs an
entire sweep at a nonsense operating point, and the content-addressed
cache then remembers the garbage forever.  Where a config class already
validates *some* fields, every numeric sibling should be validated too
(or carry an explicit suppression stating why no constraint exists).

Scope: ``@dataclass`` classes whose name contains ``Config`` and that
define ``__post_init__``.  Fields count as validated when
``__post_init__`` references ``self.<field>`` anywhere (guards usually
read the field; cross-field checks validate both operands).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from repro.check.engine import FileContext, Finding, Rule, register

__all__ = ["UnvalidatedConfigField"]

#: annotations treated as numeric (validatable by range checks)
_NUMERIC_ANNOTATIONS = frozenset({"int", "float"})


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def _numeric_fields(node: ast.ClassDef) -> List[Tuple[str, ast.AnnAssign]]:
    fields: List[Tuple[str, ast.AnnAssign]] = []
    for stmt in node.body:
        if not (isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)):
            continue
        ann = stmt.annotation
        name = None
        if isinstance(ann, ast.Name):
            name = ann.id
        elif isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            name = ann.value
        if name in _NUMERIC_ANNOTATIONS:
            fields.append((stmt.target.id, stmt))
    return fields


def _self_references(fn: ast.FunctionDef) -> Set[str]:
    refs: Set[str] = set()
    for sub in ast.walk(fn):
        if (isinstance(sub, ast.Attribute)
                and isinstance(sub.value, ast.Name)
                and sub.value.id == "self"):
            refs.add(sub.attr)
    return refs


@register
class UnvalidatedConfigField(Rule):
    """CFG001: numeric config field unvalidated while siblings validate."""

    id = "CFG001"
    title = "config field lacks __post_init__ validation"
    rationale = ("configs are the campaign override surface; unvalidated "
                 "numeric fields let nonsense operating points into the "
                 "content-addressed cache")
    interests = ("ClassDef",)

    def on_node(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.ClassDef)
        if "Config" not in node.name or not _is_dataclass_decorated(node):
            return
        post_init = next(
            (s for s in node.body
             if isinstance(s, ast.FunctionDef) and s.name == "__post_init__"),
            None,
        )
        if post_init is None:
            return
        fields = _numeric_fields(node)
        if not fields:
            return
        validated = _self_references(post_init)
        if not any(name in validated for name, _ in fields):
            return  # no sibling validates: out of this rule's scope
        for name, stmt in fields:
            if name not in validated:
                yield ctx.finding(
                    self, stmt,
                    f"{node.name}.{name} is never referenced in "
                    f"__post_init__ while sibling fields are validated; "
                    f"add a range check or noqa with justification")
