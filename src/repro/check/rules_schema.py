"""Telemetry schema-conformance rules: SCH001 / SCH002.

The measurement pipeline's layers communicate through flat
``name=value`` log strings (Section V.A): reports serialize in
``telemetry/reports.py``, the log server ingests, and every figure is
reconstructed by the folds in ``analysis/streaming.py``.  A field-name
drift between producer and consumer does not crash -- the fold quietly
reads nothing and the reproduced figure is silently wrong.  These rules
check the contract statically from the harvested fact tables:

* **SCH001** (error): a consumer reads a field no producer emits --
  a fold reading an unknown report attribute, a fold reading a
  dataclass field whose wire key nothing writes, ``from_params``
  reading a wire key nothing writes, or a ``to_params`` /
  ``to_log_string`` pair drifting apart within one class.
* **SCH002** (warn): the converse -- an emitted wire key nothing ever
  reads back.  Dead fields are wasted log-server load (the paper's
  partner reports exist precisely to cut that load), but they corrupt
  nothing, hence warn severity.

Each check is guarded on its fact table being non-empty, so checking a
lone consumer file (no report classes in view) never mass-fires.
"""

from __future__ import annotations

from typing import Iterator

from repro.check.engine import Finding, Rule, register
from repro.check.project import ProjectContext

__all__ = ["SchemaReadWithoutWriter", "SchemaWriteWithoutReader"]


@register
class SchemaReadWithoutWriter(Rule):
    """SCH001: telemetry field read that no report emits."""

    id = "SCH001"
    title = "telemetry field read but never emitted"
    rationale = ("a fold or from_params reading a field no report "
                 "writes silently reconstructs figures from nothing -- "
                 "schema drift corrupts results without crashing")
    project = True

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        # fold attribute reads vs the report attribute universe
        if project.report_attrs:
            for facts in project.files:
                for cls, attr, line, col in facts.fold_reads:
                    if attr not in project.report_attrs:
                        yield self.project_finding(
                            facts.path, line, col,
                            f"fold {cls} reads report.{attr}, which no "
                            "report class defines")
                    else:
                        keys = project.field_keys.get(attr)
                        if keys and not (keys & project.emitted_keys):
                            wire = ", ".join(sorted(keys))
                            yield self.project_finding(
                                facts.path, line, col,
                                f"fold {cls} reads report.{attr} (wire "
                                f"field {wire}), which no report emits")
        # from_params reads vs the emitted wire-key universe
        if project.emitted_keys:
            for facts in project.files:
                reads = dict(facts.global_param_reads)
                for rc in facts.report_classes.values():
                    reads.update(rc.param_reads)
                for key, (line, col) in sorted(reads.items()):
                    if key not in project.emitted_keys:
                        yield self.project_finding(
                            facts.path, line, col,
                            f"wire field {key!r} is parsed but no "
                            "report ever emits it")
        # to_params / to_log_string twins must agree within a class
        for facts in project.files:
            for cls, rc in sorted(facts.report_classes.items()):
                if not rc.param_writes or not rc.wire_writes:
                    continue  # no hand-written f-string twin to drift
                for key in sorted(set(rc.wire_writes) - set(rc.param_writes)):
                    line, col = rc.wire_writes[key]
                    yield self.project_finding(
                        facts.path, line, col,
                        f"{cls}.to_log_string writes {key!r} but "
                        "to_params does not (twin drift)")
                for key in sorted(set(rc.param_writes) - set(rc.wire_writes)):
                    line, col = rc.param_writes[key]
                    yield self.project_finding(
                        facts.path, line, col,
                        f"{cls}.to_params writes {key!r} but "
                        "to_log_string does not (twin drift)")


@register
class SchemaWriteWithoutReader(Rule):
    """SCH002 (warn): emitted telemetry field nothing consumes."""

    id = "SCH002"
    title = "telemetry field emitted but never consumed"
    severity = "warn"
    rationale = ("dead wire fields are pure log-server load -- the "
                 "paper batches partner reports precisely to cut that "
                 "load; warn-level because nothing is corrupted")
    project = True

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        if not project.read_keys:
            return  # no consumer in view: nothing to compare against
        for facts in project.files:
            for cls, rc in sorted(facts.report_classes.items()):
                writes = dict(rc.param_writes)
                for key, loc in rc.wire_writes.items():
                    writes.setdefault(key, loc)
                for key, (line, col) in sorted(writes.items()):
                    if key not in project.read_keys:
                        yield self.project_finding(
                            facts.path, line, col,
                            f"{cls} emits wire field {key!r} but "
                            "nothing ever reads it back")
