"""Determinism rules: global RNG, wall clocks, unordered iteration.

These encode the invariants the cross-engine parity harness and the
campaign cache depend on (DESIGN.md, PR 1-3): randomness flows through
:class:`repro.sim.rng.RngHub` named streams only, simulation/analysis
code never reads the wall clock, and nothing iterates a hash-ordered
container where the order can feed RNG draws or event scheduling.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.check.engine import FileContext, Finding, Rule, register

__all__ = ["UnseededGlobalRng", "WallClockRead", "UnorderedIteration"]


#: numpy.random names that *construct seeded machinery* rather than draw
#: from the hidden global state -- these are exactly how disciplined code
#: builds its streams.
_SEEDED_CONSTRUCTORS = frozenset({
    "numpy.random.Generator",
    "numpy.random.default_rng",
    "numpy.random.SeedSequence",
    "numpy.random.BitGenerator",
    "numpy.random.PCG64",
    "numpy.random.PCG64DXSM",
    "numpy.random.MT19937",
    "numpy.random.Philox",
    "numpy.random.SFC64",
    # legacy but explicitly seeded when constructed with a seed argument;
    # the draw methods on the *instance* are out of static reach anyway
    "numpy.random.RandomState",
})

#: stdlib ``random`` names that are classes, not draws from the global
#: instance (``random.Random(seed)`` is somebody constructing a stream).
_STDLIB_RNG_CLASSES = frozenset({
    "random.Random",
    "random.SystemRandom",
})


@register
class UnseededGlobalRng(Rule):
    """DET001: draws from process-global RNG state.

    ``random.random()`` / ``np.random.normal()`` share one hidden global
    generator: any new call site perturbs every downstream draw and the
    realization stops being a pure function of ``(seed, stream name)``.
    """

    id = "DET001"
    title = "unseeded global RNG use"
    rationale = ("module-level random/numpy.random draws bypass RngHub "
                 "named streams and poison seed determinism")
    interests = ("Call",)

    def on_node(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        full = ctx.resolve(node.func)
        if full is None:
            return
        if full.startswith("random.") and full not in _STDLIB_RNG_CLASSES:
            yield ctx.finding(
                self, node,
                f"global stdlib RNG call {full}(); draw from an "
                f"RngHub named stream instead")
        elif (full.startswith("numpy.random.")
                and full not in _SEEDED_CONSTRUCTORS):
            yield ctx.finding(
                self, node,
                f"global numpy RNG call {full}(); draw from an "
                f"RngHub named stream instead")


#: qualified names that read the host clock
_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})


@register
class WallClockRead(Rule):
    """DET002: wall-clock reads in simulation/analysis code.

    Simulated time comes from the engine; host-clock reads make results
    (and therefore campaign cache payloads) depend on machine load.
    Instrumentation layers are allowlisted by path: ``obs`` and
    ``telemetry`` exist to measure wall time.
    """

    id = "DET002"
    title = "wall-clock read outside obs/telemetry"
    rationale = ("host-clock reads make simulation/analysis output "
                 "machine-dependent; only instrumentation may time things")
    interests = ("Call",)

    #: path components that legitimately measure wall time
    allowlist_parts: Tuple[str, ...] = ("obs", "telemetry")

    def applies_to(self, path: str) -> bool:
        parts = path.replace("\\", "/").split("/")
        return not any(p in parts for p in self.allowlist_parts)

    def on_node(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        full = ctx.resolve(node.func)
        if full in _WALL_CLOCK:
            yield ctx.finding(
                self, node,
                f"wall-clock read {full}(); use simulated time or move "
                f"the measurement into obs/telemetry")


def _is_set_expr(node: ast.AST) -> bool:
    """A literal ``{...}`` set or a direct ``set(...)``/``frozenset(...)``."""
    if isinstance(node, ast.Set):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _is_keys_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "keys")


#: ``<obj>.<attr>(...)`` attrs that consume iteration order into RNG or
#: scheduling decisions
_ORDER_SINKS = frozenset({"choice", "shuffle", "permutation", "permuted"})


@register
class UnorderedIteration(Rule):
    """DET003: hash-ordered iteration feeding order-sensitive consumers.

    Set iteration order depends on ``PYTHONHASHSEED`` for str keys;
    looping over one, materialising it with ``list()``, or feeding it to
    ``rng.choice`` makes behaviour vary across processes.  Wrap in
    ``sorted(...)`` to pin the order.
    """

    id = "DET003"
    title = "iteration over unordered set / keys into RNG"
    rationale = ("set iteration order is hash-dependent; sort before "
                 "iterating, materialising, or feeding RNG draws")
    interests = ("For", "comprehension", "Call")

    def on_node(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if isinstance(node, ast.For):
            if _is_set_expr(node.iter):
                yield ctx.finding(
                    self, node.iter,
                    "for-loop over a set: iteration order is "
                    "hash-dependent; use sorted(...)")
        elif isinstance(node, ast.comprehension):
            if _is_set_expr(node.iter):
                yield ctx.finding(
                    self, node.iter,
                    "comprehension over a set: iteration order is "
                    "hash-dependent; use sorted(...)")
        elif isinstance(node, ast.Call):
            # list(set(...)) / tuple({...}) / enumerate(set(...)):
            # materialises an unordered container without sorting
            if (isinstance(node.func, ast.Name)
                    and node.func.id in ("list", "tuple", "enumerate")
                    and node.args and _is_set_expr(node.args[0])):
                yield ctx.finding(
                    self, node,
                    f"{node.func.id}() over a set keeps hash order; "
                    f"use sorted(...)")
            # rng.choice(set(...)) / rng.shuffle(d.keys()) etc.: order
            # feeds the draw directly
            elif (isinstance(node.func, ast.Attribute)
                    and node.func.attr in _ORDER_SINKS
                    and node.args
                    and (_is_set_expr(node.args[0])
                         or _is_keys_call(node.args[0]))):
                yield ctx.finding(
                    self, node,
                    f".{node.func.attr}() fed by unordered iteration; "
                    f"sort the candidates first")
