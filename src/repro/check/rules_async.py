"""Async-safety rules: ASY001 (blocking call in ``async def``),
ASY002 (coroutine never awaited), ASY003 (dropped task reference).

The ``repro.net`` backend multiplexes every peer of a deployment onto
one event loop, so a single blocking call stalls *all* peers at once
and distorts the very timing measurements the backend exists to take.
The other two rules target the quieter failure modes: a coroutine
called like a function silently does nothing, and a task created
without a saved reference can be garbage-collected mid-flight -- the
"silent task death" the kill-one-peer recovery test probes dynamically,
checked statically here.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List

from repro.check.engine import FileContext, Finding, Rule, register
from repro.check.project import ProjectContext

__all__ = ["BlockingCallInAsync", "CoroutineNeverAwaited",
           "DroppedTaskReference"]


#: qualified names that block the calling thread; values suggest the fix
_BLOCKING: Dict[str, str] = {
    "time.sleep": "await asyncio.sleep(...) instead",
    "subprocess.run": "use asyncio.create_subprocess_exec",
    "subprocess.call": "use asyncio.create_subprocess_exec",
    "subprocess.check_call": "use asyncio.create_subprocess_exec",
    "subprocess.check_output": "use asyncio.create_subprocess_exec",
    "subprocess.getoutput": "use asyncio.create_subprocess_exec",
    "subprocess.getstatusoutput": "use asyncio.create_subprocess_exec",
    "os.system": "use asyncio.create_subprocess_shell",
    "socket.create_connection": "use loop.sock_connect / open_connection",
    "socket.getaddrinfo": "use loop.getaddrinfo",
    "socket.gethostbyname": "use loop.getaddrinfo",
    "urllib.request.urlopen": "use a non-blocking transport",
}


def _direct_nodes(fn: ast.AST) -> Iterator[ast.AST]:
    """Nodes executed *by this coroutine itself*: nested function and
    lambda bodies are deferred work, not blocking at definition time."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


@register
class BlockingCallInAsync(Rule):
    """ASY001: a thread-blocking call inside an ``async def``."""

    id = "ASY001"
    title = "blocking call inside async def"
    rationale = ("one event loop runs every peer of a net deployment; "
                 "a blocking call (time.sleep, sync socket/file I/O, "
                 "subprocess.run) stalls them all and skews timing")
    interests = ("AsyncFunctionDef",)

    def on_node(self, node: ast.AST,
                ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.AsyncFunctionDef)
        for sub in _direct_nodes(node):
            if not isinstance(sub, ast.Call):
                continue
            resolved = ctx.resolve(sub.func)
            if resolved in _BLOCKING:
                yield ctx.finding(
                    self, sub,
                    f"blocking {resolved}() inside async def "
                    f"{node.name}; {_BLOCKING[resolved]}")
            elif (isinstance(sub.func, ast.Name)
                    and sub.func.id == "open"
                    and ctx.resolve(sub.func) is None):
                yield ctx.finding(
                    self, sub,
                    f"blocking file open() inside async def {node.name}; "
                    "do file I/O outside the event loop or via a thread")


@register
class CoroutineNeverAwaited(Rule):
    """ASY002: coroutine called as a statement -- never awaited."""

    id = "ASY002"
    title = "coroutine called but never awaited/scheduled"
    rationale = ("calling an async function without await/create_task "
                 "builds a coroutine object and discards it: the body "
                 "never runs, and Python only warns at GC time")
    project = True

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for facts in project.files:
            for kind, name, resolved, line, col in facts.bare_calls:
                if kind == "name":
                    qualified = f"{facts.module}.{name}"
                    if (resolved in project.async_funcs
                            or qualified in project.async_funcs):
                        yield self.project_finding(
                            facts.path, line, col,
                            f"coroutine {name}() is called but never "
                            "awaited or scheduled; its body will not run")
                else:
                    # only flag method names that are unambiguously
                    # async across the whole project
                    if (name in project.async_methods
                            and name not in project.sync_methods):
                        yield self.project_finding(
                            facts.path, line, col,
                            f"coroutine method .{name}() is called but "
                            "never awaited or scheduled; its body will "
                            "not run")


@register
class DroppedTaskReference(Rule):
    """ASY003: ``create_task`` / ``ensure_future`` result discarded."""

    id = "ASY003"
    title = "task reference dropped at creation"
    rationale = ("the event loop holds only a weak reference to tasks; "
                 "an unreferenced task can be garbage-collected "
                 "mid-flight and die silently (no exception, no log)")
    interests = ("Expr",)

    _SPAWNERS = frozenset({"create_task", "ensure_future"})

    def on_node(self, node: ast.AST,
                ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Expr)
        call = node.value
        if not isinstance(call, ast.Call):
            return
        func = call.func
        name: str = ""
        if isinstance(func, ast.Attribute):
            name = func.attr
        elif isinstance(func, ast.Name):
            resolved = ctx.resolve(func) or ""
            if resolved.startswith("asyncio."):
                name = func.id
        if name in self._SPAWNERS:
            yield ctx.finding(
                self, node,
                f"result of {name}(...) is dropped: keep the Task (e.g. "
                "add it to a set with a done-callback discard) or it "
                "may be garbage-collected before finishing")
