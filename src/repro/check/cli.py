"""``python -m repro check`` -- run the determinism lint.

Usage::

    python -m repro check src/                 # text findings
    python -m repro check src/ --format json   # machine-readable
    python -m repro check src/repro/sim --select DET001,DET002
    python -m repro check --list-rules

Exit codes: 0 clean, 1 findings, 2 usage error / unparseable file.

The JSON document is stable (schema version 1)::

    {"version": 1, "files_checked": N,
     "counts": {"DET001": 2, ...},
     "findings": [{"rule", "message", "path", "line", "col"}, ...],
     "errors": []}
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.check.engine import CheckError, all_rules, check_paths

__all__ = ["main"]


def _split_rules(value: Optional[str]) -> Optional[List[str]]:
    if value is None:
        return None
    return [part.strip() for part in value.split(",") if part.strip()]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro check",
        description="AST-based determinism lint for the repro codebase.",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to check (default: src)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format (default text)")
    parser.add_argument("--select", metavar="RULES", default=None,
                        help="comma-separated rule ids to run exclusively")
    parser.add_argument("--ignore", metavar="RULES", default=None,
                        help="comma-separated rule ids to skip")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:  # argparse exits 2 on usage errors already
        return int(exc.code or 0)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.title}")
            print(f"        {rule.rationale}")
        return 0

    try:
        report = check_paths(
            args.paths,
            select=_split_rules(args.select),
            ignore=_split_rules(args.ignore),
        )
    except CheckError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        for finding in report.findings:
            print(finding.render())
        for err in report.errors:
            print(f"error: {err}", file=sys.stderr)
        n = len(report.findings)
        summary = (f"{n} finding{'s' if n != 1 else ''} "
                   f"in {report.files_checked} files checked")
        print(summary if n else f"clean: {summary}")
    return report.exit_code


if __name__ == "__main__":  # pragma: no cover - module execution hook
    sys.exit(main())
