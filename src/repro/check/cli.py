"""``python -m repro check`` -- run the static contract analysis.

Usage::

    python -m repro check src/                 # text findings
    python -m repro check src/ --output json   # machine-readable
    python -m repro check src/ --output sarif  # for PR-diff annotation
    python -m repro check src/ --cache .repro-check-cache
    python -m repro check src/repro/sim --select DET001,DET002
    python -m repro check --list-rules

Exit codes: 0 clean (warn-only findings count as clean), 1 findings,
2 usage error / unparseable file.

The JSON document is stable (schema version 2)::

    {"version": 2, "files_checked": N,
     "counts": {"DET001": 2, ...},
     "findings": [{"rule", "message", "path", "line", "col",
                   "severity"}, ...],
     "errors": [],
     "cache": {"hits": 0, "misses": 0}}

``--cache DIR`` keys per-file results on a content hash of the file
bytes plus the active rule-set version; findings are byte-identical
with and without the cache (project rules always recompute from the
cached fact tables).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.check.engine import CheckError, all_rules, check_paths

__all__ = ["main"]


def _split_rules(value: Optional[str]) -> Optional[List[str]]:
    if value is None:
        return None
    return [part.strip() for part in value.split(",") if part.strip()]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro check",
        description="AST-based static contract analysis for the repro "
                    "codebase (determinism, async-safety, telemetry "
                    "schema conformance).",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to check (default: src)")
    # --format is the historical spelling; both write the same dest
    parser.add_argument("--output", "--format", dest="output",
                        choices=("text", "json", "sarif"), default="text",
                        help="output format (default text)")
    parser.add_argument("--cache", metavar="DIR", default=None,
                        help="content-hash result cache directory "
                             "(unchanged files skip parsing entirely)")
    parser.add_argument("--select", metavar="RULES", default=None,
                        help="comma-separated rule ids to run exclusively")
    parser.add_argument("--ignore", metavar="RULES", default=None,
                        help="comma-separated rule ids to skip")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:  # argparse exits 2 on usage errors already
        return int(exc.code or 0)

    if args.list_rules:
        for rule in all_rules():
            scope = "project" if rule.project else "file"
            sev = "" if rule.severity == "error" else f", {rule.severity}"
            print(f"{rule.id}  {rule.title}  ({scope}{sev})")
            print(f"        {rule.rationale}")
        return 0

    try:
        report = check_paths(
            args.paths,
            select=_split_rules(args.select),
            ignore=_split_rules(args.ignore),
            cache_dir=args.cache,
        )
    except CheckError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.output == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    elif args.output == "sarif":
        from repro.check.sarif import render_sarif
        rules = select_rules_for_sarif(args)
        print(json.dumps(render_sarif(report, rules), indent=2))
    else:
        for finding in report.findings:
            print(finding.render())
        for err in report.errors:
            print(f"error: {err}", file=sys.stderr)
        n = len(report.findings)
        warns = sum(1 for f in report.findings if f.severity != "error")
        tail = f" ({warns} warn-only)" if warns else ""
        summary = (f"{n} finding{'s' if n != 1 else ''}{tail} "
                   f"in {report.files_checked} files checked")
        print(summary if n else f"clean: {summary}")
    return report.exit_code


def select_rules_for_sarif(args: argparse.Namespace):
    """The rule set to describe in the SARIF rule table."""
    from repro.check.engine import select_rules
    return select_rules(_split_rules(args.select), _split_rules(args.ignore))


if __name__ == "__main__":  # pragma: no cover - module execution hook
    sys.exit(main())
