"""Observability contract rule: OBS001.

``obs/watch.py`` and the exporters consume metrics by *name* -- string
lookups like ``m.get("run.live_peers")`` or preference tables like
``_WORK_COUNTERS`` -- while instrumentation sites emit them through
``registry.counter("...")`` / ``obs.inc("...")`` calls scattered across
the engines.  Renaming an emit site leaves every consumer silently
reading ``None``: the live watch view shows dashes, not an error.
OBS001 closes the loop statically by comparing the harvested reference
table against the harvested emit table (literal names plus f-string
prefixes such as ``rng.sanitizer.``).
"""

from __future__ import annotations

from typing import Iterator

from repro.check.engine import Finding, Rule, register
from repro.check.project import ProjectContext

__all__ = ["MetricReferencedNotEmitted"]


@register
class MetricReferencedNotEmitted(Rule):
    """OBS001: metric name referenced that no instrumentation emits."""

    id = "OBS001"
    title = "metric referenced but never emitted"
    rationale = ("watch/exporters look metrics up by name; a renamed "
                 "emit site makes every consumer read None silently -- "
                 "the dashboard shows dashes, never an error")
    project = True

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        if not project.metric_emits and not project.metric_prefixes:
            return  # no instrumentation in view: nothing to compare
        for facts in project.files:
            for name, line, col in facts.metric_refs:
                if not project.emits_metric(name):
                    yield self.project_finding(
                        facts.path, line, col,
                        f"metric {name!r} is referenced here but no "
                        "instrumentation site emits it")
