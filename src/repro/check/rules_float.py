"""FLT001: exact float equality comparisons.

Continuity fractions, rates and simulated-time arithmetic accumulate
rounding error; ``x == 0.3`` silently becomes load-bearing on the exact
operation order.  Comparisons against float literals (or between
expressions where either side is one) should use a tolerance --
``math.isclose`` / ``numpy.isclose`` -- unless exactness is the point
(e.g. collapsing ``-0.0``), which deserves a ``# repro: noqa[FLT001]``
with a justification.

Test files are exempt: asserting bit-identical outputs *is* their job.
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from typing import Iterator

from repro.check.engine import FileContext, Finding, Rule, register

__all__ = ["FloatEquality"]


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and type(node.value) is float:
        return True
    if (isinstance(node, ast.UnaryOp)
            and isinstance(node.op, (ast.USub, ast.UAdd))):
        return _is_float_literal(node.operand)
    return False


@register
class FloatEquality(Rule):
    """FLT001: ``==`` / ``!=`` against a float literal outside tests."""

    id = "FLT001"
    title = "exact float equality comparison"
    rationale = ("float == accumulates rounding-order dependence; use a "
                 "tolerance or justify exactness with a noqa")
    interests = ("Compare",)

    def applies_to(self, path: str) -> bool:
        p = PurePath(path.replace("\\", "/"))
        if any(part in ("tests", "test") for part in p.parts):
            return False
        return not p.name.startswith(("test_", "bench_"))

    def on_node(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Compare)
        left = node.left
        for op, right in zip(node.ops, node.comparators):
            if isinstance(op, (ast.Eq, ast.NotEq)) and (
                    _is_float_literal(left) or _is_float_literal(right)):
                sym = "==" if isinstance(op, ast.Eq) else "!="
                yield ctx.finding(
                    self, node,
                    f"float literal compared with {sym}; use "
                    f"math.isclose/tolerance or noqa with justification")
            left = right
