"""SARIF 2.1.0 rendering for ``repro check --output sarif``.

The static-analysis CI job uploads this document through
``github/codeql-action/upload-sarif`` so findings annotate PR diffs in
place.  Only the minimal, widely-supported subset of the schema is
emitted: one run, one driver, a rule table mirroring ``--list-rules``,
and one result per finding with a physical location.
"""

from __future__ import annotations

from typing import Dict, List

from repro.check.engine import CheckReport, RULESET_VERSION, Rule

__all__ = ["render_sarif"]

_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
           "master/Schemata/sarif-schema-2.1.0.json")


def _level(severity: str) -> str:
    return "warning" if severity == "warn" else "error"


def render_sarif(report: CheckReport, rules: List[Rule]) -> Dict[str, object]:
    """SARIF document (plain dict, caller serializes) for ``report``."""
    rule_meta = [
        {
            "id": rule.id,
            "shortDescription": {"text": rule.title},
            "fullDescription": {"text": rule.rationale},
            "defaultConfiguration": {"level": _level(rule.severity)},
        }
        for rule in rules
    ]
    results = [
        {
            "ruleId": f.rule,
            "level": _level(f.severity),
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.path.replace("\\", "/")},
                        "region": {
                            "startLine": f.line,
                            # SARIF columns are 1-based; AST cols 0-based
                            "startColumn": f.col + 1,
                        },
                    }
                }
            ],
        }
        for f in report.findings
    ]
    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-check",
                        "version": RULESET_VERSION,
                        "rules": rule_meta,
                    }
                },
                "results": results,
            }
        ],
    }
