"""Unit-suffix dataflow rule: UNIT001.

The codebase carries units in names -- ``buffered_seconds``,
``deadline_s``, ``rate_kbps``, ``window_blocks`` -- because everything
is a bare float at runtime.  The SoA fluid engine mixes all three
families (seconds, blocks, bits-per-second) in tight arithmetic, where
adding a block count to a second count produces a plausible-looking
wrong number rather than an error.  UNIT001 flags *additive* operations
(``+``/``-``, including augmented assignment) whose two operands carry
recognizably different unit suffixes.

Scope is deliberately narrow to stay false-positive-free: only bare
names and attribute reads participate (a call result such as
``ms_to_s(x)`` has no suffix and is skipped -- wrapping one side in a
conversion function is the sanctioned escape hatch), and only exact
``_suffix`` tails from the known table count.  Multiplicative ops are
legitimate unit algebra (``rate_bps * window_s``) and are never
flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.check.engine import FileContext, Finding, Rule, register

__all__ = ["MixedUnitArithmetic"]

#: suffix -> (canonical unit token, human-readable dimension)
_SUFFIXES = {
    "s": ("s", "seconds"),
    "sec": ("s", "seconds"),
    "secs": ("s", "seconds"),
    "seconds": ("s", "seconds"),
    "ms": ("ms", "milliseconds"),
    "us": ("us", "microseconds"),
    "ns": ("ns", "nanoseconds"),
    "block": ("blocks", "blocks"),
    "blocks": ("blocks", "blocks"),
    "bps": ("bps", "bits/s"),
    "kbps": ("kbps", "kbits/s"),
    "mbps": ("mbps", "Mbits/s"),
    "gbps": ("gbps", "Gbits/s"),
    "bytes": ("bytes", "bytes"),
    "kb": ("kb", "kilobytes"),
    "mb": ("mb", "megabytes"),
    "gb": ("gb", "gigabytes"),
}


def _unit_of(node: ast.AST) -> Optional[Tuple[str, str, str]]:
    """(name, unit token, dimension) when ``node`` is a suffixed bare
    name or attribute read; None for anything computed."""
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    else:
        return None
    if "_" not in name:
        return None
    suffix = name.rsplit("_", 1)[1].lower()
    entry = _SUFFIXES.get(suffix)
    if entry is None:
        return None
    return name, entry[0], entry[1]


@register
class MixedUnitArithmetic(Rule):
    """UNIT001: additive arithmetic across different unit suffixes."""

    id = "UNIT001"
    title = "additive arithmetic mixes unit suffixes"
    rationale = ("adding seconds to blocks (or bps to kbps) yields a "
                 "plausible wrong float, not an error; convert one side "
                 "explicitly (a conversion call clears the suffix)")
    interests = ("BinOp", "AugAssign")

    def on_node(self, node: ast.AST,
                ctx: FileContext) -> Iterator[Finding]:
        if isinstance(node, ast.BinOp):
            if not isinstance(node.op, (ast.Add, ast.Sub)):
                return
            left, right = node.left, node.right
        else:
            assert isinstance(node, ast.AugAssign)
            if not isinstance(node.op, (ast.Add, ast.Sub)):
                return
            left, right = node.target, node.value
        a = _unit_of(left)
        b = _unit_of(right)
        if a is None or b is None:
            return
        if a[1] == b[1]:
            return
        op = "+" if isinstance(node.op, ast.Add) else "-"
        yield ctx.finding(
            self, node,
            f"{a[0]} ({a[2]}) {op} {b[0]} ({b[2]}) mixes unit "
            "suffixes; convert one side explicitly first")
