"""Rule-engine core: visitor dispatch, registry, suppressions, reports.

Design
------

* Each :class:`Rule` declares the AST node-type names it wants
  (``interests``); :func:`check_source` walks the tree **once** and
  dispatches every node to the interested rules, so adding rules does
  not add tree walks.
* Rules receive a :class:`FileContext` carrying the parsed tree, the
  import alias map (``np`` -> ``numpy``, ``perf_counter`` ->
  ``time.perf_counter``, ...) and a :meth:`FileContext.finding` helper.
* Findings on a line carrying ``# repro: noqa[RULE]`` (or a bare
  ``# repro: noqa``) are dropped after collection, so suppressed and
  unsuppressed occurrences share one code path.  A marker anywhere on a
  multi-line statement covers the whole statement (span expansion in
  :mod:`repro.check.project`).
* v2 adds a second pass: per-file checking also *harvests* cross-module
  facts (:func:`repro.check.project.harvest_file`); rules with
  ``project = True`` then run once against the merged
  :class:`~repro.check.project.ProjectContext` instead of per file.
  Their findings anchor at harvested source locations, so suppression
  and sorting are shared with per-file findings.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import (TYPE_CHECKING, Any, Dict, FrozenSet, Iterable, Iterator,
                    List, Optional, Tuple)

if TYPE_CHECKING:  # import cycle: project.py uses collect_aliases
    from repro.check.project import FileFacts, ProjectContext

__all__ = [
    "CheckError",
    "CheckReport",
    "FileContext",
    "Finding",
    "RULESET_VERSION",
    "Rule",
    "all_rules",
    "check_paths",
    "check_source",
    "collect_aliases",
    "register",
    "resolve_name",
]

#: bump whenever rule behavior changes -- part of the result-cache key,
#: so stale cached findings from an older rule set can never be served
RULESET_VERSION = "2.0"


class CheckError(Exception):
    """Usage-level failure (bad path, unknown rule): CLI exit code 2."""


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    message: str
    path: str
    line: int
    col: int
    #: ``"error"`` findings gate the exit code; ``"warn"`` ones (SCH002)
    #: surface drift worth a look without failing CI
    severity: str = "error"

    def render(self) -> str:
        """``path:line:col: RULE message`` -- the text output format."""
        tag = "" if self.severity == "error" else f"[{self.severity}] "
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule} {tag}{self.message}")

    def to_dict(self) -> Dict[str, object]:
        """JSON-output form (stable key set; see docs/README)."""
        return {"rule": self.rule, "message": self.message,
                "path": self.path, "line": self.line, "col": self.col,
                "severity": self.severity}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Finding":
        """Inverse of :meth:`to_dict` (result-cache deserialization)."""
        return cls(rule=d["rule"], message=d["message"], path=d["path"],
                   line=d["line"], col=d["col"],
                   severity=d.get("severity", "error"))

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)


# --------------------------------------------------------------------------
# suppression comments
# --------------------------------------------------------------------------

#: ``# repro: noqa`` or ``# repro: noqa[DET001]`` / ``[DET001,FLT001]``
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?")


def parse_suppressions(source: str) -> Dict[int, Optional[FrozenSet[str]]]:
    """Map 1-based line number -> suppressed rule ids (``None`` = all).

    Works on raw source lines, so suppressions inside strings would also
    count; in practice the marker is unusual enough that this classic
    linter simplification is fine.
    """
    out: Dict[int, Optional[FrozenSet[str]]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _NOQA_RE.search(text)
        if not m:
            continue
        rules = m.group("rules")
        if rules is None:
            out[lineno] = None  # blanket suppression
        else:
            ids = frozenset(r.strip().upper()
                            for r in rules.split(",") if r.strip())
            prev = out.get(lineno, frozenset())
            out[lineno] = None if prev is None else (prev | ids)
    return out


def _suppressed(finding: Finding,
                noqa: Dict[int, Optional[FrozenSet[str]]]) -> bool:
    entry = noqa.get(finding.line, frozenset())
    if entry is None and finding.line in noqa:
        return True
    return bool(entry) and finding.rule in entry  # type: ignore[operator]


# --------------------------------------------------------------------------
# import alias resolution
# --------------------------------------------------------------------------

def collect_aliases(tree: ast.AST) -> Dict[str, str]:
    """Local name -> fully qualified import path for the whole module.

    ``import numpy as np`` maps ``np -> numpy``; ``from time import
    perf_counter`` maps ``perf_counter -> time.perf_counter``.  Relative
    imports are skipped (their absolute prefix is unknown and no rule
    targets package-internal names).
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                if a.asname:
                    aliases[a.asname] = a.name
                else:
                    head = a.name.split(".")[0]
                    aliases[head] = head
        elif isinstance(node, ast.ImportFrom):
            if node.level or not node.module:
                continue
            for a in node.names:
                if a.name == "*":
                    continue
                aliases[a.asname or a.name] = f"{node.module}.{a.name}"
    return aliases


def _dotted(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def resolve_name(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Fully qualified name of a (possibly dotted) expression, or None.

    Only expressions whose head is an *imported* name resolve -- a local
    variable that happens to be called ``random`` never false-positives.
    """
    dotted = _dotted(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    full = aliases.get(head)
    if full is None:
        return None
    return f"{full}.{rest}" if rest else full


# --------------------------------------------------------------------------
# file context + rule base
# --------------------------------------------------------------------------

class FileContext:
    """Everything a rule may want to know about the file under check."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.aliases = collect_aliases(tree)

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Qualified name of ``node`` through this file's imports."""
        return resolve_name(node, self.aliases)

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        """A :class:`Finding` anchored at ``node``'s location."""
        return Finding(
            rule=rule.id,
            message=message,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            severity=rule.severity,
        )


class Rule:
    """Base class: subclass, set ``id``/``title``/``interests``, register.

    ``interests`` names AST node classes (``"Call"``, ``"Compare"``,
    ``"ClassDef"``, ...); :meth:`on_node` is invoked for each matching
    node in a single shared tree walk and yields findings.

    Rules with ``project = True`` skip the per-file walk entirely and
    implement :meth:`check_project` instead: one invocation against the
    merged fact tables of every checked file.  Because their input is
    the (cacheable) fact table rather than a tree, their findings are
    recomputed on every run -- a cached file can still participate in a
    *new* cross-module violation introduced by an uncached file.
    """

    id: str = ""
    title: str = ""
    #: one-line rationale shown by ``--list-rules``
    rationale: str = ""
    #: default severity of this rule's findings
    severity: str = "error"
    #: True for cross-module rules driven by the ProjectContext
    project: bool = False
    interests: Tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        """Whether the rule runs on this file at all (path-based scoping)."""
        return True

    def begin_file(self, ctx: FileContext) -> None:
        """Per-file setup hook (alias maps are already on ``ctx``)."""

    def on_node(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        """Findings for one node of an interested type."""
        return iter(())

    def end_file(self, ctx: FileContext) -> Iterator[Finding]:
        """Findings emitted after the walk (cross-node rules)."""
        return iter(())

    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        """Findings computed from the merged project fact tables."""
        return iter(())

    def project_finding(self, path: str, line: int, col: int,
                        message: str) -> Finding:
        """A :class:`Finding` anchored at a harvested fact location."""
        return Finding(rule=self.id, message=message, path=path,
                       line=line, col=col, severity=self.severity)


# --------------------------------------------------------------------------
# registry
# --------------------------------------------------------------------------

_REGISTRY: Dict[str, Rule] = {}


def register(rule_cls: type) -> type:
    """Class decorator adding one instance of ``rule_cls`` to the registry."""
    rule = rule_cls()
    if not rule.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id}")
    _REGISTRY[rule.id] = rule
    return rule_cls


def all_rules() -> List[Rule]:
    """Registered rules, sorted by id."""
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def select_rules(select: Optional[Iterable[str]] = None,
                 ignore: Optional[Iterable[str]] = None) -> List[Rule]:
    """The active rule set after ``--select`` / ``--ignore`` filters."""
    rules = all_rules()
    known = {r.id for r in rules}
    for requested in list(select or []) + list(ignore or []):
        if requested.upper() not in known:
            raise CheckError(
                f"unknown rule {requested!r}; known: {', '.join(sorted(known))}"
            )
    if select:
        wanted = {s.upper() for s in select}
        rules = [r for r in rules if r.id in wanted]
    if ignore:
        dropped = {s.upper() for s in ignore}
        rules = [r for r in rules if r.id not in dropped]
    return rules


# --------------------------------------------------------------------------
# checking
# --------------------------------------------------------------------------

def _file_pass(source: str, path: str,
               rules: List[Rule]) -> Tuple["FileFacts", List[Finding]]:
    """Pass 1 on one file: parse, harvest facts, run per-file rules.

    Returns the harvested facts plus the (suppression-filtered, sorted)
    per-file findings -- exactly the pair the result cache stores.
    """
    from repro.check.project import harvest_file

    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise CheckError(f"{path}: cannot parse: {exc.msg} "
                         f"(line {exc.lineno})") from exc
    facts = harvest_file(tree, path, source)

    ctx = FileContext(path, source, tree)
    active = [r for r in rules
              if not r.project and r.applies_to(path)]
    findings: List[Finding] = []
    if active:
        dispatch: Dict[str, List[Rule]] = {}
        for rule in active:
            rule.begin_file(ctx)
            for name in rule.interests:
                dispatch.setdefault(name, []).append(rule)
        for node in ast.walk(tree):
            for rule in dispatch.get(type(node).__name__, ()):
                findings.extend(rule.on_node(node, ctx))
        for rule in active:
            findings.extend(rule.end_file(ctx))

    findings = [f for f in findings
                if not _suppressed(f, facts.suppressions)]
    findings.sort(key=lambda f: f.sort_key)
    return facts, findings


def _project_pass(all_facts: List["FileFacts"],
                  rules: List[Rule]) -> List[Finding]:
    """Pass 2: run project rules against the merged fact tables."""
    from repro.check.project import ProjectContext

    active = [r for r in rules if r.project]
    if not active:
        return []
    project = ProjectContext(all_facts)
    findings: List[Finding] = []
    for rule in active:
        findings.extend(rule.check_project(project))
    kept = []
    for f in findings:
        noqa = project.suppressions_by_path.get(f.path, {})
        if not _suppressed(f, noqa):
            kept.append(f)
    kept.sort(key=lambda f: f.sort_key)
    return kept


def check_source(source: str, path: str = "<string>",
                 rules: Optional[List[Rule]] = None) -> List[Finding]:
    """Check one source string; raises :class:`CheckError` on syntax errors.

    Project rules run against a single-file project view, so contract
    rules still fire on a self-contained file (the fixture triples rely
    on this); cross-file analysis needs :func:`check_paths`.
    """
    if rules is None:
        rules = all_rules()
    facts, findings = _file_pass(source, path, rules)
    findings = findings + _project_pass([facts], rules)
    findings.sort(key=lambda f: f.sort_key)
    return findings


@dataclass
class CheckReport:
    """Outcome of checking a path set."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    errors: List[str] = field(default_factory=list)
    #: result-cache statistics (both stay 0 when no ``--cache`` is given)
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def counts(self) -> Dict[str, int]:
        """Findings per rule id (sorted keys, stable JSON)."""
        out: Dict[str, int] = {}
        for f in self.findings:
            out[f.rule] = out.get(f.rule, 0) + 1
        return dict(sorted(out.items()))

    @property
    def exit_code(self) -> int:
        """0 clean (warn-only counts as clean), 1 error-severity
        findings, 2 any file-level error."""
        if self.errors:
            return 2
        if any(f.severity == "error" for f in self.findings):
            return 1
        return 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": 2,
            "files_checked": self.files_checked,
            "counts": self.counts,
            "findings": [f.to_dict() for f in self.findings],
            "errors": list(self.errors),
            "cache": {"hits": self.cache_hits, "misses": self.cache_misses},
        }


def iter_python_files(paths: Iterable[str]) -> List[Path]:
    """Expand files/directories to a sorted, de-duplicated ``.py`` list."""
    seen = {}
    for raw in paths:
        p = Path(raw)
        if not p.exists():
            raise CheckError(f"no such file or directory: {raw}")
        if p.is_dir():
            # check_fixtures hold deliberate violations for the rule
            # tests -- expanding a directory never picks them up (naming
            # a fixture file explicitly still checks it)
            candidates = sorted(
                f for f in p.rglob("*.py")
                if not any(part.startswith(".") or part == "check_fixtures"
                           for part in f.parts)
            )
        elif p.suffix == ".py":
            candidates = [p]
        else:
            raise CheckError(f"not a python file: {raw}")
        for f in candidates:
            seen[str(f)] = f
    return [seen[k] for k in sorted(seen)]


def check_paths(paths: Iterable[str],
                select: Optional[Iterable[str]] = None,
                ignore: Optional[Iterable[str]] = None,
                cache_dir: Optional[str] = None) -> CheckReport:
    """Check every ``.py`` file under ``paths`` with the active rule set.

    Two passes: per-file rules run (or are served from ``cache_dir``,
    keyed on file bytes + rule-set version) while harvesting each file's
    fact record; project rules then run once over the merged tables.
    Project findings are never cached -- recomputing them from cached
    facts is cheap and keeps cross-file analysis sound when only one
    side of a contract changed.
    """
    rules = select_rules(select, ignore)
    cache = None
    if cache_dir is not None:
        from repro.check.cache import ResultCache
        cache = ResultCache(Path(cache_dir), rules)

    report = CheckReport()
    all_facts: List["FileFacts"] = []
    for path in iter_python_files(paths):
        try:
            data = path.read_bytes()
        except OSError as exc:
            report.errors.append(f"{path}: cannot read: {exc}")
            continue
        if cache is not None:
            hit = cache.lookup(data)
            if hit is not None:
                facts, findings = hit
                all_facts.append(facts)
                report.findings.extend(findings)
                report.files_checked += 1
                report.cache_hits += 1
                continue
        try:
            source = data.decode("utf-8")
        except UnicodeDecodeError as exc:
            report.errors.append(f"{path}: cannot read: {exc}")
            continue
        try:
            facts, findings = _file_pass(source, str(path), rules)
        except CheckError as exc:
            report.errors.append(str(exc))
            continue
        all_facts.append(facts)
        report.findings.extend(findings)
        report.files_checked += 1
        if cache is not None:
            cache.store(data, facts, findings)
            report.cache_misses += 1
    report.findings.extend(_project_pass(all_facts, rules))
    report.findings.sort(key=lambda f: f.sort_key)
    return report
