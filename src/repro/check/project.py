"""Pass-1 fact harvest: the cross-module tables project rules consume.

The original ``repro check`` engine was strictly per-file, so it could
not see the bug classes the codebase is now most exposed to: a fold in
``analysis/streaming.py`` reading a telemetry field no report in
``telemetry/reports.py`` emits, ``watch.py`` referencing a metric name
no instrumentation site ever increments, or a coroutine in ``repro.net``
called without ever being awaited or scheduled.  All of these are
*cross-module contract* properties -- invisible to any single-file walk.

This module is the first pass of the two-pass analyzer:

* :func:`harvest_file` walks one parsed module and extracts a
  :class:`FileFacts` record -- telemetry wire fields written by
  ``Report.to_params`` / ``to_log_string`` f-strings and read back by
  ``from_params``, report attributes each ``Fold.update`` touches,
  obs counter/gauge names emitted vs referenced, the async function
  inventory, plus the file's (statement-span-expanded) suppression map.
* :class:`ProjectContext` merges every file's facts into the global
  tables project rules (``SCH001``/``SCH002``/``OBS001``/``ASY002``)
  check in pass 2.

Facts are plain JSON-serializable data on purpose: the ``--cache``
result cache stores them per content hash, so a warm run rebuilds the
full :class:`ProjectContext` without re-parsing a single unchanged file.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import PurePath
from typing import (Any, Dict, FrozenSet, Iterable, List, Optional, Set,
                    Tuple)

__all__ = [
    "FileFacts",
    "ProjectContext",
    "harvest_file",
    "module_of",
    "statement_spans",
    "expand_suppressions",
]


#: a metric name as instrumentation emits it: dotted lowercase words
#: ("engine.events_executed").  Full-string match only, so prose in a
#: docstring never harvests as a reference.
METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(?:\.[a-z0-9_]+)+$")

#: terminal callee names that take a metric name as their first argument
_EMIT_CALLEE_RE = re.compile(
    r"(?:^|_)(?:counter|gauge|histogram|timer|inc|observe|set_gauge"
    r"|register_gauge_provider)$")

#: module-level constants that enumerate metric names for a consumer
#: (e.g. watch.py's ``_WORK_COUNTERS`` preference table)
_REF_COLLECTION_RE = re.compile(r"COUNTER|GAUGE|METRIC")

#: wire keys inside a log-string f-string: ``?type=`` / ``&ci=`` ...
_WIRE_KEY_RE = re.compile(r"[?&]([A-Za-z_][A-Za-z0-9_]*)=")

Loc = Tuple[int, int]  # (line, col)


def module_of(path: str) -> str:
    """Dotted module guess for ``path`` (``src/repro/net/peer.py`` ->
    ``repro.net.peer``).  Only used to qualify same-module function
    names, so a rough guess outside ``src/`` layouts is fine."""
    parts = list(PurePath(path.replace("\\", "/")).parts)
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    else:
        parts = parts[-1:]
    if not parts:
        return "<unknown>"
    parts[-1] = PurePath(parts[-1]).stem
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or "<unknown>"


# --------------------------------------------------------------------------
# statement spans + suppression expansion (multi-line noqa anchoring)
# --------------------------------------------------------------------------

def statement_spans(tree: ast.AST) -> List[Tuple[int, int]]:
    """``(first_line, last_line)`` of every statement, sorted.

    Used to expand ``# repro: noqa`` markers: a suppression on *any*
    physical line of a statement covers the whole statement, so a noqa
    at the end of a wrapped expression still silences a finding anchored
    at the expression's first line.
    """
    spans = []
    for node in ast.walk(tree):
        if isinstance(node, ast.stmt):
            spans.append((node.lineno, node.end_lineno or node.lineno))
    spans.sort()
    return spans


def _smallest_span(line: int,
                   spans: List[Tuple[int, int]]) -> Optional[Tuple[int, int]]:
    best: Optional[Tuple[int, int]] = None
    for start, end in spans:
        if start <= line <= end:
            if best is None or (end - start) < (best[1] - best[0]):
                best = (start, end)
        elif start > line:
            break
    return best


def expand_suppressions(
    noqa: Dict[int, Optional[FrozenSet[str]]],
    spans: List[Tuple[int, int]],
) -> Dict[int, Optional[FrozenSet[str]]]:
    """Suppression map with each marker applied to its whole statement.

    The innermost statement containing the marker line wins, so a noqa
    on one line of an ``if`` body never silences the whole ``if``; a
    marker on a blank or comment-only line keeps its line-local scope.
    """
    out: Dict[int, Optional[FrozenSet[str]]] = {}

    def _merge(line: int, entry: Optional[FrozenSet[str]]) -> None:
        if line in out and out[line] is None:
            return  # blanket suppression already covers this line
        if entry is None:
            out[line] = None
        else:
            out[line] = (out.get(line) or frozenset()) | entry

    for marker_line, entry in noqa.items():
        span = _smallest_span(marker_line, spans) or (marker_line,
                                                      marker_line)
        for line in range(span[0], span[1] + 1):
            _merge(line, entry)
    return out


# --------------------------------------------------------------------------
# per-file facts
# --------------------------------------------------------------------------

@dataclass
class ReportClassFacts:
    """Telemetry contract facts of one report class."""

    bases: List[str] = field(default_factory=list)
    #: dataclass-style annotated attributes (non-ClassVar)
    fields: List[str] = field(default_factory=list)
    #: every attribute a consumer may read: fields + ClassVars + methods
    attrs: List[str] = field(default_factory=list)
    #: wire key -> first write location, from ``to_params``/``_header``
    param_writes: Dict[str, Loc] = field(default_factory=dict)
    #: wire key -> first write location, from ``to_log_string`` f-strings
    wire_writes: Dict[str, Loc] = field(default_factory=dict)
    #: wire key -> first read location, from ``from_params``
    param_reads: Dict[str, Loc] = field(default_factory=dict)
    #: constructor kwarg -> wire keys its value expression reads
    kwarg_keys: Dict[str, List[str]] = field(default_factory=dict)

    def to_json(self) -> Dict[str, object]:
        return {
            "bases": self.bases, "fields": self.fields, "attrs": self.attrs,
            "param_writes": {k: list(v) for k, v in self.param_writes.items()},
            "wire_writes": {k: list(v) for k, v in self.wire_writes.items()},
            "param_reads": {k: list(v) for k, v in self.param_reads.items()},
            "kwarg_keys": self.kwarg_keys,
        }

    @classmethod
    def from_json(cls, d: Dict[str, Any]) -> "ReportClassFacts":
        return cls(
            bases=list(d["bases"]), fields=list(d["fields"]),
            attrs=list(d["attrs"]),
            param_writes={k: (v[0], v[1])
                          for k, v in d["param_writes"].items()},
            wire_writes={k: (v[0], v[1])
                         for k, v in d["wire_writes"].items()},
            param_reads={k: (v[0], v[1])
                         for k, v in d["param_reads"].items()},
            kwarg_keys={k: list(v) for k, v in d["kwarg_keys"].items()},
        )


@dataclass
class FileFacts:
    """Everything pass 1 learned about one module.

    Strictly JSON-plain so the result cache can persist it; see
    :meth:`to_json` / :meth:`from_json`.
    """

    path: str
    module: str
    #: class name -> telemetry contract facts
    report_classes: Dict[str, ReportClassFacts] = field(default_factory=dict)
    #: wire keys read outside report classes (``parse_report`` dispatch)
    global_param_reads: Dict[str, Loc] = field(default_factory=dict)
    #: (fold class, attr, line, col) for each ``report.<attr>`` read
    fold_reads: List[Tuple[str, str, int, int]] = field(default_factory=list)
    #: metric name -> first emit location
    metric_emits: Dict[str, Loc] = field(default_factory=dict)
    #: literal prefixes of dynamically-built metric names (f-strings)
    metric_prefixes: List[str] = field(default_factory=list)
    #: (name, line, col) metric references (``.get("a.b")``, ``"a.b" in``)
    metric_refs: List[Tuple[str, int, int]] = field(default_factory=list)
    #: module-qualified module-level ``async def`` names
    async_funcs: List[str] = field(default_factory=list)
    #: bare names of async methods defined anywhere in the file
    async_methods: List[str] = field(default_factory=list)
    #: bare names of *sync* methods (ambiguity guard for ASY002)
    sync_methods: List[str] = field(default_factory=list)
    #: (kind, name, resolved, line, col) for statement-expression calls;
    #: kind is "name" (bare function) or "attr" (method-ish)
    bare_calls: List[Tuple[str, str, Optional[str], int, int]] = \
        field(default_factory=list)
    #: line -> suppressed rule ids (None = all), statement-span expanded
    suppressions: Dict[int, Optional[FrozenSet[str]]] = \
        field(default_factory=dict)

    def to_json(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "module": self.module,
            "report_classes": {k: v.to_json()
                               for k, v in self.report_classes.items()},
            "global_param_reads": {k: list(v) for k, v in
                                   self.global_param_reads.items()},
            "fold_reads": [list(t) for t in self.fold_reads],
            "metric_emits": {k: list(v)
                             for k, v in self.metric_emits.items()},
            "metric_prefixes": self.metric_prefixes,
            "metric_refs": [list(t) for t in self.metric_refs],
            "async_funcs": self.async_funcs,
            "async_methods": self.async_methods,
            "sync_methods": self.sync_methods,
            "bare_calls": [list(t) for t in self.bare_calls],
            "suppressions": {
                str(line): (None if rules is None else sorted(rules))
                for line, rules in self.suppressions.items()
            },
        }

    @classmethod
    def from_json(cls, d: Dict[str, Any]) -> "FileFacts":
        return cls(
            path=d["path"],
            module=d["module"],
            report_classes={k: ReportClassFacts.from_json(v)
                            for k, v in d["report_classes"].items()},
            global_param_reads={k: (v[0], v[1]) for k, v in
                                d["global_param_reads"].items()},
            fold_reads=[(t[0], t[1], t[2], t[3]) for t in d["fold_reads"]],
            metric_emits={k: (v[0], v[1])
                          for k, v in d["metric_emits"].items()},
            metric_prefixes=list(d["metric_prefixes"]),
            metric_refs=[(t[0], t[1], t[2]) for t in d["metric_refs"]],
            async_funcs=list(d["async_funcs"]),
            async_methods=list(d["async_methods"]),
            sync_methods=list(d["sync_methods"]),
            bare_calls=[(t[0], t[1], t[2], t[3], t[4])
                        for t in d["bare_calls"]],
            suppressions={
                int(line): (None if rules is None else frozenset(rules))
                for line, rules in d["suppressions"].items()
            },
        )


# --------------------------------------------------------------------------
# harvesting
# --------------------------------------------------------------------------

def _terminal_name(func: ast.AST) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _base_names(node: ast.ClassDef) -> List[str]:
    names = []
    for base in node.bases:
        while isinstance(base, ast.Subscript):  # Generic[...] bases
            base = base.value
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def _is_report_class(node: ast.ClassDef, bases: List[str]) -> bool:
    if any(b == "Report" or b.endswith("Report") for b in bases):
        return True
    return any(isinstance(s, ast.FunctionDef) and s.name == "to_params"
               for s in node.body)


def _is_fold_class(node: ast.ClassDef, bases: List[str]) -> bool:
    return (node.name == "Fold" or node.name.endswith("Fold")
            or any(b == "Fold" or b.endswith("Fold") for b in bases))


def _str_const(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _loc(node: ast.AST) -> Loc:
    return (getattr(node, "lineno", 1), getattr(node, "col_offset", 0))


def _collect_param_writes(fn: ast.AST, out: Dict[str, Loc]) -> None:
    """Wire keys written by a ``to_params``-style method: subscript
    assignments with constant keys plus dict-literal keys."""
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    key = _str_const(target.slice)
                    if key is not None:
                        out.setdefault(key, _loc(target))
        elif isinstance(node, ast.Dict):
            for key_node in node.keys:
                key = _str_const(key_node) if key_node is not None else None
                if key is not None:
                    out.setdefault(key, _loc(key_node))


def _collect_wire_writes(fn: ast.AST, out: Dict[str, Loc]) -> None:
    """Wire keys appearing as ``?key=`` / ``&key=`` in any string piece
    of a ``to_log_string``-style method (f-strings included)."""
    for node in ast.walk(fn):
        text = _str_const(node)
        if text is None:
            continue
        for match in _WIRE_KEY_RE.finditer(text):
            out.setdefault(match.group(1), _loc(node))


def _collect_param_reads(fn: ast.AST, out: Dict[str, Loc]) -> None:
    """Wire keys a ``from_params``-style method reads: ``p["k"]``,
    ``p.get("k", ...)`` and ``"k" in p`` membership probes."""
    for node in ast.walk(fn):
        if isinstance(node, ast.Subscript):
            key = _str_const(node.slice)
            if key is not None and isinstance(node.value, ast.Name):
                out.setdefault(key, _loc(node))
        elif (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "get" and node.args):
            key = _str_const(node.args[0])
            if key is not None:
                out.setdefault(key, _loc(node))
        elif isinstance(node, ast.Compare) and node.ops:
            if isinstance(node.ops[0], ast.In):
                key = _str_const(node.left)
                if key is not None:
                    out.setdefault(key, _loc(node))


def _collect_kwarg_keys(fn: ast.AST, out: Dict[str, List[str]]) -> None:
    """Constructor kwarg -> wire keys read inside its value expression.

    ``total_up=float(p.get("tup", "0"))`` maps the dataclass field
    ``total_up`` to the wire key ``tup`` -- the bridge that lets SCH001
    relate a fold's attribute read back to what ``to_params`` emits.
    """
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        for kw in node.keywords:
            if kw.arg is None:
                continue
            keys: Dict[str, Loc] = {}
            _collect_param_reads(kw.value, keys)
            if keys:
                merged = sorted(set(out.get(kw.arg, [])) | set(keys))
                out[kw.arg] = merged


class _Harvester(ast.NodeVisitor):
    """Single-walk fact collector (class/function stacks tracked)."""

    def __init__(self, facts: FileFacts, aliases: Dict[str, str]) -> None:
        self.facts = facts
        self.aliases = aliases
        self._class_stack: List[str] = []
        self._func_depth = 0

    # -- classes -------------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        bases = _base_names(node)
        if self._func_depth == 0 and not self._class_stack:
            if _is_report_class(node, bases):
                self._harvest_report_class(node, bases)
            if _is_fold_class(node, bases):
                self._harvest_fold_class(node)
            for stmt in node.body:
                if isinstance(stmt, ast.AsyncFunctionDef):
                    self.facts.async_methods.append(stmt.name)
                elif isinstance(stmt, ast.FunctionDef):
                    self.facts.sync_methods.append(stmt.name)
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _harvest_report_class(self, node: ast.ClassDef,
                              bases: List[str]) -> None:
        rc = self.facts.report_classes.setdefault(
            node.name, ReportClassFacts(bases=bases))
        for stmt in node.body:
            if (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)):
                rc.attrs.append(stmt.target.id)
                ann = ast.dump(stmt.annotation)
                if "ClassVar" not in ann:
                    rc.fields.append(stmt.target.id)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                rc.attrs.append(stmt.name)
                if stmt.name in ("to_params", "_header"):
                    _collect_param_writes(stmt, rc.param_writes)
                elif stmt.name in ("to_log_string", "_header_str"):
                    _collect_wire_writes(stmt, rc.wire_writes)
                elif stmt.name == "from_params":
                    _collect_param_reads(stmt, rc.param_reads)
                    _collect_kwarg_keys(stmt, rc.kwarg_keys)

    def _harvest_fold_class(self, node: ast.ClassDef) -> None:
        update = next(
            (s for s in node.body if isinstance(s, ast.FunctionDef)
             and s.name == "update"), None)
        if update is None or len(update.args.args) < 2:
            return
        report_param = update.args.args[1].arg
        for sub in ast.walk(update):
            if (isinstance(sub, ast.Attribute)
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id == report_param):
                self.facts.fold_reads.append(
                    (node.name, sub.attr, sub.lineno, sub.col_offset))

    # -- functions -----------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if (self._func_depth == 0 and not self._class_stack
                and node.name in ("parse_report", "from_params")):
            _collect_param_reads(node, self.facts.global_param_reads)
        self._func_depth += 1
        self.generic_visit(node)
        self._func_depth -= 1

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        if self._func_depth == 0 and not self._class_stack:
            self.facts.async_funcs.append(
                f"{self.facts.module}.{node.name}")
        self._func_depth += 1
        self.generic_visit(node)
        self._func_depth -= 1

    # -- statement-expression calls (ASY002 sites) ---------------------
    def visit_Expr(self, node: ast.Expr) -> None:
        call = node.value
        if isinstance(call, ast.Call):
            func = call.func
            if isinstance(func, ast.Name):
                resolved = self.aliases.get(func.id)
                self.facts.bare_calls.append(
                    ("name", func.id, resolved, node.lineno,
                     node.col_offset))
            elif isinstance(func, ast.Attribute):
                self.facts.bare_calls.append(
                    ("attr", func.attr, None, node.lineno, node.col_offset))
        self.generic_visit(node)

    # -- metric emits / references -------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        name = _terminal_name(node.func)
        if name is not None and node.args:
            first = node.args[0]
            if _EMIT_CALLEE_RE.search(name):
                literal = _str_const(first)
                if literal is not None and METRIC_NAME_RE.match(literal):
                    self.facts.metric_emits.setdefault(literal, _loc(node))
                elif isinstance(first, ast.JoinedStr) and first.values:
                    head = _str_const(first.values[0])
                    if head and "." in head:
                        self.facts.metric_prefixes.append(head)
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr == "get"):
                literal = _str_const(first)
                if literal is not None and METRIC_NAME_RE.match(literal):
                    self.facts.metric_refs.append(
                        (literal, first.lineno, first.col_offset))
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        if node.ops and isinstance(node.ops[0], ast.In):
            literal = _str_const(node.left)
            if literal is not None and METRIC_NAME_RE.match(literal):
                self.facts.metric_refs.append(
                    (literal, node.left.lineno, node.left.col_offset))
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._func_depth == 0 and not self._class_stack:
            named = any(isinstance(t, ast.Name)
                        and _REF_COLLECTION_RE.search(t.id)
                        for t in node.targets)
            if named:
                for sub in ast.walk(node.value):
                    literal = _str_const(sub)
                    if literal is not None and METRIC_NAME_RE.match(literal):
                        self.facts.metric_refs.append(
                            (literal, sub.lineno, sub.col_offset))
        self.generic_visit(node)


def harvest_file(tree: ast.Module, path: str, source: str) -> FileFacts:
    """Pass 1 over one parsed module: extract its :class:`FileFacts`."""
    # local import: engine imports this module lazily for the same reason
    from repro.check.engine import collect_aliases, parse_suppressions

    facts = FileFacts(path=path, module=module_of(path))
    _Harvester(facts, collect_aliases(tree)).visit(tree)
    facts.suppressions = expand_suppressions(
        parse_suppressions(source), statement_spans(tree))
    # deterministic fact ordering: cache round-trips must be byte-stable
    facts.metric_prefixes = sorted(set(facts.metric_prefixes))
    facts.async_funcs = sorted(set(facts.async_funcs))
    facts.async_methods = sorted(set(facts.async_methods))
    facts.sync_methods = sorted(set(facts.sync_methods))
    return facts


# --------------------------------------------------------------------------
# the merged project view
# --------------------------------------------------------------------------

class ProjectContext:
    """Merged fact tables of every checked file (pass-2 input).

    Exposes the global views project rules consume; the per-file
    records stay reachable through :attr:`files` for rules that need
    per-class detail (the to_params/to_log_string twin check) or a
    finding's suppression map.
    """

    def __init__(self, files: Iterable[FileFacts]) -> None:
        self.files: List[FileFacts] = list(files)

        self.report_attrs: Set[str] = set()
        self.report_fields: Set[str] = set()
        #: wire key -> every class emitting it (via to_params OR wire)
        self.emitted_keys: Set[str] = set()
        #: wire key -> read anywhere (from_params or parse_report)
        self.read_keys: Set[str] = set()
        #: dataclass field -> wire keys from_params maps it to
        self.field_keys: Dict[str, Set[str]] = {}
        self.metric_emits: Set[str] = set()
        self.metric_prefixes: List[str] = []
        self.async_funcs: Set[str] = set()
        self.async_methods: Set[str] = set()
        self.sync_methods: Set[str] = set()
        #: path -> expanded suppression map (project-finding filtering)
        self.suppressions_by_path: Dict[
            str, Dict[int, Optional[FrozenSet[str]]]] = {}

        class_facts: Dict[str, ReportClassFacts] = {}
        for facts in self.files:
            class_facts.update(facts.report_classes)
            for rc in facts.report_classes.values():
                self.report_attrs.update(rc.attrs)
                self.report_fields.update(rc.fields)
                self.read_keys.update(rc.param_reads)
                for attr, keys in rc.kwarg_keys.items():
                    self.field_keys.setdefault(attr, set()).update(keys)
            self.read_keys.update(facts.global_param_reads)
            self.metric_emits.update(facts.metric_emits)
            self.metric_prefixes.extend(facts.metric_prefixes)
            self.async_funcs.update(facts.async_funcs)
            self.async_methods.update(facts.async_methods)
            self.sync_methods.update(facts.sync_methods)
            self.suppressions_by_path[facts.path] = facts.suppressions

        # emitted keys include what base classes emit (ActivityReport
        # inherits the header fields its ``_header()`` call produces)
        self._class_facts = class_facts
        for name in class_facts:
            self.emitted_keys.update(self.class_emitted(name))
        self.metric_prefixes = sorted(set(self.metric_prefixes))

    def class_emitted(self, class_name: str,
                      _seen: Optional[Set[str]] = None) -> Set[str]:
        """Wire keys ``class_name`` emits, own methods plus inherited."""
        seen = _seen if _seen is not None else set()
        if class_name in seen:
            return set()
        seen.add(class_name)
        rc = self._class_facts.get(class_name)
        if rc is None:
            return set()
        keys = set(rc.param_writes) | set(rc.wire_writes)
        for base in rc.bases:
            keys |= self.class_emitted(base, seen)
        return keys

    def emits_metric(self, name: str) -> bool:
        """Whether any instrumentation site can produce metric ``name``."""
        if name in self.metric_emits:
            return True
        return any(name.startswith(prefix)
                   for prefix in self.metric_prefixes)
