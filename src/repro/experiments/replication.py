"""Seed replication: error bars for any experiment.

Every figure function is deterministic given a seed; scientific use needs
replication across seeds.  :func:`replicate` runs an experiment at
several seeds and aggregates its ``metrics`` into mean / standard
deviation / extremes, so any benchmark claim ("continuity stays above
0.9") can be checked for seed-robustness rather than anchored to one
lucky draw.

With ``jobs > 1`` (or an explicit ``store``) the seeds are fanned out
through :mod:`repro.campaign` — worker processes call the very same
experiment function with the very same seeds, so the aggregate is
bit-identical to the sequential path while the wall clock divides by the
worker count.  Either way the result keeps the raw per-seed samples, so
downstream aggregation (campaign artifacts, error bars) never re-runs
experiments to recover them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Union

import numpy as np

from repro.experiments.render import FigureResult, render_table

__all__ = ["MetricSummary", "ReplicationResult", "replicate"]


@dataclass(frozen=True)
class MetricSummary:
    """Aggregate of one metric across replicate runs (NaNs excluded)."""

    name: str
    mean: float
    std: float
    min: float
    max: float
    n: int

    @classmethod
    def from_samples(cls, name: str, samples: Sequence[float]) -> "MetricSummary":
        """Aggregate raw per-seed values; NaNs are dropped (a replicate
        may legitimately lack a metric, e.g. no continuity samples)."""
        arr = np.asarray(list(samples), dtype=float)
        arr = arr[np.isfinite(arr)]
        if arr.size == 0:
            return cls(name=name, mean=float("nan"), std=float("nan"),
                       min=float("nan"), max=float("nan"), n=0)
        return cls(
            name=name,
            mean=float(arr.mean()),
            std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
            min=float(arr.min()),
            max=float(arr.max()),
            n=int(arr.size),
        )

    @property
    def spread(self) -> float:
        """max - min across replicates (NaN when no finite sample exists,
        rather than a misleading 0 or a ``nan - nan`` surprise)."""
        if self.n == 0:
            return float("nan")
        return self.max - self.min

    def to_dict(self) -> Dict[str, float]:
        """JSON-ready form."""
        return {"mean": self.mean, "std": self.std, "min": self.min,
                "max": self.max, "n": self.n}


@dataclass
class ReplicationResult:
    """All metric summaries of a replicated experiment.

    ``samples[metric][i]`` is the raw value observed at ``seeds[i]`` (NaN
    when that replicate lacked the metric) — the error-bar inputs, kept so
    aggregation layers need not re-run anything.
    """

    experiment: str
    seeds: List[int]
    summaries: Dict[str, MetricSummary] = field(default_factory=dict)
    samples: Dict[str, List[float]] = field(default_factory=dict)

    def get(self, metric: str) -> MetricSummary:
        """Summary for one metric (KeyError if the experiment never
        produced it)."""
        return self.summaries[metric]

    def render(self) -> str:
        """ASCII table of mean +/- std (min..max) and per-seed values."""
        rows = []
        for name, s in self.summaries.items():
            raw = self.samples.get(name)
            per_seed = (
                ",".join("%.4g" % v for v in raw) if raw else "-"
            )
            rows.append((
                name, s.n, f"{s.mean:.4g}", f"{s.std:.2g}",
                f"{s.min:.4g}..{s.max:.4g}", per_seed,
            ))
        header = (f"=== replication: {self.experiment} over seeds "
                  f"{self.seeds} ===\n")
        return header + render_table(
            ("metric", "n", "mean", "std", "range", "per-seed"), rows
        )

    def to_dict(self) -> Dict[str, object]:
        """Machine-readable form: summaries *and* raw per-seed samples."""
        return {
            "experiment": self.experiment,
            "seeds": list(self.seeds),
            "summaries": {k: s.to_dict() for k, s in self.summaries.items()},
            "samples": {k: list(v) for k, v in self.samples.items()},
        }

    def to_json(self, indent: int = 2) -> str:
        """JSON dump including raw per-seed metric values."""
        import json

        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def _aggregate_per_seed(
    experiment_name: str,
    seeds: Sequence[int],
    per_seed_metrics: Sequence[Dict[str, float]],
) -> ReplicationResult:
    """Build a ReplicationResult from one metric dict per seed."""
    out = ReplicationResult(
        experiment=experiment_name, seeds=[int(s) for s in seeds]
    )
    metric_names: List[str] = []
    for metrics in per_seed_metrics:
        for key in metrics:
            if key not in metric_names:
                metric_names.append(key)
    for key in metric_names:
        values = [float(m.get(key, float("nan"))) for m in per_seed_metrics]
        out.samples[key] = values
        out.summaries[key] = MetricSummary.from_samples(key, values)
    return out


def replicate(
    experiment: Union[Callable[..., FigureResult], str],
    *,
    seeds: Sequence[int] = (0, 1, 2),
    name: str = "",
    jobs: int = 1,
    store=None,
    **kwargs,
) -> ReplicationResult:
    """Run ``experiment(seed=s, **kwargs)`` for each seed and aggregate.

    The experiment must accept a ``seed`` keyword and return a
    :class:`FigureResult` (every function in
    :mod:`repro.experiments.figures` and the ablations qualify).

    ``jobs > 1`` routes the seeds through the campaign executor (worker
    processes, same function, same seeds — bit-identical results); the
    experiment must then be a registry name or an importable module-level
    callable.  Passing a ``store`` (a :class:`repro.campaign.ResultStore`
    or a path) caches per-seed results content-addressed on disk.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    if jobs != 1 or store is not None:
        # lazy import: repro.campaign imports this module for aggregation
        from repro.campaign.registry import experiment_ref
        from repro.campaign.runner import run_campaign
        from repro.campaign.spec import sweep
        from repro.campaign.store import ResultStore

        ref = experiment if isinstance(experiment, str) else (
            experiment_ref(experiment)
        )
        spec = sweep(ref, seeds=[int(s) for s in seeds],
                     overrides=kwargs or None,
                     name=name or f"replicate:{ref}")
        if store is not None and not isinstance(store, ResultStore):
            store = ResultStore(store)
        report = run_campaign(spec, store, jobs=jobs)
        failed = [r for r in report.results if r.status == "failed"]
        if failed or not report.ok:
            first = failed[0].error if failed else "campaign interrupted"
            raise RuntimeError(
                f"replication campaign failed "
                f"({len(failed)}/{len(spec.runs)} runs): {first}"
            )
        by_key = {r.spec.key: r for r in report.results}
        per_seed = [by_key[run.key].metrics for run in spec.runs]
        return _aggregate_per_seed(
            name or (ref if isinstance(experiment, str)
                     else getattr(experiment, "__name__", ref)),
            seeds, per_seed,
        )

    if isinstance(experiment, str):
        from repro.campaign.registry import resolve_experiment

        experiment = resolve_experiment(experiment)
    per_seed = []
    for seed in seeds:
        result = experiment(seed=int(seed), **kwargs)
        per_seed.append({k: float(v) for k, v in result.metrics.items()})
    return _aggregate_per_seed(
        name or getattr(experiment, "__name__", "experiment"),
        seeds, per_seed,
    )
