"""Seed replication: error bars for any experiment.

Every figure function is deterministic given a seed; scientific use needs
replication across seeds.  :func:`replicate` runs an experiment at
several seeds and aggregates its ``metrics`` into mean / standard
deviation / extremes, so any benchmark claim ("continuity stays above
0.9") can be checked for seed-robustness rather than anchored to one
lucky draw.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.experiments.render import FigureResult, render_table

__all__ = ["MetricSummary", "ReplicationResult", "replicate"]


@dataclass(frozen=True)
class MetricSummary:
    """Aggregate of one metric across replicate runs (NaNs excluded)."""

    name: str
    mean: float
    std: float
    min: float
    max: float
    n: int

    @classmethod
    def from_samples(cls, name: str, samples: Sequence[float]) -> "MetricSummary":
        """Aggregate raw per-seed values; NaNs are dropped (a replicate
        may legitimately lack a metric, e.g. no continuity samples)."""
        arr = np.asarray(list(samples), dtype=float)
        arr = arr[np.isfinite(arr)]
        if arr.size == 0:
            return cls(name=name, mean=float("nan"), std=float("nan"),
                       min=float("nan"), max=float("nan"), n=0)
        return cls(
            name=name,
            mean=float(arr.mean()),
            std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
            min=float(arr.min()),
            max=float(arr.max()),
            n=int(arr.size),
        )

    @property
    def spread(self) -> float:
        """max - min across replicates."""
        return self.max - self.min


@dataclass
class ReplicationResult:
    """All metric summaries of a replicated experiment."""

    experiment: str
    seeds: List[int]
    summaries: Dict[str, MetricSummary] = field(default_factory=dict)

    def get(self, metric: str) -> MetricSummary:
        """Summary for one metric (KeyError if the experiment never
        produced it)."""
        return self.summaries[metric]

    def render(self) -> str:
        """ASCII table of mean +/- std (min..max) per metric."""
        rows = []
        for name, s in self.summaries.items():
            rows.append((
                name, s.n, f"{s.mean:.4g}", f"{s.std:.2g}",
                f"{s.min:.4g}..{s.max:.4g}",
            ))
        header = (f"=== replication: {self.experiment} over seeds "
                  f"{self.seeds} ===\n")
        return header + render_table(
            ("metric", "n", "mean", "std", "range"), rows
        )


def replicate(
    experiment: Callable[..., FigureResult],
    *,
    seeds: Sequence[int] = (0, 1, 2),
    name: str = "",
    **kwargs,
) -> ReplicationResult:
    """Run ``experiment(seed=s, **kwargs)`` for each seed and aggregate.

    The experiment must accept a ``seed`` keyword and return a
    :class:`FigureResult` (every function in
    :mod:`repro.experiments.figures` and the ablations qualify).
    """
    if not seeds:
        raise ValueError("need at least one seed")
    per_metric: Dict[str, List[float]] = {}
    for seed in seeds:
        result = experiment(seed=int(seed), **kwargs)
        for key, value in result.metrics.items():
            per_metric.setdefault(key, []).append(float(value))
    out = ReplicationResult(
        experiment=name or getattr(experiment, "__name__", "experiment"),
        seeds=[int(s) for s in seeds],
    )
    for key, values in per_metric.items():
        out.summaries[key] = MetricSummary.from_samples(key, values)
    return out
