"""Experiment harness: regenerate every table and figure of the paper.

Each ``figN`` function runs the appropriate scenario, analyses the logs
exactly as Section V does, and returns a :class:`FigureResult` whose
``render()`` prints the same rows/series the paper reports.  The benchmark
suite under ``benchmarks/`` wraps these one-to-one.
"""

from repro.experiments.render import (
    FigureResult,
    render_cdf_table,
    render_series,
    render_table,
)
from repro.experiments.figures import (
    table1,
    fig3_user_types_and_contribution,
    fig4_overlay_structure,
    fig5_user_evolution,
    fig6_join_time_cdfs,
    fig7_ready_time_by_period,
    fig8_continuity_by_type,
    fig9_rate_point,
    fig9_scalability,
    fig9_size_point,
    fig10_sessions_and_retries,
)
from repro.experiments.replication import MetricSummary, ReplicationResult, replicate
from repro.experiments.model_validation import (
    validate_dynamics_equations,
    validate_convergence_model,
)

__all__ = [
    "FigureResult",
    "render_cdf_table",
    "render_series",
    "render_table",
    "table1",
    "fig3_user_types_and_contribution",
    "fig4_overlay_structure",
    "fig5_user_evolution",
    "fig6_join_time_cdfs",
    "fig7_ready_time_by_period",
    "fig8_continuity_by_type",
    "fig9_size_point",
    "fig9_rate_point",
    "fig9_scalability",
    "fig10_sessions_and_retries",
    "validate_dynamics_equations",
    "validate_convergence_model",
    "MetricSummary",
    "ReplicationResult",
    "replicate",
]
