"""Per-figure regeneration functions.

Each function runs a scenario sized to finish in tens of seconds on a
laptop (pass ``scale``/duration arguments to go bigger), analyses the
resulting log with :mod:`repro.analysis` exactly as Section V does, and
returns a :class:`~repro.experiments.render.FigureResult`.

Every figure routes through :func:`repro.runtime.run_scenario`, so the
``engine`` keyword switches any of them between the event-driven
reference engine (``"detailed"``) and the vectorized fluid engine
(``"fast"``).  Defaults preserve each figure's historical engine:
protocol-microscope figures (3, 4, 6, 8) default to detailed,
population-scale figures (5, 7, 9, 10) to fast.

The paper-vs-measured record produced by these functions is kept in
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.analysis import (
    Cdf,
    SessionTable,
    classify_users,
    continuity_by_type,
    snapshot_overlay,
)
from repro.analysis.classification import UserType, type_distribution
from repro.analysis.continuity import mean_continuity
from repro.analysis.contribution import (
    contribution_by_type,
    contributor_class_share,
    lorenz_curve,
    top_contributor_share,
    upload_totals,
)
from repro.core.config import SystemConfig
from repro.experiments.render import FigureResult, render_series, render_table
from repro.runtime import run_scenario
from repro.workload.arrivals import FlashCrowd
from repro.workload.scenarios import (
    Scenario,
    diurnal_day,
    flash_crowd_storm,
    steady_audience,
    uniform_ramp,
)
from repro.workload.sessions import SessionDurationModel

__all__ = [
    "table1",
    "fig3_user_types_and_contribution",
    "fig4_overlay_structure",
    "fig5_user_evolution",
    "fig6_join_time_cdfs",
    "fig7_ready_time_by_period",
    "fig8_continuity_by_type",
    "fig9_size_point",
    "fig9_rate_point",
    "fig9_scalability",
    "fig10_sessions_and_retries",
]


# ---------------------------------------------------------------------------
# Table I
# ---------------------------------------------------------------------------
def table1(cfg: Optional[SystemConfig] = None) -> FigureResult:
    """Table I: system parameters of Coolstreaming."""
    cfg = cfg or SystemConfig()
    result = FigureResult("Table I", "System parameters of Coolstreaming")
    result.add_block(
        render_table(("symbol", "meaning", "value"), cfg.table1())
    )
    result.metrics["R_kbps"] = cfg.stream_rate_bps / 1000
    result.metrics["K"] = cfg.n_substreams
    return result


# ---------------------------------------------------------------------------
# Fig. 3: user types and upload contribution
# ---------------------------------------------------------------------------
def fig3_user_types_and_contribution(
    *, seed: int = 0, rate_per_s: float = 0.4, horizon_s: float = 1200.0,
    engine: str = "detailed",
) -> FigureResult:
    """Fig. 3a/3b: user type distribution and upload-byte shares.

    Paper: direct+UPnP are ~30% of peers yet contribute >80% of bytes.
    """
    scenario = steady_audience(rate_per_s=rate_per_s, horizon_s=horizon_s)
    log = run_scenario(scenario, seed=seed, engine=engine).log
    types = classify_users(log)
    dist = type_distribution(types)
    per_type = contribution_by_type(log, types)
    pop_frac, up_frac = contributor_class_share(log, types)

    result = FigureResult(
        "Fig. 3", "User type distribution and upload contribution"
    )
    result.add_block(render_table(
        ("user type", "population share", "upload-bytes share"),
        [
            (t.value, f"{per_type[t][0]*100:.1f}%", f"{per_type[t][1]*100:.1f}%")
            for t in UserType
        ],
    ))
    uploads = list(upload_totals(log).values())
    x, y = lorenz_curve(uploads)
    result.add_block(render_series("Lorenz (upload bytes)", x, y, fmt="%.2f"))
    result.metrics["contributor_population_share"] = pop_frac
    result.metrics["contributor_upload_share"] = up_frac
    result.metrics["top30pct_upload_share"] = top_contributor_share(uploads, 0.30)
    result.metrics["classified_users"] = float(len(types))
    result.note(
        "paper: ~30% of peers (direct+UPnP) contribute >80% of upload bytes"
    )
    return result


# ---------------------------------------------------------------------------
# Fig. 4: overlay structure
# ---------------------------------------------------------------------------
def fig4_overlay_structure(
    *, seed: int = 0, rate_per_s: float = 0.4, horizon_s: float = 1200.0,
    snapshot_every_s: float = 300.0,
) -> FigureResult:
    """Fig. 4 (conceptual overlay) made quantitative: clogging under
    contributor parents, rarity of NAT<->NAT links, convergence over time."""
    scenario = steady_audience(rate_per_s=rate_per_s, horizon_s=horizon_s)
    system, _pop = scenario.build(seed=seed)
    snapshots = []
    t = snapshot_every_s
    while t <= horizon_s + 1e-9:
        system.run(until=t)
        snapshots.append(snapshot_overlay(system))
        t += snapshot_every_s

    result = FigureResult("Fig. 4", "Overlay structure statistics over time")
    rows = []
    for snap in snapshots:
        rows.append((
            f"{snap.time:.0f}",
            f"{snap.n_peers}",
            f"{snap.contributor_parent_fraction()*100:.1f}%",
            f"{snap.random_link_fraction()*100:.1f}%",
            f"{snap.mean_depth():.2f}",
        ))
    result.add_block(render_table(
        ("t (s)", "peers", "subs under contributor parents",
         "NAT<->NAT links", "mean depth"),
        rows,
    ))
    final = snapshots[-1]
    degs = final.out_degree_by_class()
    result.add_block(render_table(
        ("class", "mean sub-stream out-degree D_p"),
        [(cls.name, f"{d:.2f}") for cls, d in sorted(degs.items())],
    ))
    result.metrics["final_contributor_parent_fraction"] = (
        final.contributor_parent_fraction()
    )
    result.metrics["final_random_link_fraction"] = final.random_link_fraction()
    result.metrics["final_mean_depth"] = final.mean_depth()
    result.note(
        "paper: peers clog under direct/UPnP parents; NAT-NAT 'random links' rare"
    )
    return result


# ---------------------------------------------------------------------------
# Fig. 5: audience evolution
# ---------------------------------------------------------------------------
def fig5_user_evolution(
    *, seed: int = 0, day_seconds: float = 14_400.0, peak_rate: float = 2.0,
    n_servers: int = 6, engine: str = "fast",
) -> FigureResult:
    """Fig. 5a/5b: concurrent users over a (scaled) day and its evening.

    A diurnal arrival profile with a program-end cliff at "22:00" (here
    scaled onto ``day_seconds``); the curve must ramp steeply to the peak
    and collapse at the ending, as measured on 2006-09-27.
    """
    program_end = 22.0 / 24.0 * day_seconds
    scenario = diurnal_day(
        day_seconds=day_seconds, peak_rate=peak_rate, n_servers=n_servers,
        program_ending=(program_end, 0.75),
    )
    res = run_scenario(scenario, seed=seed, engine=engine,
                       capacity_hint=8192)

    table = SessionTable.from_log(res.log)
    grid, counts = table.concurrent_users(step_s=day_seconds / 288, t1=day_seconds)
    evening0 = 18.0 / 24.0 * day_seconds
    mask = grid >= evening0

    result = FigureResult("Fig. 5", "Evolution of the number of users")
    result.add_block(render_series("5a: whole day", grid, counts, fmt="%.0f"))
    result.add_block(render_series("5b: evening", grid[mask], counts[mask], fmt="%.0f"))
    peak_idx = int(np.argmax(counts))
    after_end = counts[np.searchsorted(grid, min(program_end + 0.02 * day_seconds,
                                                 grid[-1]))]
    result.metrics["peak_concurrent"] = float(counts[peak_idx])
    result.metrics["peak_time_frac_of_day"] = float(grid[peak_idx] / day_seconds)
    result.metrics["drop_after_program_end"] = float(
        1.0 - after_end / max(1.0, counts[peak_idx])
    )
    result.metrics["arrived_users"] = float(res.workload.n_users)
    result.note("paper: ramp to ~40,000 peak; sharp drop at ~22:00 program end")
    return result


# ---------------------------------------------------------------------------
# Fig. 6: join-time CDFs (reference engine: real control-plane latencies)
# ---------------------------------------------------------------------------
def fig6_join_time_cdfs(
    *, seed: int = 0, burst_users_per_s: float = 1.2, horizon_s: float = 900.0,
    engine: str = "detailed",
) -> FigureResult:
    """Fig. 6: CDFs of start-subscription time, media-player-ready time and
    their difference (the buffer-fill wait).

    Paper: most users subscribe within seconds; ready time has a heavy
    tail; the difference concentrates around 10-20 s.
    """
    scenario = flash_crowd_storm(
        burst_users_per_s=burst_users_per_s, horizon_s=horizon_s, n_servers=3
    )
    res = run_scenario(scenario, seed=seed, engine=engine)
    table = SessionTable.from_log(res.log)
    subs = table.subscription_delays()
    ready = table.ready_delays()
    diff = table.buffering_delays()

    result = FigureResult(
        "Fig. 6", "Start-subscription vs media-player-ready time CDFs"
    )
    grid = [1, 2, 5, 10, 15, 20, 30, 45, 60, 90]
    rows = []
    cdf_subs = Cdf.from_samples(subs)
    cdf_ready = Cdf.from_samples(ready)
    cdf_diff = Cdf.from_samples(diff)
    for g in grid:
        rows.append((
            f"{g}",
            f"{cdf_subs.at(g):.3f}",
            f"{cdf_ready.at(g):.3f}",
            f"{cdf_diff.at(g):.3f}",
        ))
    result.add_block(render_table(
        ("seconds", "P(start-sub <= x)", "P(ready <= x)", "P(diff <= x)"), rows
    ))
    result.metrics["median_start_subscription_s"] = cdf_subs.median
    result.metrics["median_ready_s"] = cdf_ready.median
    result.metrics["median_buffering_s"] = cdf_diff.median
    result.metrics["p90_ready_s"] = cdf_ready.quantile(0.9)
    result.metrics["n_sessions"] = float(len(table))
    result.note("paper: buffering difference averages 10-20 s; ready heavy-tailed")
    return result


# ---------------------------------------------------------------------------
# Fig. 7: ready time by day period
# ---------------------------------------------------------------------------
def fig7_ready_time_by_period(
    *, seed: int = 0, day_seconds: float = 14_400.0, peak_rate: float = 2.0,
    n_servers: int = 6, engine: str = "fast",
) -> FigureResult:
    """Fig. 7: media-player-ready-time distribution in four day periods.

    Paper's periods (i) 01:00-13:29, (ii) 13:30-17:29, (iii) 17:30-20:29,
    (iv) 20:30-23:59, scaled onto our day; period (iii) -- the steep ramp
    -- shows the longest ready times.
    """
    scenario = diurnal_day(
        day_seconds=day_seconds, peak_rate=peak_rate, n_servers=n_servers,
    )
    res = run_scenario(scenario, seed=seed, engine=engine,
                       capacity_hint=8192)

    table = SessionTable.from_log(res.log)
    h = day_seconds / 24.0
    periods = {
        "(i) 01:00-13:29": (1.0 * h, 13.49 * h),
        "(ii) 13:30-17:29": (13.5 * h, 17.49 * h),
        "(iii) 17:30-20:29": (17.5 * h, 20.49 * h),
        "(iv) 20:30-23:59": (20.5 * h, 24.0 * h),
    }
    result = FigureResult("Fig. 7", "Ready-time distribution by day period")
    rows = []
    medians: Dict[str, float] = {}
    for name, (a, b) in periods.items():
        delays = table.ready_delays(join_after=a, join_before=b)
        if not delays:
            rows.append((name, "0", "-", "-", "-"))
            continue
        cdf = Cdf.from_samples(delays)
        medians[name] = cdf.median
        rows.append((
            name, str(cdf.n), f"{cdf.median:.1f}",
            f"{cdf.quantile(0.9):.1f}", f"{cdf.mean:.1f}",
        ))
    result.add_block(render_table(
        ("period", "n", "median ready (s)", "p90", "mean"), rows
    ))
    if "(iii) 17:30-20:29" in medians:
        others = [v for k, v in medians.items() if k != "(iii) 17:30-20:29"]
        result.metrics["peak_period_median_s"] = medians["(iii) 17:30-20:29"]
        if others:
            result.metrics["offpeak_median_s"] = float(np.mean(others))
            result.metrics["peak_to_offpeak_ratio"] = (
                medians["(iii) 17:30-20:29"] / float(np.mean(others))
            )
    result.note("paper: period (iii) -- highest join rate -- has the longest ready times")
    return result


# ---------------------------------------------------------------------------
# Fig. 8: continuity by user type
# ---------------------------------------------------------------------------
def fig8_continuity_by_type(
    *, seed: int = 0, rate_per_s: float = 0.5, horizon_s: float = 1800.0,
    engine: str = "detailed",
) -> FigureResult:
    """Fig. 8: average continuity index vs time per user connection type.

    Paper: all types >98%; *direct-connect slightly below NAT/firewall* --
    an artefact of churn plus the 5-minute report cadence (bad NAT windows
    never reach the server).  The reference engine reproduces the whole
    causal chain, so the inversion should emerge, not be injected.
    """
    scenario = steady_audience(rate_per_s=rate_per_s, horizon_s=horizon_s,
                               n_servers=3)
    log = run_scenario(scenario, seed=seed, engine=engine).log
    types = classify_users(log)
    series = continuity_by_type(log, bin_s=300.0, types=types, t1=horizon_s)

    result = FigureResult("Fig. 8", "Continuity index vs time by user type")
    means: Dict[str, float] = {}
    for ut, (centers, vals, counts) in series.items():
        result.add_block(render_series(
            f"{ut.value} (n={int(counts.sum())})", centers, vals, fmt="%.3f"
        ))
        finite = vals[np.isfinite(vals)]
        if finite.size:
            means[ut.value] = float(np.mean(finite))
    result.add_block(render_table(
        ("user type", "mean continuity"),
        [(k, f"{v:.4f}") for k, v in sorted(means.items())],
    ))
    for k, v in means.items():
        result.metrics[f"mean_continuity_{k}"] = v
    overall = mean_continuity(log, after=300.0)
    result.metrics["mean_continuity_overall"] = overall
    if "direct" in means and "nat" in means:
        result.metrics["nat_minus_direct"] = means["nat"] - means["direct"]
    result.note(
        "paper: continuity >=97-98% for all types; NAT/firewall *measured* "
        "slightly above direct (report-loss artefact)"
    )
    return result


# ---------------------------------------------------------------------------
# Fig. 9: scalability sweeps
# ---------------------------------------------------------------------------
def fig9_size_point(
    *, seed: int = 0, n_users: int = 1000, horizon_s: float = 1200.0,
    n_servers: int = 4, engine: str = "fast",
) -> FigureResult:
    """One Fig. 9a sweep point: mean continuity at ``n_users`` arrivals.

    Independent of every other point (own simulation, own seed), which is
    what lets the campaign executor fan the sweep out across workers
    bit-identically to the sequential loop.
    """
    scenario = uniform_ramp(n_users=n_users, horizon_s=horizon_s,
                            n_servers=n_servers)
    res = run_scenario(scenario, seed=seed, engine=engine)
    cont = mean_continuity(res.log, after=0.4 * horizon_s)
    result = FigureResult("Fig. 9a point", f"continuity at N={n_users}")
    result.metrics["continuity"] = cont
    result.metrics["n_users"] = float(n_users)
    result.metrics["playing_at_end"] = res.metrics()["playing_users"]
    return result


def fig9_rate_point(
    *, seed: int = 0, rate: float = 1.0, horizon_s: float = 1200.0,
    n_servers: int = 4, engine: str = "fast",
) -> FigureResult:
    """One Fig. 9b sweep point: mean continuity at join rate ``rate``/s."""
    n_users = int(rate * 0.25 * horizon_s)
    scenario = uniform_ramp(n_users=n_users, horizon_s=horizon_s,
                            n_servers=n_servers)
    res = run_scenario(scenario, seed=seed, engine=engine)
    cont = mean_continuity(res.log, after=0.4 * horizon_s)
    result = FigureResult("Fig. 9b point", f"continuity at {rate:g}/s")
    result.metrics["continuity"] = cont
    result.metrics["rate"] = float(rate)
    result.metrics["arrivals"] = float(n_users)
    return result


def fig9_scalability(
    *, seed: int = 0, sizes: tuple = (250, 500, 1000, 2000, 4000),
    join_rates: tuple = (0.5, 1.0, 2.0, 4.0, 8.0),
    horizon_s: float = 1200.0, jobs: int = 1, engine: str = "fast",
) -> FigureResult:
    """Fig. 9a/9b: average continuity vs system size and vs join rate.

    Paper: flat at ~97% across sizes and arrival bursts -- the self-scaling
    claim.  Server fleet is held *constant* while the population grows, so
    flatness is carried by peer capacity, as in the deployment.

    Every sweep point is an independent simulation
    (:func:`fig9_size_point` at seed ``seed+i``, :func:`fig9_rate_point`
    at ``seed+100+i``); ``jobs > 1`` fans them out over the campaign
    executor's worker pool with results bit-identical to ``jobs=1``.
    A non-default ``engine`` is threaded into every point's overrides
    (and hence into campaign run keys).
    """
    # only non-default engines enter the overrides: the default sweep's
    # content-addressed run keys (and cached results) stay valid
    extra = {} if engine == "fast" else {"engine": engine}
    point_specs = [
        ("fig9_size", seed + i,
         {"n_users": int(n), "horizon_s": horizon_s, **extra})
        for i, n in enumerate(sizes)
    ] + [
        ("fig9_rate", seed + 100 + i,
         {"rate": float(r), "horizon_s": horizon_s, **extra})
        for i, r in enumerate(join_rates)
    ]

    if jobs != 1:
        # lazy import: repro.campaign's registry imports this module
        from repro.campaign.runner import run_campaign
        from repro.campaign.spec import CampaignSpec, RunSpec, run_key

        spec = CampaignSpec(name="fig9", code_version=None)
        spec.runs = [
            RunSpec(experiment=exp, seed=s, overrides=ov,
                    key=run_key(exp, s, ov, None))
            for exp, s, ov in point_specs
        ]
        report = run_campaign(spec, store=None, jobs=jobs)
        if not report.ok:
            failed = [r for r in report.results if r.status == "failed"]
            detail = failed[0].error if failed else "interrupted"
            raise RuntimeError(f"fig9 campaign failed: {detail}")
        point_metrics = [r.metrics for r in report.results]
    else:
        point_fns = {"fig9_size": fig9_size_point, "fig9_rate": fig9_rate_point}
        point_metrics = [
            dict(point_fns[exp](seed=s, **ov).metrics)
            for exp, s, ov in point_specs
        ]

    result = FigureResult("Fig. 9", "Continuity vs system size / join rate")
    size_points = point_metrics[:len(sizes)]
    rate_points = point_metrics[len(sizes):]

    size_rows = []
    size_metrics = []
    for n_users, m in zip(sizes, size_points):
        cont = m["continuity"]
        size_rows.append((str(n_users), f"{int(m['playing_at_end'])}",
                          f"{cont:.4f}"))
        size_metrics.append(cont)
        result.metrics[f"continuity_N{n_users}"] = cont
    result.add_block(render_table(
        ("arrivals (9a)", "playing at end", "mean continuity"), size_rows
    ))

    rate_rows = []
    rate_metrics = []
    for rate, m in zip(join_rates, rate_points):
        cont = m["continuity"]
        rate_rows.append((f"{rate:g}/s", str(int(m["arrivals"])),
                          f"{cont:.4f}"))
        rate_metrics.append(cont)
        result.metrics[f"continuity_rate{rate:g}"] = cont
    result.add_block(render_table(
        ("join rate (9b)", "arrivals", "mean continuity"), rate_rows
    ))
    result.metrics["size_sweep_min"] = float(np.min(size_metrics))
    result.metrics["size_sweep_spread"] = float(
        np.max(size_metrics) - np.min(size_metrics)
    )
    result.metrics["rate_sweep_min"] = float(np.min(rate_metrics))
    result.note("paper: continuity stays ~97% across sizes and join rates")
    return result


# ---------------------------------------------------------------------------
# Fig. 10: session durations and retries
# ---------------------------------------------------------------------------
def fig10_sessions_and_retries(
    *, seed: int = 0, burst_users_per_s: float = 3.0, horizon_s: float = 1800.0,
    n_servers: int = 4, engine: str = "fast",
) -> FigureResult:
    """Fig. 10a/10b: session-duration distribution and retry counts.

    Paper: heavy-tailed durations plus a spike of <1-minute sessions
    (failed joins); ~20% of users retried 1-2 times.
    """
    scenario = Scenario(
        name="fig10_flash",
        cfg=SystemConfig(n_servers=n_servers),
        arrivals=FlashCrowd(
            start_s=0.02 * horizon_s, ramp_s=0.15 * horizon_s,
            hold_s=0.4 * horizon_s, decay_s=0.15 * horizon_s,
            peak_rate=burst_users_per_s, base_rate=0.1,
        ),
        horizon_s=horizon_s,
        duration_model=SessionDurationModel(
            lognorm_median_s=0.2 * horizon_s, pareto_scale_s=0.5 * horizon_s
        ),
    )
    res = run_scenario(scenario, seed=seed, engine=engine,
                       capacity_hint=8192)

    table = SessionTable.from_log(res.log)
    durs = table.durations()
    cdf = Cdf.from_samples(durs)
    result = FigureResult("Fig. 10", "Session durations and re-try sessions")
    grid = [30, 60, 120, 300, 600, 900, 1200, horizon_s]
    result.add_block(render_table(
        ("duration x (s)", "P(D <= x)"),
        [(f"{g:.0f}", f"{cdf.at(g):.3f}") for g in grid],
    ))
    hist = table.retry_histogram()
    total_users = sum(hist.values())
    result.add_block(render_table(
        ("retries", "users", "fraction"),
        [
            (str(r), str(n), f"{n / total_users:.3f}")
            for r, n in sorted(hist.items())
        ],
    ))
    result.metrics["short_session_fraction"] = table.short_session_fraction(60.0)
    result.metrics["median_duration_s"] = cdf.median
    retried = sum(n for r, n in hist.items() if r >= 1)
    result.metrics["retried_user_fraction"] = retried / total_users
    result.metrics["retried_1or2_fraction"] = (
        (hist.get(1, 0) + hist.get(2, 0)) / total_users
    )
    result.metrics["n_users"] = float(total_users)
    result.note("paper: heavy tail + <1min spike; ~20% of users retried 1-2 times")
    return result
