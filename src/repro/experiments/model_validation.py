"""Validation of the Section IV analytical model against the simulator.

Two experiments:

* :func:`validate_dynamics_equations` -- builds controlled micro-scenarios
  with the reference engine's primitives (one parent, known capacity,
  known deficit) and compares measured catch-up / abandon times against
  Eqs. (3)-(5), and the measured competition-loss frequency against
  Eq. (6).
* :func:`validate_convergence_model` -- runs a steady audience, samples
  the fraction of sub-stream subscriptions held under contributor-class
  parents over time, and compares it with the two-state Markov chain of
  :class:`repro.model.convergence.ConvergenceModel`.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.analysis.topology import snapshot_overlay
from repro.core.stream import SubscriptionConn, UploadScheduler
from repro.experiments.render import FigureResult, render_series, render_table
from repro.model.convergence import ConvergenceModel
from repro.model.dynamics import (
    abandon_time,
    catchup_time,
    competition_loss_probability,
    degraded_rate,
    loss_time,
)
from repro.workload.scenarios import steady_audience

__all__ = ["validate_dynamics_equations", "validate_convergence_model"]


def _simulate_transfer(
    upload_slots: float,
    n_children: int,
    deficit_blocks: int,
    *,
    sub_rate: float = 1.0,
    dt: float = 0.1,
    max_t: float = 500.0,
) -> Optional[float]:
    """Drive one :class:`UploadScheduler` parent with ``n_children``
    children, one of which starts ``deficit_blocks`` behind, and measure
    the time for that child to catch up to the live edge.  Returns None if
    it never does within ``max_t`` (the Eq. 4 regime)."""
    block_bits = 1.0
    sched = UploadScheduler(upload_slots * sub_rate, sub_rate, block_bits)
    # the parent is `deficit_blocks` ahead of the measured child at t=0
    parent_head = float(deficit_blocks)
    heads = {}
    sched.subscribe(0, 0, 1, now=0.0)
    heads[0] = 0
    for c in range(1, n_children):
        sched.subscribe(c, 0, deficit_blocks + 1, now=0.0)
        heads[c] = deficit_blocks

    t = 0.0
    caught_at = None

    def push(conn: SubscriptionConn, first: int, last: int) -> None:
        """Deliver a block interval to the measured child."""
        heads[conn.child_id] = last

    while t < max_t:
        t += dt
        parent_head += sub_rate * dt
        sched.deliver(dt, [int(parent_head)], 10_001, push)
        if heads[0] >= int(parent_head):
            caught_at = t
            break
    return caught_at


def validate_dynamics_equations(*, seed: int = 0) -> FigureResult:
    """Eqs. (3)-(6) vs micro-simulation."""
    rng = np.random.default_rng(seed)
    result = FigureResult(
        "Eqs. 3-6", "Analytical adaptation dynamics vs simulation"
    )

    # --- Eq. 3: catch-up time ----------------------------------------------
    rows = []
    errors = []
    for slots, l in ((3.0, 10), (2.0, 20), (5.0, 15), (1.5, 8)):
        # single child: r_up = min(slots, catch-up cap) in block/s units
        from repro.core.stream import CATCHUP_DEMAND_FACTOR
        r_up = min(slots, CATCHUP_DEMAND_FACTOR)
        predicted = catchup_time(l, r_up, 1.0)
        measured = _simulate_transfer(slots, 1, l)
        rows.append((
            f"{slots:g}", str(l), f"{predicted:.1f}",
            "-" if measured is None else f"{measured:.1f}",
        ))
        if measured is not None:
            errors.append(abs(measured - predicted) / predicted)
    result.add_block("Eq. 3 (catch-up time): parent slots / deficit l")
    result.add_block(render_table(
        ("slots (r_up)", "l (blocks)", "predicted t_up", "measured"), rows
    ))
    result.metrics["eq3_max_rel_error"] = float(np.max(errors)) if errors else float("nan")

    # --- Eq. 5: degraded rate ----------------------------------------------
    rows = []
    for d_p in (1, 2, 4, 8):
        # a parent exactly provisioned for d_p children accepts one more
        slots = float(d_p)
        r_pred = degraded_rate(d_p, 1.0)
        # measure: d_p + 1 caught-up children on a d_p-slot parent
        sched = UploadScheduler(slots, 1.0, 1.0)
        for c in range(d_p + 1):
            sched.subscribe(c, 0, 1, now=0.0)
        delivered = {c: 0 for c in range(d_p + 1)}

        def push(conn, first, last):
            """Deliver a block interval to the measured child."""
            delivered[conn.child_id] += last - first + 1

        head = 0
        horizon = 200
        for step in range(horizon):
            head += 1
            sched.deliver(1.0, [head], 10_001, push)
        r_meas = np.mean([delivered[c] / horizon for c in delivered])
        rows.append((str(d_p), f"{r_pred:.3f}", f"{r_meas:.3f}"))
    result.add_block("Eq. 5 (degraded rate r_down = D_p/(D_p+1) * R/K)")
    result.add_block(render_table(
        ("D_p", "predicted r_down", "measured mean rate"), rows
    ))

    # --- Eq. 4: abandon time -----------------------------------------------
    rows = []
    for d_p, ts in ((2, 10.0), (4, 10.0), (8, 10.0)):
        r_down = degraded_rate(d_p, 1.0)
        t_pred = abandon_time(ts, r_down, 1.0)
        t_lose = loss_time(d_p, ts, 0.0, 1.0)
        rows.append((str(d_p), f"{r_down:.3f}", f"{t_pred:.1f}", f"{t_lose:.1f}"))
    result.add_block(
        "Eq. 4 (abandon time for slack T_s) and t_lose (competition loss)"
    )
    result.add_block(render_table(
        ("D_p", "r_down", "t_down(T_s)", "t_lose(t_delta=0)"), rows
    ))

    # --- Eq. 6: competition-loss probability --------------------------------
    rows = []
    eq6_err = []
    ts, ta = 10.0, 20.0
    for d_p in (1, 2, 4, 8):
        # empirical t_delta ~ Uniform[0, T_s) sampling, Monte Carlo of the
        # defining event t_lose <= T_a
        samples = rng.uniform(0.0, ts, size=20_000)
        t_lose_samples = (d_p + 1) * (ts - samples) / 1.0
        mc = float((t_lose_samples <= ta).mean())
        closed = competition_loss_probability(d_p, ts, ta, 1.0)
        rows.append((str(d_p), f"{closed:.3f}", f"{mc:.3f}"))
        eq6_err.append(abs(closed - mc))
    result.add_block("Eq. 6 (P(lose within T_a)), uniform t_delta prior")
    result.add_block(render_table(
        ("D_p", "closed form", "Monte Carlo"), rows
    ))
    result.metrics["eq6_max_abs_error"] = float(np.max(eq6_err))
    result.note(
        "larger D_p lowers the loss probability: children of high-degree "
        "(contributor) parents are safer -- the clogging mechanism of Fig. 4"
    )
    return result


def validate_convergence_model(
    *, seed: int = 0, rate_per_s: float = 0.4, horizon_s: float = 1500.0,
    snapshot_every_s: float = 100.0,
) -> FigureResult:
    """Measured contributor-parent fraction vs the Markov-chain transient."""
    scenario = steady_audience(rate_per_s=rate_per_s, horizon_s=horizon_s)
    system, _pop = scenario.build(seed=seed)
    times: List[float] = []
    fractions: List[float] = []
    t = snapshot_every_s
    while t <= horizon_s + 1e-9:
        system.run(until=t)
        snap = snapshot_overlay(system)
        times.append(t)
        fractions.append(snap.contributor_parent_fraction())
        t += snapshot_every_s

    mix = system.mix
    model = ConvergenceModel.from_populations(mix.contributor_fraction)
    # map adaptation rounds onto wall clock: one round per T_a
    rounds = max(2, int(horizon_s / system.cfg.ta_seconds))
    transient = model.transient(initial_stable=fractions[0], n_rounds=rounds)
    stationary = model.stationary_stable_fraction()

    result = FigureResult(
        "Convergence", "Random selection converges peers under stable parents"
    )
    result.add_block(render_series("measured fraction", times, fractions, fmt="%.2f"))
    result.add_block(render_series(
        "model transient", list(range(rounds + 1)), transient, fmt="%.2f"
    ))
    result.metrics["measured_final_fraction"] = fractions[-1]
    result.metrics["model_stationary_fraction"] = stationary
    result.metrics["abs_gap"] = abs(fractions[-1] - stationary)
    result.note(
        "paper: 'if the system runs long enough, most of peers will likely "
        "become children of direct-connect/UPnP peers'"
    )
    return result
