"""Plain-text rendering of figure data: tables, series and sparkline plots.

The harness has no plotting dependency by design (offline environments);
``render()`` output is the deliverable the benchmarks print, and
EXPERIMENTS.md embeds it verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

__all__ = ["FigureResult", "render_table", "render_series", "render_cdf_table", "sparkline"]

_BARS = " .:-=+*#%@"


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Fixed-width ASCII table."""
    cols = [[str(h)] + [str(r[i]) for r in rows] for i, h in enumerate(headers)]
    widths = [max(len(v) for v in col) for col in cols]
    lines = []
    header = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            " | ".join(str(v).ljust(w) for v, w in zip(row, widths))
        )
    return "\n".join(lines)


def sparkline(values: Sequence[float], *, width: int = 60) -> str:
    """One-line density plot of a series (NaNs render as spaces)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return ""
    if arr.size > width:
        # bucket means to fit the width
        edges = np.linspace(0, arr.size, width + 1).astype(int)
        arr = np.array([
            np.nanmean(arr[a:b]) if b > a else np.nan
            for a, b in zip(edges[:-1], edges[1:])
        ])
    finite = arr[np.isfinite(arr)]
    if finite.size == 0:
        return " " * arr.size
    lo, hi = float(finite.min()), float(finite.max())
    span = hi - lo if hi > lo else 1.0
    out = []
    for v in arr:
        if not np.isfinite(v):
            out.append(" ")
        else:
            idx = int((v - lo) / span * (len(_BARS) - 1))
            out.append(_BARS[idx])
    return "".join(out)


def render_series(
    name: str, xs: Sequence[float], ys: Sequence[float], *, width: int = 60,
    fmt: str = "%.3g",
) -> str:
    """A labelled sparkline with min/max annotations."""
    arr = np.asarray(list(ys), dtype=float)
    finite = arr[np.isfinite(arr)]
    lo = fmt % finite.min() if finite.size else "nan"
    hi = fmt % finite.max() if finite.size else "nan"
    xs = list(xs)
    xr = f"x: {xs[0]:.0f}..{xs[-1]:.0f}" if xs else "x: -"
    return f"{name:28s} [{sparkline(arr, width=width)}] min={lo} max={hi} ({xr})"


def render_cdf_table(
    name: str, grid: Sequence[float], cdf_values: Sequence[float]
) -> str:
    """Render a CDF sampled on a grid as a table."""
    rows = [
        (f"{g:g}", f"{v:.3f}") for g, v in zip(grid, cdf_values)
    ]
    return f"{name}\n" + render_table(("x", "P(X<=x)"), rows)


@dataclass
class FigureResult:
    """The output of one figure-regeneration run."""

    figure_id: str
    title: str
    # free-form key metrics for EXPERIMENTS.md and assertions in benches
    metrics: Dict[str, float] = field(default_factory=dict)
    # pre-rendered blocks (tables/series) composing the figure body
    blocks: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_block(self, block: str) -> None:
        """Append a pre-rendered block to the figure body."""
        self.blocks.append(block)

    def note(self, text: str) -> None:
        """Attach a free-form note."""
        self.notes.append(text)

    def render(self) -> str:
        """Render the whole figure as text."""
        lines = [f"=== {self.figure_id}: {self.title} ==="]
        for block in self.blocks:
            lines.append(block)
            lines.append("")
        if self.metrics:
            lines.append("key metrics:")
            for k, v in self.metrics.items():
                lines.append(f"  {k} = {v:.4g}")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """Machine-readable form (for JSON dumps / plotting pipelines)."""
        return {
            "figure_id": self.figure_id,
            "title": self.title,
            "metrics": dict(self.metrics),
            "notes": list(self.notes),
        }

    def to_json(self, indent: int = 2) -> str:
        """JSON dump of the figure's metrics (not the rendered blocks)."""
        import json

        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def metrics_csv(self) -> str:
        """``metric,value`` CSV of the key metrics, one row per metric."""
        lines = ["metric,value"]
        for k, v in self.metrics.items():
            lines.append(f"{k},{v!r}")
        return "\n".join(lines) + "\n"
