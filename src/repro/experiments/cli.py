"""Command-line interface: regenerate paper artefacts from the shell.

Usage::

    python -m repro list                 # what can be regenerated
    python -m repro table1
    python -m repro fig3 [--seed 7]
    python -m repro fig9 --seed 1
    python -m repro all                  # everything (several minutes)
    python -m repro ablations            # design-choice ablations

Each command runs the corresponding experiment at the default benchmark
scale and prints the rendered tables/series.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from repro.experiments import (
    fig3_user_types_and_contribution,
    fig4_overlay_structure,
    fig5_user_evolution,
    fig6_join_time_cdfs,
    fig7_ready_time_by_period,
    fig8_continuity_by_type,
    fig9_scalability,
    fig10_sessions_and_retries,
    table1,
    validate_convergence_model,
    validate_dynamics_equations,
)
from repro.experiments.ablations import (
    ablate_cooldown,
    ablate_delivery_mode,
    ablate_mcache_policy,
    ablate_offset_mode,
    ablate_parent_choice,
    ablate_substreams,
)

__all__ = ["main", "EXPERIMENTS"]

EXPERIMENTS: Dict[str, Callable] = {
    "table1": lambda seed: table1(),
    "fig3": lambda seed: fig3_user_types_and_contribution(seed=seed),
    "fig4": lambda seed: fig4_overlay_structure(seed=seed),
    "fig5": lambda seed: fig5_user_evolution(seed=seed),
    "fig6": lambda seed: fig6_join_time_cdfs(seed=seed),
    "fig7": lambda seed: fig7_ready_time_by_period(seed=seed),
    "fig8": lambda seed: fig8_continuity_by_type(seed=seed),
    "fig9": lambda seed: fig9_scalability(seed=seed),
    "fig10": lambda seed: fig10_sessions_and_retries(seed=seed),
    "model": lambda seed: validate_dynamics_equations(seed=seed),
    "convergence": lambda seed: validate_convergence_model(seed=seed),
}

ABLATIONS: Dict[str, Callable] = {
    "offset": ablate_offset_mode,
    "parent-choice": ablate_parent_choice,
    "mcache": ablate_mcache_policy,
    "cooldown": ablate_cooldown,
    "substreams": ablate_substreams,
    "delivery-mode": ablate_delivery_mode,
}


def _run_one(name: str, fn: Callable, seed: int) -> None:
    t0 = time.perf_counter()
    result = fn(seed)
    elapsed = time.perf_counter() - t0
    print(result.render())
    print(f"[{name}: {elapsed:.1f} s]")
    print()


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate tables/figures of the Coolstreaming "
                    "measurement study (ICPP 2007).",
    )
    parser.add_argument(
        "experiment",
        help="one of: %s, ablations, all, list" % ", ".join(EXPERIMENTS),
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="root random seed (default 0)")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in EXPERIMENTS:
            print(name)
        print("ablations")
        print("all")
        return 0

    if args.experiment == "all":
        for name, fn in EXPERIMENTS.items():
            _run_one(name, fn, args.seed)
        return 0

    if args.experiment == "ablations":
        for name, fn in ABLATIONS.items():
            _run_one(name, lambda seed, f=fn: f(seed=seed), args.seed)
        return 0

    fn = EXPERIMENTS.get(args.experiment)
    if fn is None:
        print(f"unknown experiment {args.experiment!r}; "
              f"try 'python -m repro list'", file=sys.stderr)
        return 2
    _run_one(args.experiment, fn, args.seed)
    return 0
