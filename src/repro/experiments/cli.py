"""Command-line interface: regenerate paper artefacts from the shell.

Usage::

    python -m repro list                 # what can be regenerated
    python -m repro table1
    python -m repro fig3 [--seed 7]
    python -m repro fig9 --seed 1 --jobs 4    # parallel sweep points
    python -m repro all                  # everything (several minutes)
    python -m repro ablations            # design-choice ablations
    python -m repro fig5 --engine detailed    # override the engine
    python -m repro parity --scenario steady_audience   # cross-engine check
    python -m repro run --engine ode          # 1M users in seconds (repro.model.meanfield)
    python -m repro campaign run spec.json --jobs 4   # see repro.campaign
    python -m repro check src/                # determinism lint (repro.check)
    python -m repro profile fig3              # cProfile hot spots + Chrome trace
    python -m repro watch m.jsonl             # live view of a metrics feed

Each command runs the corresponding experiment at the default benchmark
scale and prints the rendered tables/series.

``--engine NAME`` overrides the engine an experiment runs on; the
choices come from the backend registry
(:func:`repro.runtime.backends.available_engines`: the event-driven
``detailed`` engine, the fluid ``fast`` engine, and the localhost-socket
``net`` deployment).  Each experiment has a sensible default: protocol
figures use the event-driven engine, population-scale figures the fluid
one.  Experiments that are engine-specific (table1, model, convergence)
ignore the flag.

Observability (any subcommand)::

    python -m repro fig6 --metrics-out m.jsonl --trace-out t.json --progress

``--metrics-out`` streams registry snapshots as JSONL and writes a run
manifest sidecar (``m.manifest.json``: seed, config hash, git rev, wall
time, peak RSS); ``--trace-out`` writes Chrome ``trace_event`` JSON
loadable in Perfetto; ``--progress`` prints a heartbeat line to stderr.

``--rng-sanitize {strict,warn}`` turns on the seed-discipline sanitizer
(:mod:`repro.sim.rng`): named streams count their draws and undeclared
streams / out-of-owner draws surface as obs counters (strict mode
raises).  Equivalent to setting ``REPRO_RNG_SANITIZE``.

``--log-spill DIR`` makes every telemetry :class:`~repro.telemetry.server.
LogServer` spill its log lines to gzip-compressed chunks under ``DIR``
instead of keeping them in RAM (:mod:`repro.telemetry.sink`), bounding
log-side memory at production volumes.  Spilling only relocates storage;
figures and tables are byte-identical, so the flag never enters campaign
run keys.  Equivalent to setting ``REPRO_LOG_SPILL``.

Exit codes: 0 success, 1 experiment or backend-startup error (one-line
message on stderr), 2 usage error (unknown experiment name), 130
interrupted.  ``run``/``parity``/``campaign run`` share this convention.
"""

from __future__ import annotations

import argparse
import contextlib
import inspect
import sys
import time
from typing import Callable, Dict, Optional

import repro.obs as obs
from repro.experiments import (
    fig3_user_types_and_contribution,
    fig4_overlay_structure,
    fig5_user_evolution,
    fig6_join_time_cdfs,
    fig7_ready_time_by_period,
    fig8_continuity_by_type,
    fig9_scalability,
    fig10_sessions_and_retries,
    table1,
    validate_convergence_model,
    validate_dynamics_equations,
)
from repro.experiments.ablations import (
    ablate_cooldown,
    ablate_delivery_mode,
    ablate_mcache_policy,
    ablate_offset_mode,
    ablate_parent_choice,
    ablate_substreams,
)
from repro.runtime.backends import BackendStartupError, available_engines

__all__ = ["main", "EXPERIMENTS"]

def _engine_kw(engine: Optional[str]) -> Dict[str, str]:
    """``{"engine": ...}`` when an override was given, else ``{}`` so the
    experiment's own per-figure default applies."""
    return {} if engine is None else {"engine": engine}


EXPERIMENTS: Dict[str, Callable] = {
    "table1": lambda seed, jobs=1: table1(),
    "fig3": lambda seed, jobs=1, engine=None: fig3_user_types_and_contribution(
        seed=seed, **_engine_kw(engine)),
    "fig4": lambda seed, jobs=1: fig4_overlay_structure(seed=seed),
    "fig5": lambda seed, jobs=1, engine=None: fig5_user_evolution(
        seed=seed, **_engine_kw(engine)),
    "fig6": lambda seed, jobs=1, engine=None: fig6_join_time_cdfs(
        seed=seed, **_engine_kw(engine)),
    "fig7": lambda seed, jobs=1, engine=None: fig7_ready_time_by_period(
        seed=seed, **_engine_kw(engine)),
    "fig8": lambda seed, jobs=1, engine=None: fig8_continuity_by_type(
        seed=seed, **_engine_kw(engine)),
    "fig9": lambda seed, jobs=1, engine=None: fig9_scalability(
        seed=seed, jobs=jobs, **_engine_kw(engine)),
    "fig10": lambda seed, jobs=1, engine=None: fig10_sessions_and_retries(
        seed=seed, **_engine_kw(engine)),
    "model": lambda seed, jobs=1: validate_dynamics_equations(seed=seed),
    "convergence": lambda seed, jobs=1: validate_convergence_model(seed=seed),
}

ABLATIONS: Dict[str, Callable] = {
    "offset": ablate_offset_mode,
    "parent-choice": ablate_parent_choice,
    "mcache": ablate_mcache_policy,
    "cooldown": ablate_cooldown,
    "substreams": ablate_substreams,
    "delivery-mode": ablate_delivery_mode,
}


def _run_one(name: str, fn: Callable, seed: int, *, jobs: int = 1,
             engine: Optional[str] = None, quiet: bool = False) -> None:
    t0 = time.perf_counter()  # repro: noqa[DET002] CLI elapsed-time display only
    # registry entries take (seed, jobs[, engine]); tolerate externally
    # registered seed-only callables
    try:
        params = inspect.signature(fn).parameters
    except (TypeError, ValueError):  # pragma: no cover - builtins etc.
        params = {}
    kwargs = {}
    if "jobs" in params:
        kwargs["jobs"] = jobs
    if "engine" in params and engine is not None:
        kwargs["engine"] = engine
    result = fn(seed, **kwargs) if params else fn(seed)
    elapsed = time.perf_counter() - t0  # repro: noqa[DET002] CLI elapsed-time display only
    if not quiet:
        print(result.render())
        print(f"[{name}: {elapsed:.1f} s]")
        print()


def _obs_session(args, scenario: str):
    """The observability session for this invocation (a null context when
    no obs flag was given)."""
    if not (args.metrics_out or args.trace_out or args.progress):
        return contextlib.nullcontext()
    return obs.session(
        metrics_path=args.metrics_out,
        trace_path=args.trace_out,
        progress=args.progress,
        scenario=scenario,
        seed=args.seed,
    )


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "campaign":
        # the campaign orchestrator has its own sub-CLI (run/status/clean)
        from repro.campaign.cli import main as campaign_main

        return campaign_main(argv[1:])
    if argv and argv[0] == "parity":
        # the cross-engine parity harness has its own flags
        from repro.runtime.parity import main as parity_main

        return parity_main(argv[1:])
    if argv and argv[0] == "run":
        # raw single-scenario runner (own flags: --users/--horizon/...)
        from repro.experiments.run_cli import main as run_main

        return run_main(argv[1:])
    if argv and argv[0] == "check":
        # the determinism lint has its own flags (paths, --format, ...)
        from repro.check.cli import main as check_main

        return check_main(argv[1:])
    if argv and argv[0] == "profile":
        # cProfile hot-spot runner (own flags: --top/--sort/--trace-out)
        from repro.experiments.profile import main as profile_main

        return profile_main(argv[1:])
    if argv and argv[0] == "watch":
        # live metrics-feed viewer (own flags: --once/--interval/--timeout)
        from repro.obs.watch import main as watch_main

        return watch_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate tables/figures of the Coolstreaming "
                    "measurement study (ICPP 2007).",
    )
    parser.add_argument(
        "experiment",
        help="one of: %s, ablations, all, list" % ", ".join(EXPERIMENTS),
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="root random seed (default 0)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for sweep experiments "
                             "(fig9; default 1 = in-process)")
    parser.add_argument("--engine", choices=available_engines(),
                        default=None,
                        help="override the simulation engine (default: "
                             "each experiment's documented default)")
    parser.add_argument("--metrics-out", metavar="PATH", default=None,
                        help="write a JSONL metrics time series (plus a "
                             "*.manifest.json run manifest sidecar)")
    parser.add_argument("--trace-out", metavar="PATH", default=None,
                        help="write a Chrome trace_event JSON file "
                             "(open in chrome://tracing or Perfetto)")
    parser.add_argument("--progress", action="store_true",
                        help="print a periodic heartbeat line to stderr")
    parser.add_argument("--rng-sanitize", choices=("strict", "warn"),
                        default=None, metavar="MODE",
                        help="enable the RNG seed-discipline sanitizer "
                             "(strict raises on violations, warn records "
                             "them; equivalent to REPRO_RNG_SANITIZE)")
    parser.add_argument("--log-spill", metavar="DIR", default=None,
                        help="spill telemetry logs to gzip chunks under DIR "
                             "instead of holding them in memory (equivalent "
                             "to REPRO_LOG_SPILL; never affects results)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress rendered tables/series on stdout")
    args = parser.parse_args(argv)

    if args.rng_sanitize:
        # via the environment so forked campaign/sweep workers inherit it
        import os

        os.environ["REPRO_RNG_SANITIZE"] = args.rng_sanitize
    if args.log_spill:
        # same environment route: sweep workers inherit the spill root;
        # spilling only moves log storage, so it never enters a run key
        import os

        from repro.telemetry.sink import SPILL_ENV_VAR

        os.environ[SPILL_ENV_VAR] = args.log_spill

    name = args.experiment
    if name == "list":
        for key in EXPERIMENTS:
            print(key)
        print("ablations")
        print("all")
        print("campaign")
        print("parity")
        print("check")
        print("profile")
        print("watch")
        return 0

    if name not in EXPERIMENTS and name not in ("all", "ablations"):
        print(f"error: unknown experiment {name!r}; "
              f"try 'python -m repro list'", file=sys.stderr)
        return 2

    try:
        with _obs_session(args, scenario=name):
            if name == "all":
                for key, fn in EXPERIMENTS.items():
                    _run_one(key, fn, args.seed, jobs=args.jobs,
                             engine=args.engine, quiet=args.quiet)
            elif name == "ablations":
                for key, fn in ABLATIONS.items():
                    _run_one(
                        key,
                        lambda seed, jobs=1, engine=None, f=fn:
                            f(seed=seed, **_engine_kw(engine)),
                        args.seed, engine=args.engine, quiet=args.quiet,
                    )
            else:
                _run_one(name, EXPERIMENTS[name], args.seed, jobs=args.jobs,
                         engine=args.engine, quiet=args.quiet)
    except KeyboardInterrupt:
        print("error: interrupted", file=sys.stderr)
        return 130
    except BackendStartupError as exc:
        print(f"error: backend startup: {exc}", file=sys.stderr)
        return 1
    except Exception as exc:
        print(f"error: {name}: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    return 0
