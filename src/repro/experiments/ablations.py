"""Ablations of the design choices DESIGN.md section 5 calls out.

Each ablation runs matched scenarios (identical seeds, workloads and
capacity draws -- the RngHub stream isolation guarantees this) with one
protocol knob flipped, and reports the metrics that knob is supposed to
move:

* ``initial_offset_mode``: the paper's ``m - T_p`` rule vs starting at the
  newest block (risking underflow) vs the oldest (risking eviction and a
  huge startup delay) -- Section IV.A's argument.
* ``parent_choice``: random among qualified (deployed) vs most-advanced.
* ``mcache_replacement``: random (deployed; flash-crowd pathology) vs
  age-biased (the paper's suggested improvement, Section V.C).
* ``cooldown_enabled``: the ``T_a`` damper on adaptation storms.
* ``n_substreams``: sub-stream diversity (Section VI claim 3).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis import Cdf, SessionTable
from repro.analysis.continuity import mean_continuity
from repro.core.config import SystemConfig
from repro.experiments.render import FigureResult, render_table
from repro.runtime import run_scenario
from repro.workload.scenarios import flash_crowd_storm, steady_audience

__all__ = [
    "run_variant",
    "ablate_offset_mode",
    "ablate_parent_choice",
    "ablate_mcache_policy",
    "ablate_cooldown",
    "ablate_substreams",
    "ablate_delivery_mode",
]


def run_variant(
    cfg: SystemConfig,
    *,
    seed: int = 0,
    burst_users_per_s: float = 1.2,
    horizon_s: float = 700.0,
    steady: bool = False,
    engine: str = "detailed",
) -> Dict[str, float]:
    """Run one scenario under ``cfg`` and extract the comparison metrics.

    Ablations default to the detailed engine because most ablated knobs
    (mCache policy, delivery mode, offset rule) only exist there; the
    fluid engine is still available for the workload-level ones.
    """
    if steady:
        scenario = steady_audience(rate_per_s=burst_users_per_s,
                                   horizon_s=horizon_s, n_servers=2, cfg=cfg)
    else:
        scenario = flash_crowd_storm(
            burst_users_per_s=burst_users_per_s, horizon_s=horizon_s,
            n_servers=2, cfg=cfg,
        )
    res = run_scenario(scenario, seed=seed, engine=engine)
    engine_metrics = res.metrics()
    table = SessionTable.from_log(res.log)
    ready = table.ready_delays()
    out: Dict[str, float] = {
        "sessions": float(len(table)),
        "success_fraction": engine_metrics["success_fraction"],
        "continuity": mean_continuity(res.log, after=0.3 * horizon_s),
        "adaptations": engine_metrics["adaptations"],
    }
    if ready:
        cdf = Cdf.from_samples(ready)
        out["ready_median_s"] = cdf.median
        out["ready_p90_s"] = cdf.quantile(0.9)
    else:
        out["ready_median_s"] = float("nan")
        out["ready_p90_s"] = float("nan")
    return out


def _compare(
    figure_id: str,
    title: str,
    variants: Dict[str, SystemConfig],
    *,
    seed: int = 0,
    metric_keys: Sequence[str] = (
        "ready_median_s", "ready_p90_s", "success_fraction", "continuity",
    ),
    **run_kwargs,
) -> FigureResult:
    result = FigureResult(figure_id, title)
    rows: List[tuple] = []
    per_variant: Dict[str, Dict[str, float]] = {}
    for name, cfg in variants.items():
        metrics = run_variant(cfg, seed=seed, **run_kwargs)
        per_variant[name] = metrics
        rows.append((name,) + tuple(
            f"{metrics[k]:.3f}" for k in metric_keys
        ))
        for k in metric_keys:
            result.metrics[f"{name}.{k}"] = metrics[k]
    result.add_block(render_table(("variant",) + tuple(metric_keys), rows))
    return result


def ablate_offset_mode(*, seed: int = 0, engine: str = "detailed") -> FigureResult:
    """Initial playout offset: m - T_p (paper) vs latest vs oldest."""
    base = SystemConfig(n_servers=2)
    return _compare(
        "Ablation A1", "Initial offset rule (Section IV.A)",
        {
            "tp (paper)": base.with_overrides(initial_offset_mode="tp"),
            "latest": base.with_overrides(initial_offset_mode="latest"),
            "oldest": base.with_overrides(initial_offset_mode="oldest"),
        },
        seed=seed,
        engine=engine,
    )


def ablate_parent_choice(*, seed: int = 0, engine: str = "detailed") -> FigureResult:
    """Random qualified parent (deployed) vs most-advanced-buffer parent."""
    base = SystemConfig(n_servers=2)
    return _compare(
        "Ablation A2", "Parent selection among qualified partners",
        {
            "random (paper)": base.with_overrides(parent_choice="random"),
            "best": base.with_overrides(parent_choice="best"),
        },
        seed=seed,
        engine=engine,
    )


def ablate_mcache_policy(*, seed: int = 0, engine: str = "detailed") -> FigureResult:
    """Random mCache replacement (deployed) vs age-biased (suggested)."""
    base = SystemConfig(n_servers=2)
    return _compare(
        "Ablation A3", "mCache replacement under a flash crowd (Section V.C)",
        {
            "random (paper)": base.with_overrides(mcache_replacement="random"),
            "age (suggested)": base.with_overrides(mcache_replacement="age"),
        },
        seed=seed,
        engine=engine,
        burst_users_per_s=1.6,
    )


def ablate_cooldown(*, seed: int = 0, engine: str = "detailed") -> FigureResult:
    """The T_a cool-down damper on adaptation chain reactions."""
    base = SystemConfig(n_servers=2)
    return _compare(
        "Ablation A4", "Adaptation cool-down T_a (Section IV.B)",
        {
            "cooldown on (paper)": base.with_overrides(cooldown_enabled=True),
            "cooldown off": base.with_overrides(cooldown_enabled=False),
        },
        seed=seed,
        engine=engine,
        metric_keys=(
            "ready_median_s", "success_fraction", "continuity", "adaptations",
        ),
    )


def ablate_delivery_mode(*, seed: int = 0, engine: str = "detailed") -> FigureResult:
    """Push (the measured system) vs pull (the DONet [3] baseline).

    The paper's lineage moved from per-block pulling to sub-stream
    pushing; this ablation quantifies the trade: push should win on
    steady-state smoothness and control-message economy, pull pays a
    per-round request latency on every scheduling decision.
    """
    base = SystemConfig(n_servers=2)
    result = _compare(
        "Ablation A6", "Delivery discipline: sub-stream push vs block pull",
        {
            "push (paper)": base.with_overrides(delivery_mode="push"),
            "pull (DONet)": base.with_overrides(delivery_mode="pull"),
        },
        seed=seed,
        engine=engine,
    )
    # add the control-overhead comparison: pull requests vs subscriptions
    from repro.workload.scenarios import flash_crowd_storm

    for name, mode in (("push (paper)", "push"), ("pull (DONet)", "pull")):
        scenario = flash_crowd_storm(
            burst_users_per_s=1.2, horizon_s=700.0, n_servers=2,
            cfg=base.with_overrides(delivery_mode=mode),
        )
        system, _pop = scenario.run(seed=seed)
        if mode == "pull":
            msgs = sum(
                p.pull_req.requests_sent
                for p in system.peers(alive_only=False)
                if p.pull_req is not None
            )
        else:
            msgs = sum(
                p.adaptation_count + sum(1 for x in p.parents if x is not None)
                for p in system.peers(alive_only=False)
            )
        result.metrics[f"{name}.data_control_msgs"] = float(msgs)
    return result


def ablate_substreams(*, seed: int = 0, engine: str = "detailed",
                      k_values: Sequence[int] = (1, 2, 4, 8)) -> FigureResult:
    """Sub-stream count K: delivery diversity vs per-stream granularity."""
    base = SystemConfig(n_servers=2)
    return _compare(
        "Ablation A5", "Number of sub-streams K (Section VI claim 3)",
        {f"K={k}": base.with_overrides(n_substreams=k) for k in k_values},
        seed=seed,
        engine=engine,
    )
