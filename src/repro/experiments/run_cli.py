"""``python -m repro run``: one scenario, one engine, straight numbers.

The figure commands wrap scenarios in paper-shaped post-processing; this
subcommand is the raw entry point -- build an audience of ``--users``
over ``--horizon`` seconds (or take a named preset), run it on
``--engine``, and print wall time plus the engine's snapshot and the
paper-level metrics from its log.  Its reason to exist is the scale
ceiling: with ``--engine ode`` the mean-field backend turns a 1M-user
Fig. 9 point from an overnight job into seconds::

    python -m repro run --engine ode                  # 1M users, 300 s
    python -m repro run --engine fast --users 50000
    python -m repro run --scenario flash_crowd_storm --engine fast

Exit codes follow the repo convention: 0 success, 1 engine/backend
error, 2 usage error, 130 interrupted.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional

from repro.runtime.backends import BackendStartupError, available_engines

__all__ = ["main"]


def _build_scenario(args):
    from repro.runtime.parity import _preset_scenarios
    from repro.workload.scenarios import steady_audience

    if args.scenario is not None:
        presets = _preset_scenarios()
        if args.scenario not in presets:
            raise SystemExit(2)
        return presets[args.scenario]()
    rate = args.users / args.horizon
    return steady_audience(
        rate_per_s=rate, horizon_s=args.horizon, n_servers=args.servers)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro run",
        description="Run one scenario on one engine and print the "
                    "population metrics (defaults sized for the 1M-user "
                    "mean-field demonstration).",
    )
    parser.add_argument("--engine", choices=available_engines(),
                        default="ode",
                        help="simulation engine (default ode)")
    parser.add_argument("--users", type=int, default=1_000_000,
                        help="expected audience size for the synthetic "
                             "steady scenario (default 1000000)")
    parser.add_argument("--horizon", type=float, default=300.0,
                        help="virtual horizon in seconds (default 300)")
    parser.add_argument("--servers", type=int, default=24,
                        help="dedicated servers (default 24, the "
                             "deployment's count)")
    parser.add_argument("--scenario", default=None,
                        help="named preset instead of the synthetic "
                             "steady audience (one of the parity presets)")
    parser.add_argument("--seed", type=int, default=0,
                        help="root random seed (default 0)")
    args = parser.parse_args(argv)

    if args.users < 1 or args.horizon <= 0 or args.servers < 0:
        parser.error("--users/--horizon/--servers out of range")

    from repro.runtime.driver import run_scenario
    from repro.runtime.parity import paper_metrics

    try:
        scenario = _build_scenario(args)
    except SystemExit:
        print(f"run: unknown scenario {args.scenario!r}", file=sys.stderr)
        return 2

    t0 = time.perf_counter()  # repro: noqa[DET002] CLI elapsed-time display only
    try:
        result = run_scenario(scenario, seed=args.seed, engine=args.engine)
    except BackendStartupError as exc:
        print(f"run: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print("run: interrupted", file=sys.stderr)
        return 130
    wall = time.perf_counter() - t0  # repro: noqa[DET002] CLI elapsed-time display only

    print(f"run: {scenario.name} engine={args.engine} seed={args.seed} "
          f"horizon={scenario.horizon_s:.0f}s wall={wall:.2f}s")
    snap = result.metrics()
    print("engine snapshot:")
    for key in sorted(snap):
        print(f"  {key:<24}{snap[key]:>14.4f}")
    pm = paper_metrics(result.log, scenario.horizon_s)
    print("paper metrics (from telemetry log):")
    for key in sorted(pm):
        print(f"  {key:<24}{pm[key]:>14.4f}")
    panel = snap.get("panel_weight")
    if panel is not None and panel > 1.0:
        print(f"  (log is a {snap['panel_users']:.0f}-user characteristic "
              f"panel, weight {panel:.1f}; snapshot numbers are "
              f"population-exact)")
    return 0
