"""``python -m repro profile`` -- run an experiment under cProfile.

Perf work on this codebase starts from data, not guesses: this subcommand
runs any registered experiment under :mod:`cProfile`, prints a per-callsite
hot-spot table (sorted by internal time by default), and writes a Chrome
``trace_event`` file through the :mod:`repro.obs` trace exporter so the
same run can be opened in ``chrome://tracing`` / Perfetto.

Usage::

    python -m repro profile fig3
    python -m repro profile fig6 --seed 3 --top 40 --sort cumtime
    python -m repro profile fig5 --trace-out fig5.trace.json --stats-out p.pstats
    python -m repro profile fig9 --engine fast     # + per-step-phase table

``--engine`` overrides the experiment's engine, exactly as for the plain
subcommands.  For the vectorized engines (``fast``, ``ode``) it also
enables their built-in phase stopwatch (``REPRO_PROFILE_PHASES``) and
prints a per-step-phase wall-time table after the hot spots -- the
engine-semantics view (arrivals/join/rates/heads/...) that cProfile's
per-function ranking cannot give, and the tool that explains
non-monotonic peer-steps/s in BENCH_scale.json.

The hot-spot table reports, per call site (``file:line(function)``):
call count, total internal time, per-call internal time, cumulative time
and the share of overall internal time.  ``--stats-out`` additionally
dumps the raw :mod:`pstats` data for ``snakeviz``-style tooling.

Note that cProfile instruments every Python call, which inflates
call-heavy code paths relative to real time; treat the table as a ranking,
not a stopwatch.  The Chrome trace is recorded by the engine's observed
loop and reflects real (uninstrumented-loop + profiler) wall time per
event callback.
"""

from __future__ import annotations

import argparse
import cProfile
import os
import pstats
import sys
from typing import Dict, List, Optional

import repro.obs as obs

__all__ = ["main", "hotspot_table", "phase_table"]

#: engines with a built-in step-phase stopwatch (module with
#: PHASE_NAMES/PHASE_TOTALS/reset_phase_totals)
_PHASE_MODULES = {
    "fast": "repro.fastsim.engine",
    "ode": "repro.model.meanfield",
}


def phase_table(totals: Dict[str, float], order: tuple) -> str:
    """Format a per-step-phase wall-time breakdown."""
    total = sum(totals.values())
    lines = [f"{'phase':<14}{'seconds':>10}  {'share':>6}"]
    for name in order:
        sec = totals.get(name, 0.0)
        share = 100.0 * sec / total if total else 0.0
        lines.append(f"{name:<14}{sec:>10.3f}  {share:>5.1f}%")
    lines.append(f"{'total':<14}{total:>10.3f}")
    return "\n".join(lines)

_SORTS = ("tottime", "cumtime", "ncalls")


def hotspot_table(stats: pstats.Stats, *, top: int = 25,
                  sort: str = "tottime") -> str:
    """Format profile data as a per-callsite hot-spot table."""
    if sort not in _SORTS:
        raise ValueError(f"sort must be one of {_SORTS} (got {sort!r})")
    rows = []
    total_tt = 0.0
    for (filename, line, func), (cc, nc, tt, ct, _callers) in stats.stats.items():
        total_tt += tt
        short = filename
        for marker in ("/site-packages/", "/src/"):
            pos = filename.rfind(marker)
            if pos >= 0:
                short = filename[pos + len(marker):]
                break
        rows.append((nc, tt, ct, f"{short}:{line}({func})"))
    key = {"tottime": lambda r: r[1], "cumtime": lambda r: r[2],
           "ncalls": lambda r: r[0]}[sort]
    rows.sort(key=key, reverse=True)
    lines = [
        f"{'ncalls':>10}  {'tottime':>9}  {'percall':>9}  {'cumtime':>9}"
        f"  {'tot%':>5}  callsite",
    ]
    for nc, tt, ct, site in rows[:top]:
        percall = tt / nc if nc else 0.0
        share = 100.0 * tt / total_tt if total_tt else 0.0
        lines.append(
            f"{nc:>10d}  {tt:>9.3f}  {percall:>9.6f}  {ct:>9.3f}"
            f"  {share:>4.1f}%  {site}"
        )
    lines.append(f"-- {len(rows)} call sites, "
                 f"{total_tt:.3f} s total internal time --")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro profile``."""
    # late import: repro.experiments.cli imports this module's caller chain
    from repro.experiments.cli import EXPERIMENTS, _run_one

    parser = argparse.ArgumentParser(
        prog="python -m repro profile",
        description="Run an experiment under cProfile: print a hot-spot "
                    "table and write a Chrome trace (repro.obs exporter).",
    )
    parser.add_argument("experiment", choices=sorted(EXPERIMENTS),
                        help="experiment to profile")
    parser.add_argument("--seed", type=int, default=0,
                        help="root random seed (default 0)")
    parser.add_argument("--engine", default=None,
                        help="override the experiment's engine; for the "
                             "vectorized engines (fast, ode) also print a "
                             "per-step-phase timing breakdown")
    parser.add_argument("--top", type=int, default=25,
                        help="rows in the hot-spot table (default 25)")
    parser.add_argument("--sort", choices=_SORTS, default="tottime",
                        help="hot-spot table sort key (default tottime)")
    parser.add_argument("--trace-out", metavar="PATH", default=None,
                        help="Chrome trace output path (default "
                             "profile_<experiment>.trace.json)")
    parser.add_argument("--stats-out", metavar="PATH", default=None,
                        help="also dump raw pstats data to PATH")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the experiment's own rendered output")
    args = parser.parse_args(argv)

    trace_path = args.trace_out or f"profile_{args.experiment}.trace.json"
    fn = EXPERIMENTS[args.experiment]
    profiler = cProfile.Profile()
    phase_mod = None
    if args.engine in _PHASE_MODULES:
        import importlib

        from repro.fastsim.engine import PHASE_TIMING_ENV

        phase_mod = importlib.import_module(_PHASE_MODULES[args.engine])
        os.environ[PHASE_TIMING_ENV] = "1"
        phase_mod.reset_phase_totals()
    try:
        with obs.session(trace_path=trace_path, scenario=args.experiment,
                         seed=args.seed):
            profiler.enable()
            try:
                _run_one(args.experiment, fn, args.seed,
                         engine=args.engine, quiet=True)
            finally:
                profiler.disable()
    except KeyboardInterrupt:
        print("error: interrupted", file=sys.stderr)
        return 130
    except Exception as exc:
        print(f"error: {args.experiment}: {type(exc).__name__}: {exc}",
              file=sys.stderr)
        return 1

    stats = pstats.Stats(profiler)
    if args.stats_out:
        stats.dump_stats(args.stats_out)
    if not args.quiet:
        print(f"== hot spots: {args.experiment} (seed {args.seed}, "
              f"sorted by {args.sort}) ==")
    print(hotspot_table(stats, top=args.top, sort=args.sort))
    if phase_mod is not None:
        print()
        print(f"== step phases: engine {args.engine} "
              f"(real wall time inside step(), cProfile overhead "
              f"included) ==")
        print(phase_table(phase_mod.PHASE_TOTALS, phase_mod.PHASE_NAMES))
    print(f"[chrome trace written to {trace_path}]")
    return 0
