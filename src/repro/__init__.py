"""repro -- a reproduction of "A Measurement of a Large-scale Peer-to-Peer
Live Video Streaming System" (Xie, Keung, Li; ICPP 2007).

The library implements the Coolstreaming mesh-pull live streaming protocol
(membership gossip, partnerships, sub-stream buffer maps, peer adaptation),
the network and workload substrates needed to recreate the measured
2006-09-27 broadcast synthetically, the paper's internal logging pipeline,
the analytical model of Section IV, and an experiment harness regenerating
every figure of the evaluation.

Quick start::

    from repro import CoolstreamingSystem, SystemConfig

    system = CoolstreamingSystem(SystemConfig(n_servers=2), seed=7)
    for user in range(20):
        system.engine.schedule(user * 1.0, lambda u=user: system.spawn_peer(user_id=u))
    system.run(until=300.0)
    print(system.summary())

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.core.config import SystemConfig
from repro.core.system import CoolstreamingSystem

__version__ = "1.0.0"

__all__ = ["CoolstreamingSystem", "SystemConfig", "__version__"]
