"""Topology-convergence model ("a random partnership selection has the
potential to scale", contributions item 2).

A peer's parent, at any instant, is either a *stable* contributor-class
node (direct/UPnP/server: ample upload, high degree) or an *unstable*
NAT/firewall node.  Section V.B argues: a peer under an unstable parent
suffers competition, loses, and re-selects -- randomly, so with
probability roughly equal to the contributor fraction of candidate
parents it lands under a stable one, where it then *stays* (children of
contributor parents rarely lose).

That is a two-state absorbing-ish Markov chain over adaptation rounds.
This module solves it exactly and also gives the transient, so the
simulator's measured "fraction of peers under contributor parents over
time" (Fig. 4's structure emerging) can be compared against the model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ConvergenceModel"]


@dataclass(frozen=True)
class ConvergenceModel:
    """Two-state parent-class Markov chain.

    Parameters
    ----------
    p_stable_pick:
        Probability that a (re-)selection lands on a contributor-class
        parent.  Under uniform random choice over qualified partners this
        is the contributor fraction of the candidate pool -- *larger* than
        the population contributor fraction, because NAT-to-NAT
        partnerships rarely form.
    p_lose_stable:
        Per-round probability that a child of a stable parent is forced to
        re-select (small: Eq. 6 with large ``D_p``, plus churn).
    p_lose_unstable:
        Per-round probability that a child of an unstable parent is forced
        to re-select (large: Eq. 6 with small ``D_p``).
    """

    p_stable_pick: float
    p_lose_stable: float
    p_lose_unstable: float

    def __post_init__(self) -> None:
        for name in ("p_stable_pick", "p_lose_stable", "p_lose_unstable"):
            v = getattr(self, name)
            if not (0.0 <= v <= 1.0):
                raise ValueError(f"{name} must be a probability (got {v})")

    # --- chain mechanics -----------------------------------------------------
    def transition_matrix(self) -> np.ndarray:
        """Row-stochastic matrix over states [stable, unstable].

        A child re-selects with its state's loss probability and then
        lands stable with ``p_stable_pick``.
        """
        s, u = self.p_lose_stable, self.p_lose_unstable
        q = self.p_stable_pick
        return np.array([
            [1.0 - s + s * q, s * (1.0 - q)],
            [u * q, 1.0 - u * q],
        ])

    def stationary_stable_fraction(self) -> float:
        """Long-run fraction of peers under stable parents.

        Closed form of the two-state chain's stationary distribution::

            pi_stable = u*q / (u*q + s*(1-q))
        """
        s, u, q = self.p_lose_stable, self.p_lose_unstable, self.p_stable_pick
        num = u * q
        den = u * q + s * (1.0 - q)
        if den == 0.0:  # repro: noqa[FLT001] exact zero guards division, not a tolerance check
            # no movement at all: the initial distribution persists; report
            # the selection probability as the only meaningful limit
            return q
        return num / den

    def transient(self, initial_stable: float, n_rounds: int) -> np.ndarray:
        """Stable-parent fraction after each of ``n_rounds`` adaptation
        rounds, starting from ``initial_stable``."""
        if not (0.0 <= initial_stable <= 1.0):
            raise ValueError("initial_stable must be a probability")
        if n_rounds < 0:
            raise ValueError("n_rounds must be non-negative")
        P = self.transition_matrix()
        state = np.array([initial_stable, 1.0 - initial_stable])
        out = np.empty(n_rounds + 1)
        out[0] = state[0]
        for i in range(1, n_rounds + 1):
            state = state @ P
            out[i] = state[0]
        return out

    def rounds_to_converge(self, initial_stable: float, tolerance: float = 0.01,
                           max_rounds: int = 10_000) -> int:
        """Rounds until within ``tolerance`` of the stationary fraction."""
        target = self.stationary_stable_fraction()
        traj = self.transient(initial_stable, max_rounds)
        hits = np.nonzero(np.abs(traj - target) <= tolerance)[0]
        if hits.size == 0:
            raise RuntimeError("did not converge within max_rounds")
        return int(hits[0])

    # --- calibration from first principles -------------------------------------
    @classmethod
    def from_populations(
        cls,
        contributor_fraction: float,
        *,
        mean_degree_stable: float = 12.0,
        mean_degree_unstable: float = 2.0,
        ts_blocks: float = 10.0,
        ta_seconds: float = 20.0,
        substream_rate: float = 1.0,
        churn_rate: float = 0.02,
    ) -> "ConvergenceModel":
        """Derive the chain's parameters from Eq. (6) and the population
        mix.

        The per-round loss probabilities come from Eq. 6 evaluated at the
        class-typical degrees (with the uniform ``t_delta`` prior), plus a
        class-independent churn floor.
        """
        from repro.model.dynamics import competition_loss_probability

        if not (0.0 < contributor_fraction < 1.0):
            raise ValueError("contributor_fraction must be in (0, 1)")
        p_lose_s = churn_rate + (1 - churn_rate) * competition_loss_probability(
            max(1, int(round(mean_degree_stable))), ts_blocks, ta_seconds,
            substream_rate,
        ) * 0.1  # stable parents are rarely oversubscribed at all
        p_lose_u = churn_rate + (1 - churn_rate) * competition_loss_probability(
            max(1, int(round(mean_degree_unstable))), ts_blocks, ta_seconds,
            substream_rate,
        )
        # selection pool over-represents contributors: NAT/firewall targets
        # reject incoming partnerships, so roughly only contributor-class
        # candidates are reachable for *new* partnerships, diluted by the
        # already-established mixed partner set.
        p_pick = min(1.0, contributor_fraction * 2.5)
        return cls(
            p_stable_pick=p_pick,
            p_lose_stable=min(1.0, p_lose_s),
            p_lose_unstable=min(1.0, p_lose_u),
        )
