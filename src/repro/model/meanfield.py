"""Mean-field ODE backend: population dynamics at O(1) cost in N.

The third engine.  Where the detailed engine tracks protocol messages
and the fluid engine tracks per-peer arrays, this backend integrates
*population-level* mean-field equations built from the paper's own
adaptation model (Section IV.C, :mod:`repro.model.dynamics`), in the
spirit of the swarming mean-field treatment of KhudaBukhsh et al.
(PAPERS.md): the per-peer stochastic system converges, as N grows, to a
deterministic flow over class-stratified population densities.

State and flows
---------------
The population splits into stage stocks -- joining (bootstrap control),
buffering (filling the player buffer), playing -- stratified by
connectivity class ``c``.  Per step ``dt``:

* **Supply** ``S = S_servers + sum_c P_c * u_c * e_c`` where ``u_c`` is
  the class's mean upload in sub-stream units (capped by the children
  cap ``M*K``) and ``e_c`` its reachability (1 for contributor classes,
  ``nat_parent_prob`` for NAT/firewall) -- the same discount the fluid
  engine applies per candidate.
* **Demand** is the engines' two-tier water-fill taken to its population
  limit: ``K*(P+B)`` connections, playing connections demanding 1
  block/s and buffering connections ``catchup_factor``.  The closed-form
  water level ``L`` gives the per-connection rates ``r_play = min(L,1)``
  and ``r_buf = min(L, catchup_factor)``.
* **Continuity** is the degraded-rate dynamics (Eq. 5) in the limit:
  blocks arrive before their deadline at rate ``r_play`` of the nominal
  rate, so the instantaneous continuity index is ``clip(r_play, 0, 1)``.
  A population deficit ``l`` (blocks behind, per playing peer) grows at
  ``K*(1 - c_inst)`` while starved and drains at the Eq. 3 catch-up rate
  ``l / catchup_time(l, r_up, R/K)`` when supply allows.
* **Abandonment** (Eq. 4): while oversubscribed, a playing peer's slack
  to the ``T_s`` out-of-sync threshold erodes in
  ``abandon_time(T_s, r_play, R/K)`` seconds; the implied hazard
  ``1/t_down`` drives failure departures (which retry with backoff, up
  to ``max_join_retries``), the mechanism behind the paper's Fig. 10
  retry tail.
* **Arrival/departure forcing** comes from the *sampled* workload
  realization -- the same arrays the other engines consume -- so the
  audience trajectory is common-random-number comparable across engines.

Telemetry: the characteristic panel
-----------------------------------
Analysis code consumes logs, not engine internals, so the backend
solves the transport part of the mean-field equations by the method of
characteristics: a panel of up to ``max_logged_users`` representative
users (an evenly strided sample of the workload, each carrying weight
``N/M``) rides the population rates -- identical deterministic fill and
hazard rates for every panel member, per-member phases for report
cadence -- and emits the standard activity/QoS/traffic/partner reports.
At parity scale the panel is the whole audience and the log is complete;
at millions of users the log is a stratified sample (as the measured
system's own log servers effectively were) while
:meth:`MeanFieldBackend.snapshot_metrics` reports exact population
numbers.

Validity limits
---------------
The mean-field limit drops per-peer variance: no overlay topology, no
per-parent competition (Eq. 6 enters only through the calibrated
bands), no heavy-tailed outliers.  Expect tight agreement on
population-scale metrics (peak audience, mean continuity) and only
order-of-magnitude agreement on tail statistics (retries, stalls) --
exactly the split the parity tolerance bands encode.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.fastsim import FastSimConfig
from repro.fastsim.engine import PHASE_TIMING_ENV
from repro.model.dynamics import abandon_time, catchup_time
from repro.network.capacity import CapacityModel
from repro.network.connectivity import ConnectivityClass, ConnectivityMix
from repro.sim.rng import RngHub
from repro.telemetry.reports import (
    ActivityEvent,
    ActivityReport,
    LeaveReason,
    PartnerReport,
    QoSReport,
    TrafficReport,
)
from repro.telemetry.server import LogServer

__all__ = [
    "MeanFieldConfig",
    "MeanFieldBackend",
    "PHASE_NAMES",
    "PHASE_TOTALS",
    "reset_phase_totals",
]

#: step phases, in execution order (``--engine ode`` profile breakdown)
PHASE_NAMES: Tuple[str, ...] = (
    "forcing", "waterfill", "continuity", "transitions",
    "traffic", "departures", "reports",
)

#: cumulative wall seconds per phase, across every backend instance in
#: this process; populated only when ``REPRO_PROFILE_PHASES`` is set
PHASE_TOTALS: Dict[str, float] = {}


def reset_phase_totals() -> None:
    """Clear the module-level phase accumulator."""
    PHASE_TOTALS.clear()

# panel member stages
_PENDING, _JOINING, _BUFFERING, _PLAYING, _RETRY_WAIT, _LEFT = 0, 1, 2, 3, 4, 5

_CONTRIBUTOR = (ConnectivityClass.DIRECT, ConnectivityClass.UPNP)
_PUBLIC = (ConnectivityClass.DIRECT, ConnectivityClass.FIREWALL)


@dataclass(frozen=True)
class MeanFieldConfig:
    """Integration knobs for the mean-field backend."""

    dt: float = 1.0                 # integration step, seconds
    max_logged_users: int = 25_000  # characteristic-panel cap (log size)
    catchup_factor: float = 16.0    # buffering-tier demand multiplier
    nat_parent_prob: float = FastSimConfig.nat_parent_prob  # reachability
                                    # discount for NAT/firewall upload supply
                                    # (same constant the fluid engine uses
                                    # per sampled candidate)

    def __post_init__(self) -> None:
        if self.dt <= 0:
            raise ValueError("dt must be positive")
        if self.max_logged_users < 1:
            raise ValueError("max_logged_users must be >= 1")
        if self.catchup_factor < 1:
            raise ValueError("catchup_factor must be >= 1")
        if not (0.0 <= self.nat_parent_prob <= 1.0):
            raise ValueError("nat_parent_prob must be a probability")


class MeanFieldBackend:
    """Population-ODE engine behind the :class:`StreamingBackend` contract."""

    name = "ode"

    def __init__(self, scenario, seed: int = 0, *,
                 ode: Optional[MeanFieldConfig] = None) -> None:
        self.scenario = scenario
        self.seed = int(seed)
        self.cfg = scenario.cfg
        self.ode = ode or MeanFieldConfig()
        self.mix = scenario.connectivity_mix or ConnectivityMix()
        self.capacity_model = scenario.capacity_model or CapacityModel()
        self.rng = RngHub(seed)
        self._rng = self.rng.stream("meanfield")
        self.log = LogServer()
        self.now = 0.0
        self.steps_run = 0
        self.phase_timing = bool(os.environ.get(PHASE_TIMING_ENV))
        self.phase_seconds: Dict[str, float] = {}

        cfg = self.cfg
        # class-stratified mean-field supply parameters: mean upload in
        # sub-stream units, capped by the children cap, discounted by
        # reachability (contributor classes serve freely; NAT/firewall
        # only over partnerships they initiated)
        child_cap = float(cfg.max_partners * cfg.n_substreams)
        self._classes = list(self.mix.fractions)
        self._class_frac = np.array(
            [self.mix.fractions[c] for c in self._classes], dtype=float)
        u = np.array(
            [min(self.capacity_model.mean_upload(c)
                 / cfg.substream_rate_bps, child_cap)
             for c in self._classes], dtype=float)
        e = np.array(
            [1.0 if c in _CONTRIBUTOR else self.ode.nat_parent_prob
             for c in self._classes], dtype=float)
        self._class_supply = u * e        # usable slots per playing peer
        server_cap = float(cfg.server_max_partners * cfg.n_substreams)
        self._server_supply = cfg.n_servers * min(
            cfg.upload_slots(cfg.server_upload_bps), server_cap)

        # population ODE state (exact, O(#classes) memory)
        self.deficit_blocks = 0.0         # l: mean blocks behind, per peer
        self._continuity_integral = 0.0   # C(t) = int c_inst dt
        self._play_time = 0.0             # int 1{playing>0} dt
        self._cont_play_integral = 0.0    # int c_inst over play time
        self.sessions_spawned = 0
        self._c_inst = 1.0

        # workload (applied once) and program endings
        self._times: Optional[np.ndarray] = None
        self._durations: Optional[np.ndarray] = None
        self._endings: List[Tuple[float, float]] = []
        self._weight = 1.0
        self._materialized = False

    # ------------------------------------------------------------------
    # workload API
    # ------------------------------------------------------------------
    def apply_workload(self, times: np.ndarray, durations: np.ndarray) -> None:
        """Register the sampled audience (forcing terms of the ODE)."""
        if self._times is not None:
            raise RuntimeError("workload already applied")
        times = np.asarray(times, dtype=float)
        durations = np.asarray(durations, dtype=float)
        if times.shape != durations.shape:
            raise ValueError("times and durations must align")
        order = np.argsort(times, kind="stable")
        self._times = times[order]
        self._durations = durations[order]

    def add_program_ending(self, time_s: float, leave_probability: float) -> None:
        """Schedule a program-end departure wave."""
        if self._materialized:
            raise RuntimeError("cannot add program endings after run()")
        self._endings.append((float(time_s), float(leave_probability)))

    # ------------------------------------------------------------------
    # characteristic panel
    # ------------------------------------------------------------------
    def _materialize(self) -> None:
        if self._materialized:
            return
        if self._times is None:
            raise RuntimeError("apply_workload() must be called before run()")
        self._materialized = True
        self._endings.sort(reverse=True)
        n = int(self._times.size)
        m = min(n, self.ode.max_logged_users)
        if n:
            pick = np.unique(np.linspace(0, n - 1, m).astype(np.int64))
        else:
            pick = np.zeros(0, dtype=np.int64)
        m = int(pick.size)
        self._weight = (n / m) if m else 1.0
        self.n_users = n
        self.m_panel = m

        rng = self._rng
        self.t_arr = self._times[pick]
        self.deadline = self.t_arr + self._durations[pick]
        self.user_id = pick
        self.stage = np.full(m, _PENDING, dtype=np.int8)
        self.attempt = np.ones(m, dtype=np.int32)
        self.joined_at = np.zeros(m, dtype=np.float64)
        self.buffered = np.zeros(m, dtype=np.float64)
        self.ever_ready = np.zeros(m, dtype=bool)
        self.retry_at = np.full(m, np.inf, dtype=np.float64)
        self.session_id = np.zeros(m, dtype=np.int64)
        self.retries = np.zeros(m, dtype=np.int32)
        # class draw per panel member (log classification only; the ODE
        # itself uses expected class shares)
        ci = rng.choice(len(self._classes), size=m, p=self._class_frac)
        self.cls = np.fromiter(
            (int(self._classes[i]) for i in ci), dtype=np.int8, count=m)
        self.public_addr = np.isin(self.cls, [int(c) for c in _PUBLIC])
        self.incoming = np.isin(self.cls, [int(c) for c in _CONTRIBUTOR])
        self.report_phase = rng.uniform(
            0, self.cfg.status_report_period_s, m)
        self.next_watch = np.full(m, np.inf, dtype=np.float64)
        self.watch_c0 = np.zeros(m, dtype=np.float64)   # C at window start
        self.watch_t0 = np.zeros(m, dtype=np.float64)
        self.bits_down = np.zeros(m, dtype=np.float64)
        self.bits_up = np.zeros(m, dtype=np.float64)
        self.bits_down_rep = np.zeros(m, dtype=np.float64)
        self.bits_up_rep = np.zeros(m, dtype=np.float64)
        self._arrival_ptr = 0
        self._next_session = 1

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def _activity(self, i: int, event: ActivityEvent,
                  reason: Optional[LeaveReason] = None) -> None:
        self.log.receive_report(self.now, ActivityReport(
            time=self.now, node_id=200_000 + int(i),
            user_id=int(self.user_id[i]),
            session_id=int(self.session_id[i]),
            event=event, attempt=int(self.attempt[i]),
            address_public=bool(self.public_addr[i]), reason=reason,
        ))

    def _join(self, idx: np.ndarray) -> None:
        """Activate panel members (first join or retry)."""
        if idx.size == 0:
            return
        self.stage[idx] = _JOINING
        self.joined_at[idx] = self.now
        self.buffered[idx] = 0.0
        self.session_id[idx] = np.arange(
            self._next_session, self._next_session + idx.size)
        self._next_session += idx.size
        self.sessions_spawned += idx.size
        for i in idx:
            self._activity(int(i), ActivityEvent.JOIN)

    def _leave(self, idx: np.ndarray, reason: LeaveReason, *,
               retry: bool, silent: Optional[np.ndarray] = None) -> None:
        """Retire panel members; failures/impatience requeue with backoff."""
        if idx.size == 0:
            return
        loud = idx if silent is None else idx[~silent]
        for i in loud:
            self._activity(int(i), ActivityEvent.LEAVE, reason)
        self.stage[idx] = _LEFT
        self.next_watch[idx] = np.inf
        if retry:
            can = idx[self.attempt[idx] <= self.cfg.max_join_retries]
            if can.size:
                backoff = self.cfg.retry_backoff_s * (
                    0.5 + self._rng.random(can.size))
                self.retry_at[can] = self.now + backoff
                self.attempt[can] += 1
                self.retries[can] += 1
                self.stage[can] = _RETRY_WAIT

    # ------------------------------------------------------------------
    # the step
    # ------------------------------------------------------------------
    def _counts(self) -> Tuple[int, int, int]:
        nj = int((self.stage == _JOINING).sum())
        nb = int((self.stage == _BUFFERING).sum())
        np_ = int((self.stage == _PLAYING).sum())
        return nj, nb, np_

    def _mark_phase(self, name: str, t0: float) -> float:
        t1 = perf_counter()  # repro: noqa[DET002] opt-in phase timing only
        dt = t1 - t0
        self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + dt
        PHASE_TOTALS[name] = PHASE_TOTALS.get(name, 0.0) + dt
        return t1

    def _step(self) -> None:
        cfg = self.cfg
        ode = self.ode
        dt = ode.dt
        now = self.now
        k = cfg.n_substreams
        w = self._weight
        timing = self.phase_timing
        if timing:
            _pt = perf_counter()  # repro: noqa[DET002] opt-in phase timing only

        # 1. arrivals / retries (forcing) ---------------------------------
        ptr = self._arrival_ptr
        end = ptr
        t = self.t_arr
        while end < t.size and t[end] <= now:
            end += 1
        if end > ptr:
            fresh = np.arange(ptr, end)
            fresh = fresh[self.deadline[fresh] > now]
            self._arrival_ptr = end
            self._join(fresh)
            gone = np.arange(ptr, end)
            self.stage[gone[self.deadline[gone] <= now]] = _LEFT
        due_retry = np.nonzero(
            (self.stage == _RETRY_WAIT) & (self.retry_at <= now))[0]
        if due_retry.size:
            live = due_retry[self.deadline[due_retry] > now]
            dead = due_retry[self.deadline[due_retry] <= now]
            self.stage[dead] = _LEFT
            self._join(live)
        if timing:
            _pt = self._mark_phase("forcing", _pt)

        # 2. population water-fill (the fluid engines' two-tier closed
        #    form in the mean-field limit) -------------------------------
        nj, nb, np_ = self._counts()
        supply = self._server_supply + w * (nb + np_) * float(
            self._class_frac @ self._class_supply)
        n1 = w * np_ * k                  # playing connections, demand 1
        nc = w * nb * k                   # buffering connections, demand c
        if n1 + nc > 0:
            level_low = supply / (n1 + nc)
            if level_low <= 1.0:
                level = level_low
            elif nc > 0:
                level = min((supply - n1) / nc, ode.catchup_factor)
            else:
                level = ode.catchup_factor
        else:
            level = ode.catchup_factor
        r_play = max(0.0, min(level, 1.0))
        r_buf = max(0.0, min(level, ode.catchup_factor))
        if timing:
            _pt = self._mark_phase("waterfill", _pt)

        # 3. continuity + deficit ODE (Eqs. 3/5 in the limit) ------------
        c_inst = r_play                   # degraded-rate continuity
        if c_inst < 1.0:
            self.deficit_blocks += k * (1.0 - c_inst) * dt
        elif self.deficit_blocks > 0.0 and r_buf > 1.0:
            # Eq. 3: the deficit drains in catchup_time(l, r_up, R/K)
            t_up = catchup_time(self.deficit_blocks, r_buf, 1.0)
            self.deficit_blocks = max(
                0.0, self.deficit_blocks * (1.0 - dt / max(t_up, dt)))
        self._c_inst = c_inst
        self._continuity_integral += c_inst * dt
        if np_:
            self._play_time += dt
            self._cont_play_integral += c_inst * dt
        if timing:
            _pt = self._mark_phase("continuity", _pt)

        # 4. stage transitions -------------------------------------------
        joining = np.nonzero(self.stage == _JOINING)[0]
        if joining.size:
            up = joining[now - self.joined_at[joining]
                         >= FastSimConfig.join_overhead_s]
            if up.size:
                self.stage[up] = _BUFFERING
                for i in up:
                    self._activity(int(i), ActivityEvent.START_SUBSCRIPTION)
        buffering = np.nonzero(self.stage == _BUFFERING)[0]
        if buffering.size:
            self.buffered[buffering] += r_buf * dt
            ready = buffering[self.buffered[buffering]
                              >= cfg.player_buffer_s]
            if ready.size:
                self.stage[ready] = _PLAYING
                self.ever_ready[ready] = True
                self.next_watch[ready] = now + cfg.stall_window_s
                self.watch_c0[ready] = self._continuity_integral
                self.watch_t0[ready] = now
                for i in ready:
                    self._activity(int(i), ActivityEvent.PLAYER_READY)
        if timing:
            _pt = self._mark_phase("transitions", _pt)

        # 5. traffic integrals (population shares) -----------------------
        active_play = np.nonzero(self.stage == _PLAYING)[0]
        if active_play.size:
            down = c_inst * k * cfg.block_bits * dt
            self.bits_down[active_play] += down
            # peer-carried share, split by class supply weight
            served = (n1 * r_play + nc * r_buf)
            sigma = self._server_supply / supply if supply > 0 else 1.0
            mean_cs = float(self._class_frac @ self._class_supply)
            if mean_cs > 0 and np_ + nb > 0:
                per_peer = served * (1.0 - sigma) / (w * (np_ + nb))
                cls_w = self._class_supply_for(self.cls[active_play]) / mean_cs
                self.bits_up[active_play] += (
                    per_peer * cls_w * cfg.block_bits * dt)
        if timing:
            _pt = self._mark_phase("traffic", _pt)

        # 6. departures ---------------------------------------------------
        act = np.nonzero((self.stage == _JOINING) | (self.stage == _BUFFERING)
                         | (self.stage == _PLAYING))[0]
        due = act[self.deadline[act] <= now]
        if due.size:
            silent = self._rng.random(due.size) < self.scenario.silent_leave_prob
            self._leave(due, LeaveReason.NORMAL, retry=False, silent=silent)
        while self._endings and self._endings[-1][0] <= now:
            _te, prob = self._endings.pop()
            watchers = np.nonzero(
                (self.stage == _BUFFERING) | (self.stage == _PLAYING))[0]
            if watchers.size:
                going = watchers[self._rng.random(watchers.size) < prob]
                self.deadline[going] = now
                self._leave(going, LeaveReason.PROGRAM_END, retry=False)
        # patience: joiners/bufferers that never reached playback
        waiting = np.nonzero(
            (self.stage == _JOINING) | (self.stage == _BUFFERING))[0]
        impatient = waiting[
            now - self.joined_at[waiting] > cfg.join_patience_s]
        if impatient.size:
            self._leave(impatient, LeaveReason.IMPATIENCE, retry=True)
        # Eq. 4 abandonment hazard: oversubscription erodes the T_s slack
        playing = np.nonzero(self.stage == _PLAYING)[0]
        if playing.size and c_inst < 1.0:
            t_down = abandon_time(float(cfg.ts_seconds), c_inst, 1.0)
            p_fail = 1.0 - float(np.exp(-dt / t_down))
            hit = playing[self._rng.random(playing.size) < p_fail]
            if hit.size:
                self._leave(hit, LeaveReason.FAILURE, retry=True)
        # stall watchdog on window continuity
        playing = np.nonzero(self.stage == _PLAYING)[0]
        if playing.size:
            check = playing[self.next_watch[playing] <= now]
            if check.size:
                span = np.maximum(now - self.watch_t0[check], dt)
                wc = (self._continuity_integral - self.watch_c0[check]) / span
                stalled = check[wc < cfg.stall_exit_continuity]
                self.next_watch[check] = now + cfg.stall_window_s
                self.watch_c0[check] = self._continuity_integral
                self.watch_t0[check] = now
                if stalled.size:
                    self._leave(stalled, LeaveReason.FAILURE, retry=True)
        if timing:
            _pt = self._mark_phase("departures", _pt)

        # 7. status reports ----------------------------------------------
        period = cfg.status_report_period_s
        alive = np.nonzero((self.stage == _JOINING) | (self.stage == _BUFFERING)
                           | (self.stage == _PLAYING))[0]
        if alive.size:
            age = now - self.joined_at[alive]
            phase = self.report_phase[alive]
            fires = alive[(np.floor((age + phase) / period)
                           > np.floor((age - dt + phase) / period))
                          & (age >= dt)]
            for i in fires:
                self._send_status(int(i))
        if timing:
            self._mark_phase("reports", _pt)

        self.now = now + dt
        self.steps_run += 1

    def _class_supply_for(self, cls: np.ndarray) -> np.ndarray:
        out = np.zeros(cls.size, dtype=float)
        for c, s in zip(self._classes, self._class_supply):
            out[cls == int(c)] = s
        return out

    def _send_status(self, i: int) -> None:
        playing = bool(self.stage[i] == _PLAYING)
        header = dict(
            time=self.now, node_id=200_000 + int(i),
            user_id=int(self.user_id[i]),
            session_id=int(self.session_id[i]),
        )
        cont = None
        if playing:
            cont = max(0.0, min(1.0, self._c_inst))
        self.log.receive_report(self.now, QoSReport(
            **header, continuity=cont,
            buffered_seconds=float(self.buffered[i]),
            n_parents=self.cfg.n_substreams if playing else 0,
            playing=playing,
        ))
        self.log.receive_report(self.now, TrafficReport(
            **header,
            bytes_up=float(self.bits_up[i] - self.bits_up_rep[i]) / 8.0,
            bytes_down=float(self.bits_down[i] - self.bits_down_rep[i]) / 8.0,
            total_up=float(self.bits_up[i]) / 8.0,
            total_down=float(self.bits_down[i]) / 8.0,
        ))
        self.bits_up_rep[i] = self.bits_up[i]
        self.bits_down_rep[i] = self.bits_down[i]
        self.log.receive_report(self.now, PartnerReport(
            **header, events=(),
            n_partners=self.cfg.n_substreams,
            n_incoming=1 if self.incoming[i] else 0,
            n_outgoing=self.cfg.n_substreams,
        ))

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: float) -> None:
        """Integrate the population ODE (and its panel) to ``until``."""
        self._materialize()
        while self.now < until:
            self._step()

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def concurrent_users(self) -> float:
        """Population estimate of currently active users."""
        nj, nb, np_ = self._counts()
        return self._weight * (nj + nb + np_)

    def mean_continuity(self) -> float:
        """Play-time-weighted mean of the instantaneous continuity."""
        if self._play_time <= 0:
            return float("nan")
        return self._cont_play_integral / self._play_time

    def snapshot_metrics(self) -> Dict[str, float]:
        """Population-level ground truth (exact even when the log is a
        panel sample)."""
        nj, nb, np_ = self._counts()
        w = self._weight
        return {
            "concurrent_users": w * (nj + nb + np_),
            "playing_users": w * np_,
            "sessions_spawned": w * float(self.sessions_spawned),
            "mean_continuity": self.mean_continuity(),
            "mean_deficit_blocks": float(self.deficit_blocks),
            "success_fraction": (
                float(self.ever_ready[self.stage != _PENDING].mean())
                if (self.stage != _PENDING).any() else float("nan")),
            "adaptations": float("nan"),
            "panel_users": float(self.m_panel),
            "panel_weight": w,
        }
