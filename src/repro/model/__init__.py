"""Analytical models from the paper.

* :mod:`repro.model.dynamics` -- the closed forms of Section IV.C:
  catch-up time (Eq. 3), abandon time (Eq. 4), the degraded rate under
  competition (Eq. 5) and the competition-loss probability (Eq. 6).
* :mod:`repro.model.convergence` -- the "simple topology model" of the
  contributions list: a Markov chain over parent classes showing that
  random partner selection converges peers under stable
  direct-connect/UPnP parents.
"""

from repro.model.dynamics import (
    abandon_time,
    catchup_time,
    competition_loss_probability,
    degraded_rate,
    loss_time,
)
from repro.model.convergence import ConvergenceModel

__all__ = [
    "catchup_time",
    "abandon_time",
    "degraded_rate",
    "loss_time",
    "competition_loss_probability",
    "ConvergenceModel",
]
