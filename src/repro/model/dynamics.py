"""Closed-form adaptation dynamics (Section IV.C, Eqs. 3-6).

All rates are in consistent units (we use blocks/second, where the nominal
sub-stream rate ``R/K`` is 1 block/s in the engine's normalization, but
the formulas are unit-agnostic) and ``l`` (ell) counts missing blocks.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

__all__ = [
    "catchup_time",
    "abandon_time",
    "degraded_rate",
    "loss_time",
    "competition_loss_probability",
]


def catchup_time(l_blocks: float, r_up: float, substream_rate: float) -> float:
    """Eq. (3): time for a child to close an ``l``-block deficit.

    With the parent pushing at ``r_up > R/K`` while the stream advances at
    ``R/K``::

        t_up = l / (r_up - R/K)

    Raises when ``r_up <= R/K`` -- the child never catches up.
    """
    if l_blocks < 0:
        raise ValueError("deficit must be non-negative")
    if r_up <= substream_rate:
        raise ValueError(
            f"catch-up requires r_up > R/K (got {r_up} <= {substream_rate})"
        )
    return l_blocks / (r_up - substream_rate)


def abandon_time(l_blocks: float, r_down: float, substream_rate: float) -> float:
    """Eq. (4): time until a child abandons a degraded parent.

    With the parent delivering only ``r_down < R/K``, the sub-stream falls
    behind by ``T_s`` after::

        t_down = l / (R/K - r_down)

    where ``l`` here is the remaining slack (``T_s`` minus the current
    deviation, in blocks).
    """
    if l_blocks < 0:
        raise ValueError("slack must be non-negative")
    if r_down >= substream_rate:
        raise ValueError(
            f"abandonment requires r_down < R/K (got {r_down} >= {substream_rate})"
        )
    return l_blocks / (substream_rate - r_down)


def degraded_rate(d_p: int, substream_rate: float) -> float:
    """Eq. (5): per-connection rate after one extra child joins a parent
    that was exactly satisfying ``D_p`` sub-stream connections::

        r_down = D_p / (D_p + 1) * R/K
    """
    if d_p < 1:
        raise ValueError("D_p must be >= 1")
    return d_p / (d_p + 1.0) * substream_rate


def loss_time(
    d_p: int, ts_blocks: float, t_delta_blocks: float, substream_rate: float
) -> float:
    """Time for a child to lose the competition (the ``t_lose`` derivation):

        t_lose = (D_p + 1) * (T_s - t_delta) / (R/K)

    ``t_delta`` is the child's deviation at the start of the competition.
    """
    if d_p < 1:
        raise ValueError("D_p must be >= 1")
    if t_delta_blocks > ts_blocks:
        raise ValueError("initial deviation already beyond T_s")
    return (d_p + 1.0) * (ts_blocks - t_delta_blocks) / substream_rate


def competition_loss_probability(
    d_p: int,
    ts_blocks: float,
    ta_seconds: float,
    substream_rate: float,
    t_delta_cdf: Optional[Callable[[float], float]] = None,
    t_delta_samples: Optional[np.ndarray] = None,
) -> float:
    """Eq. (6): probability that a child loses the competition within the
    cool-down period ``T_a``::

        P(t_lose <= T_a) = P(t_delta >= T_s - T_a * (R/K) / (D_p + 1))

    The distribution of the initial deviation ``t_delta`` is supplied
    either as a CDF callable or as empirical samples.  Larger ``D_p``
    shrinks the right side's subtrahend more slowly -- i.e. high-degree
    (contributor-class) parents make their children *less* likely to lose,
    the mechanism behind the Fig. 4 clogging.
    """
    if d_p < 1:
        raise ValueError("D_p must be >= 1")
    if ta_seconds < 0:
        raise ValueError("T_a must be non-negative")
    threshold = ts_blocks - ta_seconds * substream_rate / (d_p + 1.0)
    if t_delta_cdf is not None:
        return max(0.0, min(1.0, 1.0 - t_delta_cdf(threshold)))
    if t_delta_samples is not None:
        samples = np.asarray(t_delta_samples, dtype=float)
        if samples.size == 0:
            raise ValueError("empty t_delta sample set")
        return float((samples >= threshold).mean())
    # default: t_delta ~ Uniform[0, T_s], the maximum-entropy choice on the
    # feasible interval
    if threshold <= 0:
        return 1.0
    if threshold >= ts_blocks:
        return 0.0
    return 1.0 - threshold / ts_blocks
