"""The wall-clock -> virtual-time mapping of the net backend.

The simulators *are* their clock; a real deployment has to derive one.
:class:`VirtualClock` maps the host's monotonic clock onto the virtual
timeline every protocol object lives on::

    virtual = elapsed_wall_while_running * time_scale

The clock is pausable: :meth:`~repro.net.backend.NetBackend.run` resumes
it, runs to the requested virtual horizon, and pauses it again, so the
``StreamingBackend`` contract's repeated ``run(until)`` calls see a
timeline that only advances while a run is in progress (exactly like an
engine that only moves inside ``Engine.run``).

This is the one module of the backend that reads the host clock; the
reads are annotated for the determinism lint because a real-network
backend is wall-clock-driven *by design* -- the determinism caveats are
documented in README "Running on a real network".
"""

from __future__ import annotations

import time

__all__ = ["VirtualClock"]


def _wall() -> float:
    """Monotonic wall reading (the net backend's time base)."""
    return time.monotonic()  # repro: noqa[DET002] net backend is wall-clock-driven by design


class VirtualClock:
    """Pausable mapping from wall seconds to virtual seconds.

    Starts paused at virtual time 0; :meth:`resume`/:meth:`pause` bracket
    the running intervals.  ``now()`` is stable while paused.
    """

    def __init__(self, time_scale: float) -> None:
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self.time_scale = float(time_scale)
        self._accum_virtual = 0.0
        self._resumed_wall: float | None = None

    @property
    def running(self) -> bool:
        """Whether virtual time is currently advancing."""
        return self._resumed_wall is not None

    def resume(self) -> None:
        """Let virtual time advance.  Idempotent."""
        if self._resumed_wall is None:
            self._resumed_wall = _wall()

    def pause(self) -> None:
        """Freeze virtual time.  Idempotent."""
        if self._resumed_wall is not None:
            self._accum_virtual += (_wall() - self._resumed_wall) * self.time_scale
            self._resumed_wall = None

    def now(self) -> float:
        """Current virtual time in seconds."""
        if self._resumed_wall is None:
            return self._accum_virtual
        return self._accum_virtual + (_wall() - self._resumed_wall) * self.time_scale

    def clamp(self, virtual: float) -> None:
        """Pull a paused clock back to exactly ``virtual`` if the pump
        quantum overshot it (keeps ``now()`` == the engine clock at the
        end of a run)."""
        if self._resumed_wall is None and self._accum_virtual > virtual:
            self._accum_virtual = float(virtual)

    def wall_delay(self, virtual_delay: float) -> float:
        """Wall seconds corresponding to a virtual duration."""
        return max(0.0, virtual_delay) / self.time_scale
