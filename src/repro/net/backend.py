"""``NetBackend``: the ``StreamingBackend`` contract over real sockets.

The backend owns one deployment: a private asyncio event loop hosting
the coordinator plus every peer's sockets, a
:class:`~repro.net.clock.VirtualClock` mapping the host clock onto the
scenario's virtual timeline, and the *pump* that fires due virtual-time
events (the reused protocol code's ``PeriodicTask``/delayed callbacks)
between I/O.  ``run(until)`` resumes the clock, interleaves engine pumps
with socket traffic until virtual time reaches ``until``, then pauses,
drains in-flight frames and hands back -- so the driver, parity harness
and campaign runner treat ``engine="net"`` exactly like the simulators.

Startup failures (a fixed coordinator port already bound, servers unable
to reach the coordinator) raise
:class:`~repro.runtime.backends.BackendStartupError`, which the CLIs map
to a uniform exit code.
"""

from __future__ import annotations

import asyncio
from operator import attrgetter
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.net.clock import VirtualClock
from repro.net.config import NetConfig
from repro.net.coordinator import NetCoordinator
from repro.net.peer import NetServer
from repro.net.system import NetSystem
from repro.runtime.backends import BackendStartupError
from repro.telemetry.server import LogServer
from repro.telemetry.sink import MemorySink
from repro.workload.sessions import ProgramSchedule
from repro.workload.users import UserPopulation

__all__ = ["NetBackend"]


class NetBackend:
    """Real-network engine behind the :class:`StreamingBackend` contract.

    Construction wires nothing network-visible; sockets come up inside
    the first :meth:`run` (on the backend's private event loop), so the
    staging lifecycle -- ``apply_workload`` then any number of
    ``add_program_ending`` calls -- matches ``DetailedBackend``.

    Pass ``net=NetConfig(...)`` to pin ports, change the virtual-time
    scale or tighten timeouts; the default binds everything to ephemeral
    localhost ports.
    """

    name = "net"

    def __init__(self, scenario, seed: int = 0, *,
                 net: Optional[NetConfig] = None) -> None:
        self.scenario = scenario
        self.seed = int(seed)
        self.net = net if net is not None else NetConfig()
        self.system = NetSystem(
            scenario.cfg,
            seed=self.seed,
            net=self.net,
            capacity_model=scenario.capacity_model,
            connectivity_mix=scenario.connectivity_mix,
        )
        self.clock = VirtualClock(self.net.time_scale)
        self.coordinator: Optional[NetCoordinator] = None
        self.population: Optional[UserPopulation] = None
        self._times: Optional[np.ndarray] = None
        self._durations: Optional[np.ndarray] = None
        self._endings: List[Tuple[float, float]] = []
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = False
        self._closed = False
        self._run_until: Optional[float] = None

    # -- workload ------------------------------------------------------
    def apply_workload(self, times: np.ndarray, durations: np.ndarray) -> None:
        """Stage the audience (deployed on the first :meth:`run`)."""
        if self._times is not None:
            raise RuntimeError("workload already applied")
        times = np.asarray(times, dtype=float)
        durations = np.asarray(durations, dtype=float)
        if times.shape != durations.shape:
            raise ValueError("times and durations must align")
        self._times = times
        self._durations = durations

    def add_program_ending(self, time_s: float, leave_probability: float) -> None:
        """Stage a program-end wave (must precede the first :meth:`run`)."""
        if self.population is not None:
            raise RuntimeError("cannot add program endings after run()")
        self._endings.append((float(time_s), float(leave_probability)))

    def at(self, time_s: float, callback: Callable[[NetSystem], None]) -> None:
        """Run ``callback(system)`` at virtual time ``time_s``.

        Fault-injection hook for tests and harnesses (e.g. kill one peer
        abruptly mid-run and watch its partners recover)."""
        self.system.engine.schedule_at(
            float(time_s), lambda: callback(self.system))

    # -- execution -----------------------------------------------------
    def run(self, until: float) -> None:
        """Advance the deployment to virtual time ``until``.

        The first call brings the network up (coordinator bind, server
        registration, audience attach); reaching the scenario horizon
        tears it down again so a completed run leaves no sockets or
        event loops behind."""
        if self._closed:
            raise RuntimeError("net backend is closed (run already completed)")
        if self._loop is None:
            self._loop = asyncio.new_event_loop()
        self._loop.run_until_complete(self._run_async(float(until)))
        if until >= float(self.scenario.horizon_s) - 1e-9:
            self.close()

    async def _run_async(self, until: float) -> None:
        if not self._started:
            await self._setup()
            self._started = True
        engine = self.system.engine
        self._run_until = until
        self.clock.resume()
        try:
            while self.clock.now() < until:
                self._pump()
                await asyncio.sleep(self.net.pump_wall_s)
        finally:
            self.clock.pause()
            self.clock.clamp(until)
            self._run_until = None
        if not engine._running:
            engine.run(until=until)
        await self._drain()
        self._order_log()

    async def _setup(self) -> None:
        """Bring the deployment up: coordinator, servers, audience."""
        system = self.system
        net = self.net
        system.loop = asyncio.get_running_loop()
        coordinator = NetCoordinator(
            system.cfg,
            net=net,
            engine=system.engine,
            rng=system.rng,
            geometry=system.geometry,
            log=system.log,
            stats=system.stats,
        )
        try:
            await coordinator.start()
        except OSError as exc:
            raise BackendStartupError(
                f"cannot bind coordinator to {net.host}:{net.port}: {exc}"
            ) from exc
        self.coordinator = coordinator
        system.coordinator_address = coordinator.address
        system.pump = self._pump
        coordinator.pump = self._pump

        for i in range(system.cfg.n_servers):
            server = NetServer(system, node_id=i + 1)
            system._nodes[server.node_id] = server
            system.servers.append(server)
            system.spawn_task(server.start_net())
        startup_wall = (net.connect_timeout_s * (net.connect_retries + 1)
                        + 5.0)
        try:
            await asyncio.wait_for(
                asyncio.gather(*(s.ready.wait() for s in system.servers)),
                timeout=startup_wall,
            )
        except asyncio.TimeoutError as exc:
            raise BackendStartupError(
                "dedicated servers failed to register with the coordinator "
                f"at {coordinator.address} within {startup_wall:.0f}s"
            ) from exc

        if self._times is None:
            raise RuntimeError("apply_workload() must be called before run()")
        schedule = ProgramSchedule(endings=tuple(sorted(self._endings)))
        self.population = UserPopulation(
            system,
            arrival_times=self._times,
            durations=self._durations,
            duration_model=self.scenario.duration_model,
            schedule=schedule,
            silent_leave_prob=self.scenario.silent_leave_prob,
        )
        self.population.attach()

    def _pump(self) -> None:
        """Fire due virtual-time events.  Reentrancy-guarded: callers
        inside an engine callback (which may send frames synchronously)
        become no-ops."""
        engine = self.system.engine
        if engine._running:
            return
        target = self.clock.now()
        if self._run_until is not None and target > self._run_until:
            target = self._run_until
        if target > engine.now:
            engine.run(until=target)

    async def _drain(self) -> None:
        """Wait (bounded, wall-clock) until frame traffic quiesces so
        in-flight LOG/BM frames land before the log is read."""
        stats = self.system.stats
        last = -1
        for _ in range(200):
            current = stats.messages_sent + stats.messages_received
            if current == last:
                return
            last = current
            await asyncio.sleep(self.net.drain_wall_s)

    def _order_log(self) -> None:
        """Stable-sort an in-memory log by virtual arrival time: frames
        from independent connections interleave slightly out of order,
        and downstream folds expect arrival-ordered entries."""
        sink = self.system.log.sink
        if isinstance(sink, MemorySink):
            sink._entries.sort(key=attrgetter("arrival_time"))

    # -- teardown ------------------------------------------------------
    def close(self) -> None:
        """Release every socket and the private event loop.  Idempotent;
        the collected log and metric snapshots stay readable."""
        if self._closed or self._loop is None:
            self._closed = True
            return
        self._closed = True

        async def _teardown() -> None:
            for node in list(self.system._nodes.values()):
                close_sockets = getattr(node, "close_sockets", None)
                if close_sockets is not None:
                    close_sockets()
            if self.coordinator is not None:
                self.coordinator.close()
            await asyncio.sleep(0)

        self._loop.run_until_complete(_teardown())
        pending = asyncio.all_tasks(self._loop)
        for task in pending:
            task.cancel()
        if pending:
            self._loop.run_until_complete(
                asyncio.gather(*pending, return_exceptions=True))
        self._loop.close()
        self._loop = None

    # -- views ---------------------------------------------------------
    @property
    def log(self) -> LogServer:
        """The coordinator-collected telemetry log."""
        return self.system.log

    def snapshot_metrics(self) -> Dict[str, float]:
        """Deployment-side ground truth plus transport counters."""
        system = self.system
        summary = system.summary()
        out: Dict[str, float] = {
            "concurrent_users": float(system.concurrent_users),
            "playing_users": float(summary["playing"]),
            "sessions_spawned": float(system.sessions_spawned),
            "mean_continuity": float(summary["mean_continuity"]),
        }
        if self.population is not None:
            out["success_fraction"] = self.population.success_fraction()
            out["adaptations"] = float(sum(
                p.adaptation_count for p in system.peers(alive_only=False)
            ))
        out.update(system.stats.as_dict())
        return out
