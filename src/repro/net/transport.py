"""Framed asyncio transport: listeners, links, dial-with-retry.

A :class:`Link` is one TCP connection carrying codec frames; a
:class:`PeerTransport` is one node's network identity -- its listening
socket plus every link it holds, keyed by the remote's node id (learned
from the HELLO frame that opens every dialled connection).

Delivery semantics mirror the simulator's RPC fabric: sends are
fire-and-forget (a send to a vanished peer is dropped, not raised) and a
broken connection surfaces as churn -- the owner's ``on_link_lost`` hook
fires, which the net peer maps to the same partner-drop path a BM-silence
timeout takes.  Connect attempts get timeout/retry/exponential-backoff
(:class:`~repro.net.config.NetConfig`); exhausted retries count as
``net.connect_failures``.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, Optional, Tuple

from repro.net.codec import CodecError, FrameDecoder, MsgType, encode_frame
from repro.obs import inc as _obs_inc

__all__ = ["NetStats", "Link", "PeerTransport"]


class NetStats:
    """Deployment-wide transport counters (one instance per backend).

    Mirrored into ambient obs counters under ``net.*``; kept locally too
    so benchmarks and snapshots can read them with observability off.
    """

    __slots__ = ("messages_sent", "messages_received", "bytes_sent",
                 "bytes_received", "connect_failures", "connect_retries",
                 "retransmits", "frames_rejected")

    def __init__(self) -> None:
        self.messages_sent = 0
        self.messages_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.connect_failures = 0
        self.connect_retries = 0
        self.retransmits = 0
        self.frames_rejected = 0

    def as_dict(self) -> Dict[str, float]:
        """Snapshot for metrics/benchmarks."""
        return {f"net.{name}": float(getattr(self, name))
                for name in self.__slots__}


MessageHandler = Callable[["Link", MsgType, Dict[str, Any]], None]
LinkLostHandler = Callable[["Link"], None]


class Link:
    """One framed TCP connection to a remote node."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        stats: NetStats,
        max_frame_bytes: int,
        remote_id: Optional[int] = None,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._stats = stats
        self._decoder = FrameDecoder(max_frame_bytes=max_frame_bytes)
        self._max_frame = max_frame_bytes
        self.remote_id = remote_id
        self.closed = False
        self._read_task: Optional[asyncio.Task] = None

    def send(self, msg_type: MsgType, payload: Dict[str, Any]) -> bool:
        """Write one frame; False (never raises) when the link is down."""
        if self.closed:
            return False
        try:
            frame = encode_frame(msg_type, payload,
                                 max_frame_bytes=self._max_frame)
            self._writer.write(frame)
        except (CodecError, ConnectionError, RuntimeError, OSError):
            self.close()
            return False
        stats = self._stats
        stats.messages_sent += 1
        stats.bytes_sent += len(frame)
        _obs_inc("net.messages_sent")
        _obs_inc("net.bytes_sent", len(frame))
        return True

    def start_reading(self, on_message: MessageHandler,
                      on_lost: LinkLostHandler) -> None:
        """Spawn the read loop; ``on_lost`` fires once on EOF/error."""
        self._read_task = asyncio.ensure_future(
            self._read_loop(on_message, on_lost))

    async def _read_loop(self, on_message: MessageHandler,
                         on_lost: LinkLostHandler) -> None:
        stats = self._stats
        try:
            while True:
                data = await self._reader.read(65536)
                if not data:
                    break
                stats.bytes_received += len(data)
                _obs_inc("net.bytes_received", len(data))
                for msg_type, payload in self._decoder.feed(data):
                    stats.messages_received += 1
                    _obs_inc("net.messages_received")
                    on_message(self, msg_type, payload)
        except CodecError:
            # a peer speaking garbage loses its connection, nothing more
            stats.frames_rejected += 1
            _obs_inc("net.frames_rejected")
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            self.close()
            on_lost(self)

    def close(self) -> None:
        """Close the underlying connection.  Idempotent; buffered writes
        are flushed by the OS before FIN."""
        if self.closed:
            return
        self.closed = True
        try:
            self._writer.close()
        except (ConnectionError, RuntimeError, OSError):  # pragma: no cover
            pass

    def cancel(self) -> None:
        """Tear down abruptly (kill-peer harnesses): stop reading too."""
        self.close()
        if self._read_task is not None:
            self._read_task.cancel()


async def dial(
    host: str,
    port: int,
    *,
    timeout_s: float,
    retries: int,
    backoff_s: float,
    stats: NetStats,
) -> Optional[Tuple[asyncio.StreamReader, asyncio.StreamWriter]]:
    """Connect with timeout/retry/exponential backoff.

    Returns ``None`` after the final attempt fails (counted as one
    ``net.connect_failures``); intermediate failures count as
    ``net.connect_retries``.
    """
    delay = backoff_s
    for attempt in range(retries + 1):
        try:
            return await asyncio.wait_for(
                asyncio.open_connection(host, port), timeout=timeout_s)
        except (ConnectionError, OSError, asyncio.TimeoutError):
            if attempt == retries:
                break
            stats.connect_retries += 1
            _obs_inc("net.connect_retries")
            await asyncio.sleep(delay)
            delay *= 2
    stats.connect_failures += 1
    _obs_inc("net.connect_failures")
    return None


class PeerTransport:
    """One node's sockets: a listener plus links keyed by remote node id.

    ``on_message``/``on_link_lost`` are installed by the owning peer;
    every dialled connection self-identifies with a HELLO frame so the
    acceptor can key the link before protocol traffic flows.
    """

    def __init__(
        self,
        node_id: int,
        *,
        net,
        stats: NetStats,
        on_message: MessageHandler,
        on_link_lost: LinkLostHandler,
    ) -> None:
        self.node_id = node_id
        self._net = net
        self._stats = stats
        self._on_message = on_message
        self._on_link_lost = on_link_lost
        self.links: Dict[int, Link] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self.address: Optional[Tuple[str, int]] = None
        self._dialing: Dict[int, asyncio.Task] = {}
        self.closed = False

    # --- listener -----------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind the listening socket (ephemeral port) and return its
        address."""
        self._server = await asyncio.start_server(
            self._accept, host=self._net.host, port=0)
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]
        return self.address

    async def _accept(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        link = Link(reader, writer, stats=self._stats,
                    max_frame_bytes=self._net.max_frame_bytes)
        link.start_reading(self._dispatch, self._lost)

    # --- inbound ------------------------------------------------------
    def _dispatch(self, link: Link, msg_type: MsgType,
                  payload: Dict[str, Any]) -> None:
        if self.closed:
            return
        if msg_type is MsgType.HELLO:
            try:
                remote = int(payload["node_id"])
            except (KeyError, TypeError, ValueError):
                link.close()
                return
            link.remote_id = remote
            old = self.links.get(remote)
            if old is not None and old is not link:
                old.close()
            self.links[remote] = link
            # fall through: the owner learns the dialler's listen address
        self._on_message(link, msg_type, payload)

    def _lost(self, link: Link) -> None:
        if link.remote_id is not None:
            if self.links.get(link.remote_id) is link:
                del self.links[link.remote_id]
        if not self.closed:
            self._on_link_lost(link)

    # --- outbound -----------------------------------------------------
    def send(self, dst: int, msg_type: MsgType,
             payload: Dict[str, Any]) -> bool:
        """Send on an existing link; False when there is none (the net
        analogue of an RPC to a departed node -- dropped silently)."""
        link = self.links.get(dst)
        if link is None or link.closed:
            return False
        return link.send(msg_type, payload)

    def connect_and_send(
        self,
        dst: int,
        address: Tuple[str, int],
        msg_type: MsgType,
        payload: Dict[str, Any],
        *,
        on_failure: Optional[Callable[[int], None]] = None,
    ) -> None:
        """Dial ``dst`` (async, with retry/backoff) and send one frame.

        Used for partnership establishment -- the only message legal on a
        fresh connection.  If a link already exists the frame goes on it;
        if a dial to ``dst`` is in flight the call is dropped (the
        partnership layer's pending-request bookkeeping prevents this).
        """
        if self.send(dst, msg_type, payload):
            return
        if dst in self._dialing or self.closed:
            return
        task = asyncio.ensure_future(
            self._dial_and_send(dst, address, msg_type, payload, on_failure))
        self._dialing[dst] = task
        task.add_done_callback(lambda _t: self._dialing.pop(dst, None))

    async def _dial_and_send(self, dst, address, msg_type, payload,
                             on_failure) -> None:
        conn = await dial(
            address[0], address[1],
            timeout_s=self._net.connect_timeout_s,
            retries=self._net.connect_retries,
            backoff_s=self._net.connect_backoff_s,
            stats=self._stats,
        )
        if conn is None or self.closed:
            if conn is not None:
                conn[1].close()
            if on_failure is not None and not self.closed:
                on_failure(dst)
            return
        reader, writer = conn
        link = Link(reader, writer, stats=self._stats,
                    max_frame_bytes=self._net.max_frame_bytes,
                    remote_id=dst)
        old = self.links.get(dst)
        if old is not None:
            old.close()
        self.links[dst] = link
        link.start_reading(self._dispatch, self._lost)
        host, port = self.address if self.address else (self._net.host, 0)
        link.send(MsgType.HELLO,
                  {"node_id": self.node_id, "host": host, "port": port})
        link.send(msg_type, payload)

    def drop_link(self, dst: int) -> None:
        """Close the link to ``dst`` (graceful close already sent)."""
        link = self.links.pop(dst, None)
        if link is not None:
            link.close()

    # --- teardown -----------------------------------------------------
    def close(self, *, abort: bool = False) -> None:
        """Close the listener and every link.  ``abort`` models a crash:
        read loops are cancelled so no goodbye of any kind escapes."""
        self.closed = True
        for task in list(self._dialing.values()):
            task.cancel()
        self._dialing.clear()
        for link in list(self.links.values()):
            if abort:
                link.cancel()
            else:
                link.close()
        self.links.clear()
        if self._server is not None:
            self._server.close()
            self._server = None
