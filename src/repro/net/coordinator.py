"""The bootstrap/origin coordinator: one asyncio server per deployment.

The coordinator plays the three infrastructure roles of the measured
system that are not peers:

* **boot-strap node** -- channel registration and mCache seeding.  It
  embeds a real :class:`~repro.core.source.BootstrapNode` (same sampling
  rules, same ``"bootstrap"`` rng stream, same guaranteed-server top-up)
  and answers PEERS_REQUEST frames from its registry;
* **stream origin** -- a real :class:`~repro.core.source.SourceNode`
  runs on the shared virtual-time engine and pushes block intervals to
  every registered dedicated server as BLOCKS frames down the server's
  registration link (the source schedule *is* the simulator's source
  schedule);
* **log server** -- LOG_REPORT frames feed the standard
  :class:`~repro.telemetry.server.LogServer`, so the collected log is
  byte-compatible with a simulated run's.

The embedded protocol objects talk to remote servers through
:class:`_ServerStub` handles, which translate the simulator's direct
``deliver_blocks`` calls into frames -- the coordinator-side twin of the
peers' transport substitution.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, Optional, Tuple

from repro.core.blocks import StreamGeometry
from repro.core.config import SystemConfig
from repro.core.source import BootstrapNode, SourceNode
from repro.net.codec import CodecError, MsgType, decode_entry, encode_entry
from repro.net.config import NetConfig
from repro.net.transport import Link, NetStats
from repro.obs import inc as _obs_inc
from repro.sim.engine import Engine
from repro.sim.rng import RngHub
from repro.telemetry.server import LogServer

__all__ = ["NetCoordinator"]


class _NullLatency:
    """Latency registrar stand-in for the embedded protocol objects."""

    def register(self, node_id: int, rng) -> None:
        """No-op."""

    def unregister(self, node_id: int) -> None:
        """No-op."""


class _ServerStub:
    """Remote dedicated server as seen by the embedded origin.

    ``SourceNode`` pushes by calling ``child.deliver_blocks`` on whatever
    ``system.get_node`` returns; this stub forwards the call as a BLOCKS
    frame on the server's registration link.
    """

    is_server = True

    def __init__(self, node_id: int, link: Link) -> None:
        self.node_id = node_id
        self._link = link

    @property
    def alive(self) -> bool:
        """A server is alive while its registration link is."""
        return not self._link.closed

    def deliver_blocks(self, from_id: int, substream: int, first: int,
                       last: int) -> None:
        """Forward one pushed interval over the wire."""
        self._link.send(MsgType.BLOCKS, {
            "substream": substream, "first": first, "last": last})

    def rpc_bm_update(self, from_id: int, bm) -> None:
        """Origin freshness pokes: servers never partner with the source,
        so the update would be a no-op on the far side -- drop it here."""


class _CoordSystem:
    """Minimal ``CoolstreamingSystem`` surface for the embedded
    :class:`BootstrapNode` and :class:`SourceNode`."""

    def __init__(self, cfg: SystemConfig, engine: Engine, rng: RngHub,
                 geometry: StreamGeometry) -> None:
        self.cfg = cfg
        self.engine = engine
        self.rng = rng
        self.geometry = geometry
        self.latency = _NullLatency()
        self._stubs: Dict[int, _ServerStub] = {}

    def get_node(self, node_id: int):
        """Only the registered server stubs are addressable here."""
        return self._stubs.get(node_id)


class NetCoordinator:
    """Registration, peer-list, telemetry and origin endpoint."""

    def __init__(
        self,
        cfg: SystemConfig,
        *,
        net: NetConfig,
        engine: Engine,
        rng: RngHub,
        geometry: StreamGeometry,
        log: LogServer,
        stats: NetStats,
    ) -> None:
        self.cfg = cfg
        self.net = net
        self.log = log
        self.stats = stats
        self._system = _CoordSystem(cfg, engine, rng, geometry)
        self.bootstrap = BootstrapNode(self._system)
        self.source = SourceNode(self._system)
        #: node id -> listen address, as registered / learned
        self.addresses: Dict[int, Tuple[str, int]] = {}
        self.links: Dict[int, Link] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self.address: Optional[Tuple[str, int]] = None
        #: engine pump installed by the backend
        self.pump: Callable[[], None] = lambda: None

    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind the coordinator socket; raises ``OSError`` (e.g. address
        in use) for the backend to convert into a startup failure."""
        self._server = await asyncio.start_server(
            self._accept, host=self.net.host, port=self.net.port)
        self.address = self._server.sockets[0].getsockname()[:2]
        return self.address

    async def _accept(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        link = Link(reader, writer, stats=self.stats,
                    max_frame_bytes=self.net.max_frame_bytes)
        link.start_reading(self._on_frame, self._on_lost)

    # ------------------------------------------------------------------
    def _on_frame(self, link: Link, msg_type: MsgType,
                  payload: Dict[str, Any]) -> None:
        self.pump()
        try:
            if msg_type is MsgType.LOG_REPORT:
                self.log.receive(float(payload["t"]), str(payload["line"]))
            elif msg_type is MsgType.REGISTER:
                self._register(link, payload)
            elif msg_type is MsgType.PEERS_REQUEST:
                self._serve_peers(link)
            elif msg_type is MsgType.UNREGISTER:
                self.bootstrap.unregister(int(payload["node_id"]))
            else:
                raise CodecError(f"{msg_type.name} is not a coordinator message")
        except (CodecError, KeyError, TypeError, ValueError):
            self.stats.frames_rejected += 1
            _obs_inc("net.frames_rejected")
            link.close()

    def _register(self, link: Link, payload: Dict[str, Any]) -> None:
        entry, address = decode_entry(payload["entry"])
        node_id = entry.node_id
        link.remote_id = node_id
        self.links[node_id] = link
        if address is not None:
            self.addresses[node_id] = address
        self.bootstrap.register(entry)
        if payload.get("server"):
            # attach the server to the origin at its current live edge
            # (the net analogue of DedicatedServer.start reading
            # source.heads directly) and acknowledge with the offset
            self._system._stubs[node_id] = _ServerStub(node_id, link)
            start = max(0, min(self.source.heads))
            for sub in range(self.cfg.n_substreams):
                self.source.rpc_subscribe(node_id, sub, start)
            link.send(MsgType.REGISTER_OK, {"start": start})

    def _serve_peers(self, link: Link) -> None:
        if link.remote_id is None:
            raise CodecError("PEERS_REQUEST before REGISTER")
        entries = self.bootstrap.sample_for(link.remote_id)
        link.send(MsgType.PEERS_REPLY, {"entries": [
            encode_entry(e, self.addresses.get(e.node_id)) for e in entries
        ]})

    def _on_lost(self, link: Link) -> None:
        """A registration link died: dead-TCP detection stands in for the
        explicit UNREGISTER an abrupt departure never sends."""
        node_id = link.remote_id
        if node_id is None:
            return
        if self.links.get(node_id) is link:
            del self.links[node_id]
        if node_id in self._system._stubs:
            del self._system._stubs[node_id]
            self.source.rpc_partner_close(node_id)
        self.bootstrap.unregister(node_id)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the listener and every registration link."""
        for link in list(self.links.values()):
            link.cancel()
        self.links.clear()
        if self._server is not None:
            self._server.close()
            self._server = None
