"""repro.net -- the real-network Coolstreaming backend (localhost sockets).

Every other backend in this repo is a simulator.  This package runs the
*actual* protocol -- mCache gossip, partnership establishment, buffer-map
exchange, push/pull block scheduling -- over real TCP connections on
localhost, in the coordinator/peer style ROADMAP item 3 calls for:

* a **coordinator** (:mod:`repro.net.coordinator`): one asyncio server
  handling channel registration, mCache seeding for joiners, telemetry
  log collection, and block injection from the source schedule (it embeds
  the stream origin);
* **peer tasks** (:mod:`repro.net.peer`): each peer owns a listening
  socket and a set of framed connections, and exchanges length-prefixed,
  versioned wire messages (:mod:`repro.net.codec`) with its partners;
* a **wall-clock -> virtual-time mapping** (:mod:`repro.net.clock`): the
  protocol runs against virtual seconds derived from the host clock, so
  workload arrival/departure schedules replay faithfully and a 900 s
  scenario finishes in tens of wall seconds.

Fidelity comes from reuse, not reimplementation: :class:`~repro.net.peer.
NetPeer` subclasses the reference :class:`~repro.core.node.PeerNode` and
overrides only the transport (the RPC fabric becomes socket frames), so
offset choice, adaptation Inequalities (1)/(2), patience, the stall
watchdog and the water-filled upload scheduler are byte-for-byte the
``core/`` objects.  Peers report through the standard
:class:`~repro.telemetry.reporter.NodeReporter`, shipping the same log
strings over LOG frames, so every analysis fold, figure reconstruction
and ``python -m repro watch`` view works unchanged on real runs.

Entry point: :class:`repro.net.backend.NetBackend`, registered with the
runtime as engine ``"net"`` (``run_scenario(..., engine="net")``,
``--engine net``, ``python -m repro parity --engines detailed,net``).
"""

from repro.net.config import NetConfig

__all__ = ["NetConfig"]
