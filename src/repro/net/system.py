"""The deployment façade: a ``CoolstreamingSystem`` look-alike over sockets.

:class:`NetSystem` exposes the exact attribute surface the reference
protocol objects consume -- ``cfg``/``geometry``/``engine``/``rng``,
``bootstrap``, ``make_reporter``, ``spawn_peer``, ``rpc`` -- but its RPC
fabric encodes wire frames and writes them to real TCP connections
instead of scheduling a latency-delayed callback.  That substitution is
the whole trick: :class:`~repro.core.node.PeerNode` logic, the
:class:`~repro.workload.users.UserPopulation` and the
:class:`~repro.telemetry.reporter.NodeReporter` all run unmodified on
top of it.

Time: the façade's :class:`~repro.sim.engine.Engine` is a real simulation
engine used as a virtual-time timer wheel.  The backend pumps it from the
wall clock (``engine.run(until=clock.now())``), so every ``PeriodicTask``
and delayed callback the reused protocol code creates fires at the right
virtual instant, interleaved with socket I/O.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.blocks import StreamGeometry
from repro.core.config import SystemConfig
from repro.core.membership import MCacheEntry
from repro.core.node import NodeState, PeerNode
from repro.net.codec import MsgType, encode_entry
from repro.net.config import NetConfig
from repro.net.transport import NetStats
from repro.network.capacity import CapacityModel
from repro.network.connectivity import ConnectivityClass, ConnectivityMix
from repro.obs import context as _obs_context
from repro.sim.engine import Engine
from repro.sim.rng import RngHub
from repro.telemetry.logstring import encode_log_string
from repro.telemetry.reporter import NodeReporter
from repro.telemetry.reports import Report
from repro.telemetry.server import LogServer

__all__ = ["NetSystem", "RemoteLogProxy", "CoordinatorProxy"]


class _NullLatency:
    """Latency-model stand-in: the real network provides the delays."""

    def register(self, node_id: int, rng) -> None:
        """No-op (sockets do not need registered endpoints)."""

    def unregister(self, node_id: int) -> None:
        """No-op."""


class RemoteLogProxy:
    """``LogServer`` stand-in handed to a peer's :class:`NodeReporter`.

    The reporter schedules ``receive_report(t, report)`` one uplink delay
    out on the engine -- exactly as in the simulator -- and this proxy
    turns the firing into a LOG_REPORT frame to the coordinator, which
    feeds its real :class:`~repro.telemetry.server.LogServer` the same
    log string.  Frames ride the peer's coordinator link, which outlives
    the session (a crash -- silent leave -- severs it, losing the final
    status window exactly like the deployed collector).
    """

    def __init__(self, peer) -> None:
        self._peer = peer

    def receive_report(self, arrival_time: float, report: Report) -> None:
        """Encode and ship one report line."""
        line = encode_log_string(report.to_params())
        self._peer.send_coord(
            MsgType.LOG_REPORT, {"t": float(arrival_time), "line": line})


class CoordinatorProxy:
    """Bootstrap-node stand-in: the registration RPCs become frames.

    Matches the :class:`~repro.core.source.BootstrapNode` call surface
    used by ``PeerNode`` (``register``/``request_list``/``unregister``),
    so the reused join and maintenance paths talk to the coordinator
    without knowing it lives across a socket.
    """

    def __init__(self, system: "NetSystem") -> None:
        self._system = system

    def register(self, entry: MCacheEntry) -> None:
        """Announce a node to the channel (REGISTER frame)."""
        peer = self._system._nodes.get(entry.node_id)
        if peer is None:
            return
        address = peer.transport.address or (self._system.net.host, 0)
        peer.send_coord(MsgType.REGISTER, {
            "entry": encode_entry(entry, address),
            "server": bool(peer.is_server),
        })

    def request_list(self, node) -> None:
        """Ask for a fresh peer list (PEERS_REQUEST frame)."""
        node.send_coord(MsgType.PEERS_REQUEST, {})

    def unregister(self, node_id: int) -> None:
        """Graceful departure (UNREGISTER frame); dropped when the link
        is already gone -- the coordinator notices the dead TCP anyway."""
        peer = self._system._nodes.get(node_id)
        if peer is not None:
            peer.send_coord(MsgType.UNREGISTER, {"node_id": int(node_id)})


class NetSystem:
    """One real-network Coolstreaming deployment (peer side).

    Owns the node registry and the shared virtual-time engine; the
    coordinator (bootstrap + origin + log intake) is a separate object
    reachable only through sockets, exactly like the deployed system.
    """

    def __init__(
        self,
        cfg: Optional[SystemConfig] = None,
        *,
        seed: int = 0,
        net: Optional[NetConfig] = None,
        capacity_model: Optional[CapacityModel] = None,
        connectivity_mix: Optional[ConnectivityMix] = None,
        log_server: Optional[LogServer] = None,
    ) -> None:
        self.cfg = cfg or SystemConfig()
        self.net = net or NetConfig()
        self.engine = Engine()
        self.rng = RngHub(seed)
        self.geometry = StreamGeometry(self.cfg.n_substreams)
        self.latency = _NullLatency()
        self.capacity = capacity_model or CapacityModel()
        self.mix = connectivity_mix or ConnectivityMix()
        #: the coordinator's log (same process; read-only on this side)
        self.log = log_server or LogServer()
        self.stats = NetStats()
        self.bootstrap = CoordinatorProxy(self)
        #: coordinator listen address; set by the backend once bound
        self.coordinator_address: Optional[Tuple[str, int]] = None
        #: engine pump installed by the backend (reentrancy-guarded)
        self.pump: Callable[[], None] = lambda: None
        #: event loop peers spawn their I/O tasks on (set by the backend)
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        #: strong refs to in-flight background tasks -- the loop only
        #: keeps weak ones, so an unreferenced task can be collected
        #: mid-flight and die without ever raising (ASY003)
        self._bg_tasks: set = set()

        _ctx = _obs_context.current()
        if _ctx is not None:
            _ctx.note_seed(seed)
            _ctx.note_config(self.cfg)
            if (_ctx.progress is not None
                    and _ctx.progress.live_peers_fn is None):
                _ctx.progress.live_peers_fn = lambda: self.concurrent_users
            if "run.live_peers" not in _ctx.gauge_providers:
                _ctx.register_gauge_provider(
                    "run.live_peers", lambda: self.concurrent_users)

        self._nodes: Dict[int, object] = {}
        self._next_node_id = 1000
        self._next_session_id = 1
        self.sessions_spawned = 0
        self.servers: List[PeerNode] = []

    # ------------------------------------------------------------------
    # registry & RPC fabric
    # ------------------------------------------------------------------
    def get_node(self, node_id: int):
        """Node object by id (None when unknown).  Only locally-hosted
        nodes are visible -- remote state arrives via frames."""
        return self._nodes.get(node_id)

    def rpc(self, src_id: int, dst_id: int, method: str, *args) -> None:
        """The transport substitution point: the reference node's RPCs
        become wire frames sent from ``src``'s sockets."""
        sender = self._nodes.get(src_id)
        if sender is not None and getattr(sender, "alive", False):
            sender.send_rpc(dst_id, method, args)

    def make_reporter(self, node: PeerNode):
        """Telemetry agent wired to ship over the coordinator link."""
        if node.is_server:
            from repro.core.system import NullReporter
            return NullReporter()
        return NodeReporter(
            self.engine,
            RemoteLogProxy(node),
            node_id=node.node_id,
            user_id=node.user_id,
            session_id=node.session_id,
            uplink_delay_s=0.05,
            status_period_s=self.cfg.status_report_period_s,
            address_public=node.connectivity.has_public_address,
        )

    # ------------------------------------------------------------------
    # population management
    # ------------------------------------------------------------------
    def spawn_peer(
        self,
        *,
        user_id: int,
        attempt: int = 1,
        connectivity: Optional[ConnectivityClass] = None,
        upload_bps: Optional[float] = None,
    ):
        """Create a peer and bring its sockets up asynchronously.

        Mirrors ``CoolstreamingSystem.spawn_peer`` (same rng stream, same
        id assignment) but the join itself -- listener bind, coordinator
        dial, REGISTER -- happens on the event loop; the node object is
        returned immediately so the workload layer can hook it.
        """
        from repro.net.peer import NetPeer

        rng = self.rng.stream("population")
        if connectivity is None:
            connectivity = self.mix.sample(rng)
        if upload_bps is None:
            upload_bps = self.capacity.sample_upload(connectivity, rng)
        node_id = self._next_node_id
        self._next_node_id += 1
        session_id = self._next_session_id
        self._next_session_id += 1
        node = NetPeer(
            self,
            node_id=node_id,
            user_id=user_id,
            session_id=session_id,
            attempt=attempt,
            connectivity=connectivity,
            upload_bps=upload_bps,
        )
        self._nodes[node_id] = node
        self.sessions_spawned += 1
        self.spawn_task(node.start_net())
        return node

    def spawn_task(self, coro) -> None:
        """Run a coroutine on the deployment's event loop.

        The returned task is kept in :attr:`_bg_tasks` until done;
        without that strong reference the loop's weak tracking would
        let a busy GC collect the task before it finishes.
        """
        assert self.loop is not None, "backend must install the event loop"
        task = self.loop.create_task(coro)
        self._bg_tasks.add(task)
        task.add_done_callback(self._bg_tasks.discard)

    def on_node_left(self, node: PeerNode) -> None:
        """Callback from a leaving node (registry keeps the dead object,
        like the simulator, so post-run inspection works)."""

    # ------------------------------------------------------------------
    # views (same shapes as CoolstreamingSystem)
    # ------------------------------------------------------------------
    def peers(self, *, alive_only: bool = True) -> List[PeerNode]:
        """All user peers (never servers)."""
        out = []
        for node in self._nodes.values():
            if isinstance(node, PeerNode) and not node.is_server:
                if not alive_only or node.alive:
                    out.append(node)
        return out

    @property
    def concurrent_users(self) -> int:
        """Alive user peers right now."""
        return sum(
            1 for n in self._nodes.values()
            if isinstance(n, PeerNode) and not n.is_server and n.alive
        )

    def summary(self) -> Dict[str, float]:
        """Quick aggregate health snapshot (deployment-side)."""
        peers = self.peers(alive_only=True)
        playing = [p for p in peers if p.state is NodeState.PLAYING]
        cont = [
            p.playback.continuity_index for p in playing if p.playback is not None
        ]
        return {
            "time": self.engine.now,
            "concurrent_users": float(len(peers)),
            "playing": float(len(playing)),
            "mean_continuity": (sum(cont) / len(cont)) if cont else float("nan"),
            "sessions_spawned": float(self.sessions_spawned),
            "log_entries": float(len(self.log)),
        }
