"""Network peers: the reference protocol objects over real sockets.

:class:`NetPeer` subclasses :class:`~repro.core.node.PeerNode` and
overrides *only* the transport touchpoints -- where the simulator pokes a
peer object directly (gossip, BM broadcast, block push) or goes through
the latency-scheduled RPC fabric (partnership, subscription, pull).
Everything that makes the protocol the paper's protocol -- offset choice,
adaptation Inequalities (1)/(2), join patience, the stall watchdog, the
water-filled upload scheduler, telemetry cadence -- is inherited
unchanged and exercised over TCP.

The frame dispatch below is the inverse mapping: an incoming wire
message decodes its fields and calls the *inherited* ``rpc_*`` handler,
with the sender identity taken from the connection (the HELLO-registered
``link.remote_id``), never from the payload.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional, Tuple

from repro.core.buffer import SyncBuffer
from repro.core.node import NodeState, PeerNode
from repro.core.source import SOURCE_ID
from repro.net.codec import (
    CodecError,
    MsgType,
    decode_bm,
    decode_entry,
    decode_pull_requests,
    encode_bm,
    encode_entry,
    encode_pull_requests,
)
from repro.net.transport import Link, PeerTransport, dial
from repro.network.connectivity import ConnectivityClass
from repro.obs import context as _obs_context
from repro.obs import inc as _obs_inc
from repro.telemetry.reports import LeaveReason

__all__ = ["NetPeer", "NetServer"]

#: the coordinator's id on a peer's coordinator link (it is not a peer)
COORDINATOR_ID = -1


class NetPeer(PeerNode):
    """One real session of one peer: a ``PeerNode`` whose messages travel
    over sockets."""

    def __init__(self, system, **kwargs) -> None:
        super().__init__(system, **kwargs)
        self.transport = PeerTransport(
            self.node_id,
            net=system.net,
            stats=system.stats,
            on_message=self._on_frame,
            on_link_lost=self._on_link_lost,
        )
        #: node id -> (host, port) listen addresses learned from the
        #: coordinator, gossip, partner requests and HELLOs
        self.addresses: Dict[int, Tuple[str, int]] = {}
        self.coord_link: Optional[Link] = None

    # ------------------------------------------------------------------
    # bring-up / teardown
    # ------------------------------------------------------------------
    async def start_net(self) -> None:
        """Bind the listener, dial the coordinator, then run the normal
        (inherited) join sequence."""
        net = self.system.net
        await self.transport.start()
        assert self.system.coordinator_address is not None
        host, port = self.system.coordinator_address
        conn = await dial(
            host, port,
            timeout_s=net.connect_timeout_s,
            retries=net.connect_retries,
            backoff_s=net.connect_backoff_s,
            stats=self.system.stats,
        )
        if not self.alive:
            # the user already gave up (ultra-short session)
            if conn is not None:
                conn[1].close()
            self.transport.close()
            return
        if conn is None:
            # coordinator unreachable: the join fails like a crash -- the
            # workload layer sees the failure and applies its retry policy
            self.transport.close()
            self.leave(LeaveReason.FAILURE, silent=True)
            return
        self.coord_link = Link(
            conn[0], conn[1],
            stats=self.system.stats,
            max_frame_bytes=net.max_frame_bytes,
            remote_id=COORDINATOR_ID,
        )
        self.coord_link.start_reading(self._on_coord_frame, self._on_coord_lost)
        self.system.pump()
        self._protocol_start()

    def _protocol_start(self) -> None:
        """The join sequence proper (split out so the server variant can
        replace it)."""
        PeerNode.start(self)

    def start(self) -> None:  # pragma: no cover - guard
        raise RuntimeError("net peers start via start_net()")

    def send_coord(self, msg_type: MsgType, payload: Dict[str, Any]) -> bool:
        """Ship one frame to the coordinator (False when the link is gone)."""
        if self.coord_link is None or self.coord_link.closed:
            return False
        return self.coord_link.send(msg_type, payload)

    def leave(self, reason: LeaveReason, *, silent: bool = False) -> None:
        """End the session; sockets mirror the departure style.

        A silent (abrupt) leave aborts every connection *first* so no
        goodbye of any kind escapes -- partners discover the death via
        EOF or BM silence, and the final status window never reaches the
        log, exactly like the deployed system.  A graceful leave sends
        the inherited notifications, then closes peer links; the
        coordinator link stays open so the engine-delayed LEAVE report
        frames still ship (backend teardown reaps it).
        """
        if self.state is NodeState.LEFT:
            return
        if silent:
            self.transport.close(abort=True)
            if self.coord_link is not None:
                self.coord_link.cancel()
        super().leave(reason, silent=silent)
        if not silent:
            self.transport.close()

    # ------------------------------------------------------------------
    # outbound: the RPC fabric becomes frames
    # ------------------------------------------------------------------
    def send_rpc(self, dst: int, method: str, args: tuple) -> None:
        """Encode one reference-node RPC as a wire frame to ``dst``.

        ``args[0]`` is always the sender id (the wire carries identity in
        the connection instead).  Unknown destinations behave like the
        simulator's RPCs to departed nodes: dropped silently.
        """
        t = self.transport
        if method == "rpc_partner_request":
            address = self.addresses.get(dst)
            if address is None:
                self._partner_dial_failed(dst)
                return
            payload = {"entry": encode_entry(args[1], t.address)}
            t.connect_and_send(dst, address, MsgType.PARTNER_REQUEST, payload,
                               on_failure=self._partner_dial_failed)
        elif method == "rpc_partner_reply":
            _, accept, bm, entry = args
            t.send(dst, MsgType.PARTNER_REPLY, {
                "accept": bool(accept),
                "bm": encode_bm(bm) if bm is not None else None,
                "entry": (encode_entry(entry, t.address)
                          if entry is not None else None),
            })
            if not accept:
                t.drop_link(dst)
        elif method == "rpc_bm_update":
            t.send(dst, MsgType.BM_UPDATE, {"bm": encode_bm(args[1])})
        elif method == "rpc_partner_close":
            t.send(dst, MsgType.PARTNER_CLOSE, {})
            t.drop_link(dst)
        elif method == "rpc_subscribe":
            t.send(dst, MsgType.SUBSCRIBE, {
                "substream": int(args[1]), "from_index": int(args[2])})
        elif method == "rpc_unsubscribe":
            t.send(dst, MsgType.UNSUBSCRIBE, {"substream": int(args[1])})
        elif method == "rpc_request_blocks":
            t.send(dst, MsgType.PULL_REQUEST,
                   {"requests": encode_pull_requests(args[1])})
        # anything else has no wire equivalent and is dropped

    def _partner_dial_failed(self, dst: int) -> None:
        """A partner candidate could not be reached: same bookkeeping as
        the simulator's NAT-unreachable branch (drop it from the view)."""
        self._pending_partners.pop(dst, None)
        self.mcache.remove(dst)

    # ------------------------------------------------------------------
    # transport-touchpoint overrides
    # ------------------------------------------------------------------
    def _gossip(self) -> None:
        # same target/payload draws as the base class (rng parity), but
        # the payload travels as a GOSSIP frame carrying known addresses
        partner_ids = self.partners.ids()
        if not partner_ids:
            return
        target = partner_ids[int(self._rng.integers(len(partner_ids)))]
        payload = self.mcache.gossip_payload(
            self.cfg.gossip_fanout, self._rng, self_entry=self.self_entry()
        )
        own_address = self.transport.address
        objs = []
        for entry in payload:
            address = (own_address if entry.node_id == self.node_id
                       else self.addresses.get(entry.node_id))
            objs.append(encode_entry(entry, address))
        if self.transport.send(target, MsgType.GOSSIP, {"entries": objs}):
            ctx = _obs_context.current()
            if ctx is not None:
                ctx.registry.counter("core.gossip_messages").inc()
                ctx.registry.counter("core.gossip_entries").inc(len(payload))

    def _broadcast_bm(self) -> None:
        encoded = encode_bm(self._own_bm())
        sent = 0
        for pid in self.partners.ids():
            if self.transport.send(pid, MsgType.BM_UPDATE, {"bm": encoded}):
                sent += 1
        if sent:
            _obs_inc("core.bm_exchanges", sent)

    def _push(self, conn, first: int, last: int) -> None:
        ok = self.transport.send(conn.child_id, MsgType.BLOCKS, {
            "substream": conn.substream, "first": first, "last": last})
        if not ok:
            self.scheduler.drop_child(conn.child_id)

    def _pull_push(self, child_id: int, substream: int, first: int,
                   last: int) -> None:
        ok = self.transport.send(child_id, MsgType.BLOCKS, {
            "substream": substream, "first": first, "last": last})
        if not ok and self.pull_sched is not None:
            self.pull_sched.drop_child(child_id)

    def _drop_partner(self, partner_id: int, *, notify: bool) -> None:
        super()._drop_partner(partner_id, notify=notify)
        self.transport.drop_link(partner_id)

    def deliver_blocks(self, from_id: int, substream: int, first: int,
                       last: int) -> None:
        """Count duplicate deliveries (pull-timeout re-requests served
        twice arrive as already-held intervals) as retransmits."""
        if self.sync is not None and last <= self.heads[substream]:
            self.system.stats.retransmits += 1
            _obs_inc("net.retransmits")
        super().deliver_blocks(from_id, substream, first, last)

    # ------------------------------------------------------------------
    # inbound: frames become inherited rpc_* calls
    # ------------------------------------------------------------------
    def _on_frame(self, link: Link, msg_type: MsgType,
                  payload: Dict[str, Any]) -> None:
        self.system.pump()
        from_id = link.remote_id
        if from_id is None:
            link.close()  # protocol traffic before HELLO
            return
        if not self.alive:
            return
        try:
            if msg_type is MsgType.BLOCKS:
                self.deliver_blocks(from_id, int(payload["substream"]),
                                    int(payload["first"]), int(payload["last"]))
            elif msg_type is MsgType.BM_UPDATE:
                self.rpc_bm_update(from_id, decode_bm(payload["bm"]))
            elif msg_type is MsgType.HELLO:
                port = int(payload.get("port", 0))
                if port:
                    self.addresses[from_id] = (str(payload["host"]), port)
            elif msg_type is MsgType.GOSSIP:
                entries = []
                for obj in payload["entries"]:
                    entry, address = decode_entry(obj)
                    if address is not None and entry.node_id != self.node_id:
                        self.addresses[entry.node_id] = address
                    entries.append(entry)
                self.rpc_gossip(from_id, entries)
            elif msg_type is MsgType.PARTNER_REQUEST:
                entry, address = decode_entry(payload["entry"])
                if address is not None:
                    self.addresses[from_id] = address
                self.rpc_partner_request(from_id, entry)
            elif msg_type is MsgType.PARTNER_REPLY:
                raw_bm = payload.get("bm")
                bm = decode_bm(raw_bm) if raw_bm is not None else None
                raw_entry = payload.get("entry")
                entry = None
                if raw_entry is not None:
                    entry, address = decode_entry(raw_entry)
                    if address is not None:
                        self.addresses[from_id] = address
                self.rpc_partner_reply(from_id, bool(payload["accept"]),
                                       bm, entry)
            elif msg_type is MsgType.PARTNER_CLOSE:
                self.rpc_partner_close(from_id)
                self.transport.drop_link(from_id)
            elif msg_type is MsgType.SUBSCRIBE:
                self.rpc_subscribe(from_id, int(payload["substream"]),
                                   int(payload["from_index"]))
            elif msg_type is MsgType.UNSUBSCRIBE:
                self.rpc_unsubscribe(from_id, int(payload["substream"]))
            elif msg_type is MsgType.PULL_REQUEST:
                self.rpc_request_blocks(
                    from_id, decode_pull_requests(payload["requests"]))
            else:
                raise CodecError(f"{msg_type.name} is not a peer message")
        except (CodecError, KeyError, TypeError, ValueError):
            self.system.stats.frames_rejected += 1
            _obs_inc("net.frames_rejected")
            link.close()

    def _on_link_lost(self, link: Link) -> None:
        """EOF/reset on a peer link: the partner is gone.  Same path as a
        BM-silence timeout, but detected at TCP speed."""
        if link.remote_id is None or not self.alive:
            return
        self.system.pump()
        self._drop_partner(link.remote_id, notify=False)

    # ------------------------------------------------------------------
    # coordinator link
    # ------------------------------------------------------------------
    def _on_coord_frame(self, link: Link, msg_type: MsgType,
                        payload: Dict[str, Any]) -> None:
        self.system.pump()
        if not self.alive:
            return
        try:
            if msg_type in (MsgType.PEERS_REPLY, MsgType.REGISTER_OK):
                entries = []
                for obj in payload.get("entries", ()):
                    entry, address = decode_entry(obj)
                    if address is not None and entry.node_id != self.node_id:
                        self.addresses[entry.node_id] = address
                    entries.append(entry)
                self._on_coord_reply(msg_type, payload, entries)
            elif msg_type is MsgType.BLOCKS:
                self._on_coord_blocks(payload)
            else:
                raise CodecError(f"{msg_type.name} is not a coordinator reply")
        except (CodecError, KeyError, TypeError, ValueError):
            self.system.stats.frames_rejected += 1
            _obs_inc("net.frames_rejected")
            link.close()

    def _on_coord_reply(self, msg_type: MsgType, payload: Dict[str, Any],
                        entries: list) -> None:
        self.on_bootstrap_reply(entries)

    def _on_coord_blocks(self, payload: Dict[str, Any]) -> None:
        raise CodecError("only servers receive blocks from the origin")

    def _on_coord_lost(self, link: Link) -> None:
        """Coordinator link gone: the session keeps streaming (partners
        are independent connections); only registration/telemetry stop."""

    def close_sockets(self) -> None:
        """Backend teardown: release every socket this peer still holds."""
        self.transport.close()
        if self.coord_link is not None:
            self.coord_link.cancel()


class NetServer(NetPeer):
    """A dedicated streaming server over sockets.

    Mirrors :class:`~repro.core.source.DedicatedServer`: server-class
    connectivity and capacity, every sub-stream fed straight from the
    origin (which lives in the coordinator and pushes BLOCKS frames down
    the registration link), no playback, no patience, no departure.
    """

    is_server = True

    def __init__(self, system, node_id: int) -> None:
        super().__init__(
            system,
            node_id=node_id,
            user_id=-node_id,
            session_id=-node_id,
            attempt=1,
            connectivity=ConnectivityClass.SERVER,
            upload_bps=system.cfg.server_upload_bps,
        )
        #: set once REGISTER_OK arrives and relaying has begun
        self.ready = asyncio.Event()

    def _max_partners(self) -> int:
        return self.cfg.server_max_partners

    def _protocol_start(self) -> None:
        """Register with the coordinator; stream state is initialised by
        the REGISTER_OK reply (which carries the origin's start offset)."""
        self.joined_at = self.engine.now
        self.state = NodeState.PLAYING  # servers are always "up"
        self.system.bootstrap.register(self.self_entry())

    def _on_coord_reply(self, msg_type: MsgType, payload: Dict[str, Any],
                        entries: list) -> None:
        if msg_type is MsgType.REGISTER_OK:
            self._attach_to_origin(int(payload["start"]))
        else:
            self.on_bootstrap_reply(entries)

    def _attach_to_origin(self, start: int) -> None:
        """Initialise relay state at the origin's live edge (the net
        analogue of ``DedicatedServer.start``'s direct source read)."""
        if self.sync is not None:
            return
        k = self.cfg.n_substreams
        self.start_index = start
        self.sync = [SyncBuffer(start) for _ in range(k)]
        self.heads = [start - 1] * k
        self.playback = None  # servers do not play back
        for sub in range(k):
            self.parents[sub] = SOURCE_ID
        self._start_tasks()
        self.ready.set()

    def _on_coord_blocks(self, payload: Dict[str, Any]) -> None:
        self.deliver_blocks(SOURCE_ID, int(payload["substream"]),
                            int(payload["first"]), int(payload["last"]))

    def _control_tick(self) -> None:
        # DedicatedServer's slim tick: no joining, no adaptation, no
        # patience -- just partner hygiene, BM broadcast and gossip
        if not self.alive:
            return
        self._control_ticks += 1
        for pid in self.partners.stale_partners(self.engine.now,
                                                self._stale_timeout):
            self._drop_partner(pid, notify=False)
        self._broadcast_bm()
        if self._control_ticks % self._gossip_every == 0:
            self._gossip()

    def _maybe_player_ready(self) -> None:
        return  # nothing to get ready

    def _drop_partner(self, partner_id: int, *, notify: bool) -> None:
        if partner_id == SOURCE_ID:
            return  # the origin is not droppable
        super()._drop_partner(partner_id, notify=notify)
