"""The wire format: length-prefixed, versioned frames over TCP.

One frame is::

    +----------+---------+------+---------------------+
    | length   | version | type | JSON body (UTF-8)   |
    | uint32BE | uint8   | uint8| `length - 2` bytes  |
    +----------+---------+------+---------------------+

``length`` covers everything after itself (version + type + body), so a
reader needs exactly two reads per frame.  The body is JSON: at ≤ 16
peers per deployment and a 2 s control cadence the codec is nowhere near
hot, and a self-describing body keeps the protocol debuggable with
``tcpdump``.  Compactness comes from what we *don't* send -- block
deliveries are interval descriptors, never payload bytes (bandwidth
stays modeled, exactly like the simulators).

Every decode path is defensive: bad version, unknown type, oversized
frames, truncated buffers and garbage JSON all raise :class:`CodecError`
(the transport kills the offending connection; the deployment survives).

The message vocabulary maps 1:1 onto the reference node's RPC surface
(:class:`~repro.core.node.PeerNode`'s ``rpc_*`` methods) plus the
coordinator's registration/telemetry endpoints, which is what lets the
net peer reuse the simulator's protocol logic unchanged.
"""

from __future__ import annotations

import enum
import json
import struct
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.core.buffer import BufferMap
from repro.core.membership import MCacheEntry
from repro.core.pull import PullRequest
from repro.network.connectivity import ConnectivityClass

__all__ = [
    "WIRE_VERSION",
    "MsgType",
    "CodecError",
    "encode_frame",
    "FrameDecoder",
    "encode_entry",
    "decode_entry",
    "encode_bm",
    "decode_bm",
    "encode_pull_requests",
    "decode_pull_requests",
]

#: protocol version byte; receivers reject anything else
WIRE_VERSION = 1

_HEADER = struct.Struct("!I")
_VERSION_TYPE = struct.Struct("!BB")


class CodecError(ValueError):
    """A frame or body that cannot be decoded (truncated, oversized,
    wrong version, unknown type, malformed JSON/fields)."""


class MsgType(enum.IntEnum):
    """Wire message types."""

    # connection bring-up (both directions)
    HELLO = 1             # {node_id, host, port}: identifies the dialler
    # coordinator control plane
    REGISTER = 10         # {entry, host, port, server}: join the channel
    REGISTER_OK = 11      # {entries}: mCache seed list
    PEERS_REQUEST = 12    # {}: re-request a peer list (exhausted view)
    PEERS_REPLY = 13      # {entries}
    UNREGISTER = 14       # {node_id}: graceful departure
    LOG_REPORT = 15       # {t, line}: one telemetry log string
    # peer <-> peer protocol (mirrors PeerNode's rpc_* surface)
    GOSSIP = 20           # {entries}: membership gossip payload
    PARTNER_REQUEST = 21  # {entry}: ask to become partners
    PARTNER_REPLY = 22    # {accept, bm?, entry?}
    PARTNER_CLOSE = 23    # {}: graceful teardown
    BM_UPDATE = 24        # {bm}: buffer-map announcement
    SUBSCRIBE = 25        # {substream, from_index}: push-mode subscription
    UNSUBSCRIBE = 26      # {substream}
    PULL_REQUEST = 27     # {requests: [[substream, first, last], ...]}
    BLOCKS = 28           # {substream, first, last}: block delivery


def encode_frame(msg_type: MsgType, payload: Dict[str, Any], *,
                 max_frame_bytes: int = 1 << 20) -> bytes:
    """Serialize one message into a wire frame."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    length = _VERSION_TYPE.size + len(body)
    if length > max_frame_bytes:
        raise CodecError(
            f"frame of {length} bytes exceeds limit {max_frame_bytes}")
    return (_HEADER.pack(length)
            + _VERSION_TYPE.pack(WIRE_VERSION, int(msg_type))
            + body)


class FrameDecoder:
    """Incremental frame parser: feed bytes, iterate complete messages.

    The decoder is transport-agnostic (tests drive it with byte slices of
    any granularity); the asyncio reader feeds it whatever ``read()``
    returns.  A malformed frame raises :class:`CodecError` and poisons
    the decoder -- the connection it came from is dead anyway.
    """

    def __init__(self, *, max_frame_bytes: int = 1 << 20) -> None:
        self._buf = bytearray()
        self._max = int(max_frame_bytes)

    def feed(self, data: bytes) -> Iterator[Tuple[MsgType, Dict[str, Any]]]:
        """Consume bytes; yield every complete ``(type, payload)``."""
        self._buf.extend(data)
        while True:
            msg = self._next()
            if msg is None:
                return
            yield msg

    def _next(self) -> Optional[Tuple[MsgType, Dict[str, Any]]]:
        buf = self._buf
        if len(buf) < _HEADER.size:
            return None
        (length,) = _HEADER.unpack_from(buf)
        if length > self._max:
            raise CodecError(
                f"declared frame length {length} exceeds limit {self._max}")
        if length < _VERSION_TYPE.size:
            raise CodecError(f"declared frame length {length} too short")
        end = _HEADER.size + length
        if len(buf) < end:
            return None
        version, raw_type = _VERSION_TYPE.unpack_from(buf, _HEADER.size)
        body = bytes(buf[_HEADER.size + _VERSION_TYPE.size:end])
        del buf[:end]
        if version != WIRE_VERSION:
            raise CodecError(f"unsupported wire version {version}")
        try:
            msg_type = MsgType(raw_type)
        except ValueError as exc:
            raise CodecError(f"unknown message type {raw_type}") from exc
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CodecError(f"malformed frame body: {exc}") from exc
        if not isinstance(payload, dict):
            raise CodecError("frame body must be a JSON object")
        return msg_type, payload


# ---------------------------------------------------------------------------
# field codecs: the protocol objects that cross the wire
# ---------------------------------------------------------------------------
def encode_entry(entry: MCacheEntry,
                 address: Optional[Tuple[str, int]] = None) -> Dict[str, Any]:
    """An mCache entry (plus, when known, the node's listen address)."""
    out: Dict[str, Any] = {
        "node_id": entry.node_id,
        "connectivity": int(entry.connectivity),
        "joined_at": entry.joined_at,
        "last_seen": entry.last_seen,
    }
    if address is not None:
        out["host"], out["port"] = address[0], int(address[1])
    return out


def decode_entry(obj: Any) -> Tuple[MCacheEntry, Optional[Tuple[str, int]]]:
    """Parse an entry object; returns ``(entry, address_or_None)``."""
    if not isinstance(obj, dict):
        raise CodecError("entry must be an object")
    try:
        entry = MCacheEntry(
            node_id=int(obj["node_id"]),
            connectivity=ConnectivityClass(int(obj["connectivity"])),
            joined_at=float(obj["joined_at"]),
            last_seen=float(obj["last_seen"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CodecError(f"malformed entry: {exc}") from exc
    address: Optional[Tuple[str, int]] = None
    if "host" in obj:
        try:
            address = (str(obj["host"]), int(obj["port"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise CodecError(f"malformed entry address: {exc}") from exc
    return entry, address


def encode_bm(bm: BufferMap) -> List[int]:
    """The flat 2K-tuple wire representation of a buffer map."""
    return list(bm.as_tuple())


def decode_bm(obj: Any) -> BufferMap:
    """Parse a buffer map; wire maps go through the validating path."""
    if not isinstance(obj, list):
        raise CodecError("buffer map must be a list")
    try:
        return BufferMap.from_tuple([int(v) for v in obj])
    except (TypeError, ValueError) as exc:
        raise CodecError(f"malformed buffer map: {exc}") from exc


def encode_pull_requests(requests: List[PullRequest]) -> List[List[int]]:
    """Pull-mode request batch as ``[[substream, first, last], ...]``."""
    return [[r.substream, r.first, r.last] for r in requests]


def decode_pull_requests(obj: Any) -> List[PullRequest]:
    """Parse a pull request batch (validated by ``PullRequest``)."""
    if not isinstance(obj, list):
        raise CodecError("pull requests must be a list")
    out: List[PullRequest] = []
    for item in obj:
        try:
            sub, first, last = (int(v) for v in item)
            out.append(PullRequest(substream=sub, first=first, last=last))
        except (TypeError, ValueError) as exc:
            raise CodecError(f"malformed pull request {item!r}: {exc}") from exc
    return out
