"""Deployment knobs for the real-network backend.

Everything here is about the *transport* (addresses, timeouts, framing,
pacing); protocol parameters stay in :class:`repro.core.config.
SystemConfig` so a net run and a simulated run of the same scenario share
one protocol configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["NetConfig"]


@dataclass(frozen=True)
class NetConfig:
    """Transport configuration for one :class:`~repro.net.backend.NetBackend`.

    Attributes
    ----------
    host:
        Interface everything binds to.  Localhost by default; the wire
        protocol itself is address-agnostic.
    port:
        Coordinator listen port.  ``0`` (default) binds an ephemeral port,
        which is what CI wants -- parallel jobs can never collide.  A
        fixed port that is already in use surfaces as
        :class:`~repro.runtime.backends.BackendStartupError`.
    time_scale:
        Virtual seconds per wall second.  The protocol's periods (2 s
        control tick, 1 s delivery quantum, 300 s status cadence) run in
        virtual time, so ``time_scale=20`` finishes a 600 s scenario in
        ~30 s of wall time.  Raising it trades wall time for timer
        precision (the pump quantum below is a virtual-time error bound).
    pump_wall_s:
        Wall-clock period of the engine pump: how often due virtual
        timers are fired while the run sleeps between I/O events.
    connect_timeout_s, connect_retries, connect_backoff_s:
        Wall-clock connect policy for peer-to-peer and peer-to-coordinator
        connections: each attempt gets ``connect_timeout_s``; failures
        retry up to ``connect_retries`` times with exponential backoff
        starting at ``connect_backoff_s``.
    max_frame_bytes:
        Upper bound on one wire frame; oversized frames are a codec error
        (and, on a live connection, kill that connection, not the run).
    drain_wall_s:
        Quiescence window observed at the end of a run so in-flight LOG
        frames reach the coordinator before the log is read.
    """

    host: str = "127.0.0.1"
    port: int = 0
    time_scale: float = 20.0
    pump_wall_s: float = 0.02
    connect_timeout_s: float = 5.0
    connect_retries: int = 3
    connect_backoff_s: float = 0.2
    max_frame_bytes: int = 1 << 20
    drain_wall_s: float = 0.05

    def __post_init__(self) -> None:
        if not 0 <= self.port <= 65535:
            raise ValueError("port must be in [0, 65535]")
        if self.time_scale <= 0:
            raise ValueError("time_scale must be positive")
        if self.pump_wall_s <= 0:
            raise ValueError("pump_wall_s must be positive")
        if self.connect_timeout_s <= 0:
            raise ValueError("connect_timeout_s must be positive")
        if self.connect_retries < 0:
            raise ValueError("connect_retries must be >= 0")
        if self.connect_backoff_s < 0:
            raise ValueError("connect_backoff_s must be >= 0")
        if self.max_frame_bytes < 64:
            raise ValueError("max_frame_bytes must be >= 64")
        if self.drain_wall_s <= 0:
            raise ValueError("drain_wall_s must be positive")

    def with_overrides(self, **kwargs) -> "NetConfig":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)
