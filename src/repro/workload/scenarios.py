"""Scenario presets.

Every benchmark and example builds on one of these.  Scale calibration
(DESIGN.md section 4): the measured event peaked at ~40,000 users on 24
dedicated servers; presets default to 1/20-1/40 scale with the server
fleet scaled by the same factor, preserving the server/peer capacity
ratio that governs the dynamics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.config import SystemConfig
from repro.core.system import CoolstreamingSystem
from repro.network.capacity import CapacityModel
from repro.network.connectivity import ConnectivityMix
from repro.workload.arrivals import (
    ArrivalProcess,
    DiurnalProfile,
    FlashCrowd,
    PoissonArrivals,
    UniformBurst,
)
from repro.workload.sessions import (
    FixedDuration,
    ProgramSchedule,
    SessionDurationModel,
)
from repro.workload.users import UserPopulation

__all__ = [
    "Scenario",
    "evening_broadcast",
    "steady_audience",
    "flash_crowd_storm",
    "diurnal_day",
    "uniform_ramp",
]


@dataclass
class Scenario:
    """A fully specified experiment: system config + workload + horizon.

    A scenario is pure data; execution belongs to :mod:`repro.runtime`,
    which can drive it on either engine
    (``run_scenario(scenario, seed, engine="detailed"|"fast")``).  The
    :meth:`build`/:meth:`run` methods remain as thin detailed-engine
    shims over that runtime for existing callers.
    """

    name: str
    cfg: SystemConfig
    arrivals: ArrivalProcess
    horizon_s: float
    # any object with .sample(rng, n) -> durations; usually a
    # SessionDurationModel, FixedDuration for census-style sweeps
    duration_model: SessionDurationModel = field(default_factory=SessionDurationModel)
    schedule: ProgramSchedule = field(default_factory=ProgramSchedule)
    connectivity_mix: Optional[ConnectivityMix] = None
    capacity_model: Optional[CapacityModel] = None
    silent_leave_prob: float = 0.1

    def build(self, seed: int = 0) -> tuple[CoolstreamingSystem, UserPopulation]:
        """Instantiate the system and its audience (nothing runs yet).

        Thin shim over :func:`repro.runtime.build_backend` with the
        detailed engine; bit-identical to the historical inline wiring.
        """
        from repro.runtime import build_backend  # deferred: runtime imports us

        backend = build_backend(self, seed=seed, engine="detailed")
        backend.materialize()
        return backend.system, backend.population

    def run(self, seed: int = 0) -> tuple[CoolstreamingSystem, UserPopulation]:
        """Build and run to the horizon (detailed-engine shim)."""
        from repro.runtime import run_scenario  # deferred: runtime imports us

        res = run_scenario(self, seed=seed, engine="detailed")
        return res.system, res.population


def evening_broadcast(
    *,
    scale: float = 1.0,
    horizon_s: float = 3_600.0,
    program_end_s: Optional[float] = None,
    peak_rate: float = 1.0,
    cfg: Optional[SystemConfig] = None,
) -> Scenario:
    """The scaled 2006-09-27 evening event (Figs. 5b, 8, 10).

    The audience ramps steeply for the first ~40% of the horizon, holds
    through "prime time", then collapses at ``program_end_s`` (default:
    75% of the horizon) -- the 22:00 cliff.  ``scale`` multiplies both the
    arrival rate and the server fleet.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    base_cfg = cfg or SystemConfig()
    n_servers = max(1, round(base_cfg.n_servers * scale / 10.0))
    system_cfg = base_cfg.with_overrides(n_servers=n_servers)
    end = program_end_s if program_end_s is not None else 0.75 * horizon_s
    arrivals = FlashCrowd(
        start_s=0.0,
        ramp_s=0.25 * horizon_s,
        hold_s=0.35 * horizon_s,
        decay_s=0.15 * horizon_s,
        peak_rate=peak_rate * scale,
        base_rate=0.05 * peak_rate * scale,
    )
    return Scenario(
        name="evening_broadcast",
        cfg=system_cfg,
        arrivals=arrivals,
        horizon_s=horizon_s,
        duration_model=SessionDurationModel(
            lognorm_median_s=0.15 * horizon_s,
            pareto_scale_s=0.5 * horizon_s,
        ),
        schedule=ProgramSchedule.single_ending(end, leave_probability=0.7),
    )


def steady_audience(
    *,
    rate_per_s: float = 0.5,
    horizon_s: float = 1_800.0,
    n_servers: int = 3,
    cfg: Optional[SystemConfig] = None,
) -> Scenario:
    """A stationary audience: Poisson arrivals balanced by departures.

    Used for steady-state measurements (Fig. 3 contribution shares,
    Fig. 4 topology statistics) where ramps would confound the metric.
    """
    base_cfg = cfg or SystemConfig()
    system_cfg = base_cfg.with_overrides(n_servers=n_servers)
    return Scenario(
        name="steady_audience",
        cfg=system_cfg,
        arrivals=PoissonArrivals(rate_per_s),
        horizon_s=horizon_s,
    )


def diurnal_day(
    *,
    day_seconds: float = 14_400.0,
    peak_rate: float = 2.0,
    n_servers: int = 6,
    program_ending: Optional[tuple[float, float]] = None,
    cfg: Optional[SystemConfig] = None,
) -> Scenario:
    """The full (scaled) broadcast day of Figs. 5 and 7.

    A diurnal arrival profile peaking in "prime time"; with
    ``program_ending=(time_s, leave_prob)`` the 22:00 cliff is
    superimposed (Fig. 5), without it the day runs out smoothly (Fig. 7's
    per-period ready-time slices).
    """
    if day_seconds <= 0:
        raise ValueError("day_seconds must be positive")
    base_cfg = cfg or SystemConfig()
    system_cfg = base_cfg.with_overrides(n_servers=n_servers)
    schedule = (
        ProgramSchedule.single_ending(*program_ending)
        if program_ending is not None else ProgramSchedule()
    )
    return Scenario(
        name="diurnal_day",
        cfg=system_cfg,
        arrivals=DiurnalProfile.evening_peak(
            day_seconds=day_seconds, peak_rate=peak_rate
        ),
        horizon_s=day_seconds,
        duration_model=SessionDurationModel(
            lognorm_median_s=0.08 * day_seconds,
            pareto_scale_s=0.2 * day_seconds,
        ),
        schedule=schedule,
    )


def uniform_ramp(
    *,
    n_users: int,
    horizon_s: float = 1_200.0,
    ramp_frac: float = 0.25,
    n_servers: int = 4,
    cfg: Optional[SystemConfig] = None,
) -> Scenario:
    """Exactly ``n_users`` arrivals over the first ``ramp_frac`` of the
    horizon, everyone staying to the end -- the Fig. 9 sweep workload,
    where continuity is measured at a known population size.
    """
    if not (0.0 < ramp_frac <= 1.0):
        raise ValueError("ramp_frac must be in (0, 1]")
    base_cfg = cfg or SystemConfig()
    system_cfg = base_cfg.with_overrides(n_servers=n_servers)
    return Scenario(
        name="uniform_ramp",
        cfg=system_cfg,
        arrivals=UniformBurst(n_users=int(n_users), t0=0.0,
                              t1=ramp_frac * horizon_s),
        horizon_s=horizon_s,
        duration_model=FixedDuration(horizon_s),
    )


def flash_crowd_storm(
    *,
    burst_users_per_s: float = 4.0,
    horizon_s: float = 900.0,
    n_servers: int = 2,
    cfg: Optional[SystemConfig] = None,
) -> Scenario:
    """A hard join storm against a small server fleet (Figs. 6, 7, 10b).

    Stresses exactly the mechanism Section V.C blames for long ready
    times: mCaches fill with newly joined peers that cannot yet provide
    stable streams.
    """
    base_cfg = cfg or SystemConfig()
    system_cfg = base_cfg.with_overrides(n_servers=n_servers)
    arrivals = FlashCrowd(
        start_s=0.05 * horizon_s,
        ramp_s=0.10 * horizon_s,
        hold_s=0.25 * horizon_s,
        decay_s=0.10 * horizon_s,
        peak_rate=burst_users_per_s,
        base_rate=0.1,
    )
    return Scenario(
        name="flash_crowd_storm",
        cfg=system_cfg,
        arrivals=arrivals,
        horizon_s=horizon_s,
        duration_model=SessionDurationModel(
            lognorm_median_s=0.3 * horizon_s,
            pareto_scale_s=0.8 * horizon_s,
        ),
    )
