"""Arrival processes: when do users show up.

Fig. 5 of the paper shows (a) a diurnal curve over a whole day and (b) a
steep evening ramp peaking around 40,000 concurrent users, with a cliff at
~22:00 when programs end.  We generate arrival *times* (not sessions --
durations live in :mod:`repro.workload.sessions`) from non-homogeneous
Poisson processes via thinning, which keeps every profile exact regardless
of shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence, Tuple

import numpy as np

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "DiurnalProfile",
    "FlashCrowd",
    "UniformBurst",
    "merge_arrivals",
]


class ArrivalProcess(Protocol):
    """Anything that can produce arrival times over a horizon."""

    def sample(self, horizon_s: float, rng: np.random.Generator) -> np.ndarray:
        """Sorted arrival times in ``[0, horizon_s)``."""
        ...

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate (users/second) at time ``t``."""
        ...


@dataclass(frozen=True)
class PoissonArrivals:
    """Homogeneous Poisson arrivals at ``rate_per_s``."""

    rate_per_s: float

    def __post_init__(self) -> None:
        if self.rate_per_s < 0:
            raise ValueError("rate must be non-negative")

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate (users/s) at time ``t``."""
        return self.rate_per_s

    def sample(self, horizon_s: float, rng: np.random.Generator) -> np.ndarray:
        """Sorted arrival times over the horizon."""
        if horizon_s <= 0 or self.rate_per_s == 0:
            return np.empty(0)
        n = rng.poisson(self.rate_per_s * horizon_s)
        return np.sort(rng.uniform(0.0, horizon_s, size=n))


def _thin(rate_fn, rate_max: float, horizon_s: float,
          rng: np.random.Generator) -> np.ndarray:
    """Ogata thinning for a non-homogeneous Poisson process."""
    if horizon_s <= 0 or rate_max <= 0:
        return np.empty(0)
    n_prop = rng.poisson(rate_max * horizon_s)
    props = np.sort(rng.uniform(0.0, horizon_s, size=n_prop))
    if n_prop == 0:
        return props
    keep = rng.uniform(0.0, rate_max, size=n_prop) < np.array(
        [rate_fn(t) for t in props]
    )
    return props[keep]


@dataclass(frozen=True)
class DiurnalProfile:
    """Piecewise-linear daily rate profile.

    ``anchors`` is a sequence of (time_s, rate_per_s) control points; the
    rate is linearly interpolated between them and clamped outside.  The
    default shape follows Fig. 5a: a quiet night, a daytime plateau, a
    steep evening ramp towards the prime-time peak and a fall after the
    programs end.
    """

    anchors: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        if len(self.anchors) < 2:
            raise ValueError("need at least two anchors")
        times = [a[0] for a in self.anchors]
        if any(t2 <= t1 for t1, t2 in zip(times, times[1:])):
            raise ValueError("anchor times must be strictly increasing")
        if any(a[1] < 0 for a in self.anchors):
            raise ValueError("rates must be non-negative")

    @classmethod
    def evening_peak(cls, *, day_seconds: float = 86_400.0,
                     peak_rate: float = 10.0) -> "DiurnalProfile":
        """The Fig. 5a shape, parameterised by the prime-time arrival rate.

        Times are seconds since midnight; the peak sits between 19:00 and
        21:30 with the program-end cliff handled by the departure model.
        """
        h = day_seconds / 24.0
        p = peak_rate
        return cls(anchors=(
            (0.0 * h, 0.05 * p),
            (6.0 * h, 0.03 * p),
            (9.0 * h, 0.15 * p),
            (13.0 * h, 0.25 * p),
            (17.0 * h, 0.35 * p),
            (18.5 * h, 0.80 * p),
            (20.0 * h, 1.00 * p),
            (21.5 * h, 0.90 * p),
            (22.5 * h, 0.25 * p),
            (24.0 * h, 0.05 * p),
        ))

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate (users/s) at time ``t``."""
        times = np.array([a[0] for a in self.anchors])
        rates = np.array([a[1] for a in self.anchors])
        return float(np.interp(t, times, rates))

    @property
    def max_rate(self) -> float:
        """Upper bound of the rate profile (thinning envelope)."""
        return max(a[1] for a in self.anchors)

    def sample(self, horizon_s: float, rng: np.random.Generator) -> np.ndarray:
        """Sorted arrival times over the horizon."""
        return _thin(self.rate_at, self.max_rate, horizon_s, rng)


@dataclass(frozen=True)
class FlashCrowd:
    """A burst of arrivals around a program start.

    Rate ramps linearly from ``base_rate`` to ``peak_rate`` over
    ``ramp_s`` starting at ``start_s``, holds for ``hold_s``, then decays
    exponentially with time constant ``decay_s`` -- the shape of the
    18:00-20:00 ramp in Fig. 5b.
    """

    start_s: float
    ramp_s: float
    hold_s: float
    decay_s: float
    peak_rate: float
    base_rate: float = 0.0

    def __post_init__(self) -> None:
        if min(self.ramp_s, self.hold_s, self.decay_s) < 0:
            raise ValueError("durations must be non-negative")
        if self.peak_rate < self.base_rate or self.base_rate < 0:
            raise ValueError("need 0 <= base_rate <= peak_rate")

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate (users/s) at time ``t``."""
        if t < self.start_s:
            return self.base_rate
        dt = t - self.start_s
        if dt < self.ramp_s:
            frac = dt / self.ramp_s if self.ramp_s else 1.0
            return self.base_rate + frac * (self.peak_rate - self.base_rate)
        dt -= self.ramp_s
        if dt < self.hold_s:
            return self.peak_rate
        dt -= self.hold_s
        if self.decay_s == 0:
            return self.base_rate
        return self.base_rate + (self.peak_rate - self.base_rate) * float(
            np.exp(-dt / self.decay_s)
        )

    def sample(self, horizon_s: float, rng: np.random.Generator) -> np.ndarray:
        """Sorted arrival times over the horizon."""
        return _thin(self.rate_at, self.peak_rate, horizon_s, rng)


@dataclass(frozen=True)
class UniformBurst:
    """Exactly ``n_users`` arrivals uniform on ``[t0, t1)``.

    The Fig. 9 sweep workload: the point of the sweep is continuity *at a
    known population size*, so the count is fixed rather than Poisson --
    sampling draws arrival times only.
    """

    n_users: int
    t0: float = 0.0
    t1: float = 1.0

    def __post_init__(self) -> None:
        if self.n_users < 0:
            raise ValueError("n_users must be non-negative")
        if self.t1 <= self.t0:
            raise ValueError("need t0 < t1")

    def rate_at(self, t: float) -> float:
        """Mean arrival rate (users/s) at time ``t``."""
        if self.t0 <= t < self.t1:
            return self.n_users / (self.t1 - self.t0)
        return 0.0

    def sample(self, horizon_s: float, rng: np.random.Generator) -> np.ndarray:
        """Sorted arrival times (the count is deterministic)."""
        return np.sort(rng.uniform(self.t0, self.t1, size=self.n_users))


def merge_arrivals(streams: Sequence[np.ndarray]) -> np.ndarray:
    """Merge several arrival-time arrays into one sorted array."""
    if not streams:
        return np.empty(0)
    return np.sort(np.concatenate([np.asarray(s, dtype=float) for s in streams]))
