"""Channel-surfing audience for multi-channel deployments.

Viewers pick a program with Zipf-skewed popularity ("the users contact a
web server to select the program", Section V.A), watch for an intended
duration, and may *zap* to another channel instead of leaving -- a new
session on a different overlay, which in the platform-wide log looks
exactly like the measured join/leave churn.  Staggered per-channel
program endings recreate Fig. 5a's partial audience collapse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.multichannel import MultiChannelDeployment
from repro.core.node import PeerNode, SessionOutcome
from repro.telemetry.reports import LeaveReason
from repro.workload.sessions import SessionDurationModel

__all__ = ["ChannelAudience", "zipf_popularity"]


def zipf_popularity(n_channels: int, skew: float = 1.0) -> np.ndarray:
    """Zipf channel-popularity weights (normalized)."""
    if n_channels < 1:
        raise ValueError("need at least one channel")
    if skew < 0:
        raise ValueError("skew must be non-negative")
    ranks = np.arange(1, n_channels + 1, dtype=float)
    weights = ranks ** (-skew)
    return weights / weights.sum()


@dataclass
class _Viewer:
    user_id: int
    deadline: float
    attempts: int = 0
    zaps: int = 0
    channel: int = -1
    node: Optional[PeerNode] = None
    done: bool = False


class ChannelAudience:
    """Drives a zapping audience against a multi-channel deployment."""

    def __init__(
        self,
        deployment: MultiChannelDeployment,
        *,
        arrival_times: Sequence[float],
        duration_model: Optional[SessionDurationModel] = None,
        popularity_skew: float = 1.0,
        zap_probability: float = 0.3,
        zap_after_s: float = 120.0,
        max_retries: int = 3,
        retry_backoff_s: float = 5.0,
    ) -> None:
        if not (0.0 <= zap_probability <= 1.0):
            raise ValueError("zap_probability must be a probability")
        self.deployment = deployment
        self.engine = deployment.engine
        self._rng = deployment.hub.stream("surfing")
        self.popularity = zipf_popularity(deployment.n_channels, popularity_skew)
        self.zap_probability = float(zap_probability)
        self.zap_after_s = float(zap_after_s)
        self.max_retries = int(max_retries)
        self.retry_backoff_s = float(retry_backoff_s)
        durations = (duration_model or SessionDurationModel()).sample(
            deployment.hub.stream("surfing.durations"), len(arrival_times)
        )
        self.viewers: List[_Viewer] = []
        for i, (t, dur) in enumerate(zip(arrival_times, durations)):
            viewer = _Viewer(user_id=i, deadline=float(t) + float(dur))
            self.viewers.append(viewer)
            self.engine.schedule_at(float(t), lambda v=viewer: self._join(v))
        self.zap_count = 0

    # ------------------------------------------------------------------
    def _pick_channel(self, exclude: int = -1) -> int:
        weights = self.popularity.copy()
        if 0 <= exclude < weights.size and weights.size > 1:
            weights[exclude] = 0.0
            weights = weights / weights.sum()
        return int(self._rng.choice(weights.size, p=weights))

    def _join(self, viewer: _Viewer, channel: Optional[int] = None) -> None:
        if viewer.done:
            return
        now = self.engine.now
        if now >= viewer.deadline:
            viewer.done = True
            return
        if channel is None:
            channel = self._pick_channel()
        viewer.channel = channel
        viewer.attempts += 1
        system = self.deployment.channel(channel)
        node = system.spawn_peer(user_id=viewer.user_id,
                                 attempt=viewer.attempts)
        node.on_session_end = lambda n, v=viewer: self._session_ended(v, n)
        viewer.node = node
        # schedule the zap-or-stay decision and the final departure
        self.engine.schedule(
            self.zap_after_s, lambda v=viewer, n=node: self._maybe_zap(v, n)
        )
        self.engine.schedule_at(
            viewer.deadline, lambda v=viewer, n=node: self._depart(v, n)
        )

    def _maybe_zap(self, viewer: _Viewer, node: PeerNode) -> None:
        if viewer.done or viewer.node is not node or not node.alive:
            return
        if self.deployment.n_channels < 2:
            return
        if self._rng.random() < self.zap_probability:
            viewer.zaps += 1
            self.zap_count += 1
            target = self._pick_channel(exclude=viewer.channel)
            node.on_session_end = None  # the zap handles the follow-up
            node.leave(LeaveReason.NORMAL)
            self._join(viewer, channel=target)

    def _depart(self, viewer: _Viewer, node: PeerNode) -> None:
        if viewer.node is not node or viewer.done:
            return
        viewer.done = True
        if node.alive:
            node.on_session_end = None
            node.leave(LeaveReason.NORMAL)

    def _session_ended(self, viewer: _Viewer, node: PeerNode) -> None:
        if viewer.done:
            return
        if node.outcome in (SessionOutcome.NORMAL, SessionOutcome.PROGRAM_END):
            viewer.done = True
            return
        # failed/impatient: retry on a (possibly different) channel
        if viewer.attempts > self.max_retries:
            viewer.done = True
            return
        backoff = self.retry_backoff_s * (0.5 + self._rng.random())
        self.engine.schedule(backoff, lambda v=viewer: self._join(v))

    # ------------------------------------------------------------------
    def viewers_watching(self) -> int:
        """Viewers with a live session right now."""
        return sum(
            1 for v in self.viewers
            if not v.done and v.node is not None and v.node.alive
        )

    def zap_histogram(self) -> Dict[int, int]:
        """zaps -> viewer count (only viewers whose arrival passed)."""
        hist: Dict[int, int] = {}
        for v in self.viewers:
            if v.attempts > 0 or v.done:
                hist[v.zaps] = hist.get(v.zaps, 0) + 1
        return hist
