"""Synthetic workload generation.

Replaces the paper's live Internet audience (DESIGN.md substitution table):

* :mod:`repro.workload.arrivals` -- arrival processes: homogeneous Poisson,
  piecewise-rate diurnal profiles (Fig. 5a's day shape) and flash crowds
  (the 18:00-22:00 evening ramp of Fig. 5b).
* :mod:`repro.workload.sessions` -- session-duration laws: the lognormal /
  Pareto mixture producing Fig. 10a's heavy tail, plus program-end
  departure waves (the 22:00 drop).
* :mod:`repro.workload.users` -- :class:`UserAgent`: one *user* who may run
  several *sessions* (join retries after impatience/failure, Fig. 10b).
* :mod:`repro.workload.scenarios` -- presets, including the scaled-down
  "evening broadcast" used throughout the benchmarks.
"""

from repro.workload.arrivals import (
    ArrivalProcess,
    DiurnalProfile,
    FlashCrowd,
    PoissonArrivals,
    merge_arrivals,
)
from repro.workload.sessions import SessionDurationModel, ProgramSchedule
from repro.workload.surfing import ChannelAudience, zipf_popularity
from repro.workload.users import UserAgent, UserPopulation
from repro.workload.scenarios import Scenario, evening_broadcast, steady_audience, flash_crowd_storm

__all__ = [
    "ArrivalProcess",
    "DiurnalProfile",
    "FlashCrowd",
    "PoissonArrivals",
    "merge_arrivals",
    "SessionDurationModel",
    "ProgramSchedule",
    "ChannelAudience",
    "zipf_popularity",
    "UserAgent",
    "UserPopulation",
    "Scenario",
    "evening_broadcast",
    "steady_audience",
    "flash_crowd_storm",
]
