"""User agents: the human behind the peer.

A *user* arrives once, intends to watch for some duration, and may run
several *sessions*: when a join attempt times out (impatience) or the
stream becomes unwatchable (stall departure), the user re-tries after a
short backoff -- "many users initiate joining multiple times before
successfully obtaining the video program" (Section V.E, Fig. 10b).

The agent also implements departures: a scheduled normal leave when the
intended watch time is up, probabilistic leaves at program endings (the
22:00 cliff), and a configurable share of *abrupt* departures that send no
leave report -- the log-visibility artefact Section V.D leans on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.node import PeerNode, SessionOutcome
from repro.core.system import CoolstreamingSystem
from repro.telemetry.reports import LeaveReason
from repro.workload.sessions import ProgramSchedule, SessionDurationModel

__all__ = ["UserAgent", "UserPopulation"]


@dataclass
class SessionRecord:
    """Ground-truth record of one session of one user (simulator-side)."""

    session_id: int
    attempt: int
    started_at: float
    ended_at: Optional[float] = None
    outcome: Optional[SessionOutcome] = None


class UserAgent:
    """One user: arrival, watch intent, retries, departure."""

    def __init__(
        self,
        system: CoolstreamingSystem,
        *,
        user_id: int,
        arrival_time: float,
        intended_duration_s: float,
        max_retries: int,
        retry_backoff_s: float,
        silent_leave_prob: float = 0.1,
    ) -> None:
        self.system = system
        self.user_id = user_id
        self.arrival_time = float(arrival_time)
        self.departure_deadline = self.arrival_time + float(intended_duration_s)
        self.max_retries = int(max_retries)
        self.retry_backoff_s = float(retry_backoff_s)
        self.silent_leave_prob = float(silent_leave_prob)
        self._rng = system.rng.stream(f"user.{user_id}")
        self.attempts = 0
        self.sessions: List[SessionRecord] = []
        self.node: Optional[PeerNode] = None
        self.done = False

    # ------------------------------------------------------------------
    def schedule_arrival(self) -> None:
        """Put the user's first join on the engine."""
        self.system.engine.schedule_at(self.arrival_time, self._join)

    def _join(self) -> None:
        if self.done:
            return
        now = self.system.engine.now
        if now >= self.departure_deadline:
            self.done = True  # patience/backoff ate the whole watch window
            return
        self.attempts += 1
        node = self.system.spawn_peer(user_id=self.user_id, attempt=self.attempts)
        node.on_session_end = self._on_session_end
        self.node = node
        self.sessions.append(
            SessionRecord(session_id=node.session_id, attempt=self.attempts,
                          started_at=now)
        )
        # normal departure when the intended watch time is up
        self.system.engine.schedule_at(
            self.departure_deadline,
            lambda n=node: self._depart_normally(n),
        )

    def _depart_normally(self, node: PeerNode) -> None:
        if node is self.node and node.alive:
            silent = bool(self._rng.random() < self.silent_leave_prob)
            node.leave(LeaveReason.NORMAL, silent=silent)

    def program_ended(self, leave_probability: float) -> None:
        """A program just finished; this user leaves with the given
        probability (and does not rejoin)."""
        if self.done or self.node is None or not self.node.alive:
            return
        if self._rng.random() < leave_probability:
            self.done = True
            self.node.leave(LeaveReason.PROGRAM_END)

    # ------------------------------------------------------------------
    def _on_session_end(self, node: PeerNode) -> None:
        record = self.sessions[-1]
        record.ended_at = self.system.engine.now
        record.outcome = node.outcome
        if self.done:
            return
        if node.outcome in (SessionOutcome.NORMAL, SessionOutcome.PROGRAM_END):
            self.done = True
            return
        # impatient/failed: retry while the user still wants to watch
        if self.attempts > self.max_retries:
            self.done = True
            return
        backoff = self.retry_backoff_s * (0.5 + self._rng.random())
        self.system.engine.schedule(backoff, self._join)

    # ------------------------------------------------------------------
    @property
    def ever_played(self) -> bool:
        """Whether any of the user's sessions reached playback."""
        return any(
            s.outcome in (SessionOutcome.NORMAL, SessionOutcome.PROGRAM_END)
            for s in self.sessions
        ) or (self.node is not None and self.node.player_ready_at is not None)

    @property
    def retry_count(self) -> int:
        """Join attempts beyond the first (the Fig. 10b statistic)."""
        return max(0, self.attempts - 1)


class UserPopulation:
    """Drives a whole audience against one system.

    Construction samples nothing; :meth:`attach` schedules every arrival,
    program-ending wave and departure on the system's engine.
    """

    def __init__(
        self,
        system: CoolstreamingSystem,
        *,
        arrival_times: np.ndarray,
        durations: Optional[np.ndarray] = None,
        duration_model: Optional[SessionDurationModel] = None,
        schedule: Optional[ProgramSchedule] = None,
        silent_leave_prob: float = 0.1,
        user_id_base: int = 0,
    ) -> None:
        self.system = system
        self.duration_model = duration_model or SessionDurationModel()
        self.schedule = schedule or ProgramSchedule()
        self.users: List[UserAgent] = []
        if durations is None:
            # legacy path: sample here from the system hub's canonical
            # stream -- byte-identical to what repro.runtime pre-samples
            # from a standalone hub with the same seed
            rng = system.rng.stream("workload.durations")
            durations = self.duration_model.sample(rng, len(arrival_times))
        elif len(durations) != len(arrival_times):
            raise ValueError("durations must align with arrival_times")
        cfg = system.cfg
        for i, (t, dur) in enumerate(zip(np.asarray(arrival_times), durations)):
            self.users.append(
                UserAgent(
                    system,
                    user_id=user_id_base + i,
                    arrival_time=float(t),
                    intended_duration_s=float(dur),
                    max_retries=cfg.max_join_retries,
                    retry_backoff_s=cfg.retry_backoff_s,
                    silent_leave_prob=silent_leave_prob,
                )
            )
        self._attached = False

    def attach(self) -> None:
        """Schedule all arrivals and program endings.  Idempotent-guarded."""
        if self._attached:
            raise RuntimeError("population already attached")
        self._attached = True
        for user in self.users:
            user.schedule_arrival()
        for time_s, prob in self.schedule.endings:
            self.system.engine.schedule_at(
                time_s, lambda p=prob: self._program_ending(p)
            )

    def _program_ending(self, leave_probability: float) -> None:
        for user in self.users:
            user.program_ended(leave_probability)

    # --- ground-truth statistics --------------------------------------------
    def retry_histogram(self) -> dict[int, int]:
        """retries -> number of users (only users whose arrival has passed)."""
        now = self.system.engine.now
        hist: dict[int, int] = {}
        for user in self.users:
            if user.arrival_time > now:
                continue
            hist[user.retry_count] = hist.get(user.retry_count, 0) + 1
        return hist

    def success_fraction(self) -> float:
        """Fraction of arrived users that ever reached playback."""
        now = self.system.engine.now
        arrived = [u for u in self.users if u.arrival_time <= now]
        if not arrived:
            return float("nan")
        return sum(1 for u in arrived if u.ever_played) / len(arrived)
