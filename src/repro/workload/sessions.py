"""Session-duration laws and program schedules.

Fig. 10a shows the session-duration distribution of the measured event:
heavy-tailed ("once the user can successfully obtain the video stream,
they are fairly stable and remain in the system throughout the entire
program duration") with a large spike of sub-minute sessions (failed
joins, modelled by the retry machinery, not here).

We model *intended* watch time -- how long the user would stay if the
stream works -- as a mixture of a lognormal body (casual zapping) and a
Pareto tail (program-length stays).  The program schedule superimposes
hard endings: at a program end, each watching user leaves with high
probability, producing the 22:00 cliff of Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np

__all__ = ["SessionDurationModel", "FixedDuration", "ProgramSchedule"]


@dataclass(frozen=True)
class SessionDurationModel:
    """Lognormal + Pareto mixture of intended session durations (seconds).

    Parameters follow the qualitative shape of Fig. 10a at the scaled-down
    event length: median casual stays of ~8 minutes, and a tail of viewers
    who keep watching for hours (truncated by the program schedule).
    """

    lognorm_median_s: float = 480.0
    lognorm_sigma: float = 1.1
    pareto_scale_s: float = 1800.0
    pareto_alpha: float = 1.3
    tail_weight: float = 0.35
    min_duration_s: float = 10.0

    def __post_init__(self) -> None:
        if self.lognorm_median_s <= 0 or self.pareto_scale_s <= 0:
            raise ValueError("scales must be positive")
        if self.lognorm_sigma <= 0 or self.pareto_alpha <= 0:
            raise ValueError("shape parameters must be positive")
        if not (0.0 <= self.tail_weight <= 1.0):
            raise ValueError("tail_weight must be a probability")
        if self.min_duration_s < 0:
            raise ValueError("min_duration_s must be non-negative")

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Draw ``n`` intended durations."""
        n = int(n)
        tail = rng.random(n) < self.tail_weight
        out = np.empty(n, dtype=float)
        n_body = int((~tail).sum())
        if n_body:
            out[~tail] = rng.lognormal(
                mean=np.log(self.lognorm_median_s), sigma=self.lognorm_sigma,
                size=n_body,
            )
        n_tail = int(tail.sum())
        if n_tail:
            out[tail] = self.pareto_scale_s * (
                1.0 + rng.pareto(self.pareto_alpha, size=n_tail)
            )
        return np.maximum(out, self.min_duration_s)

    def mean_estimate(self, rng: np.random.Generator, n: int = 50_000) -> float:
        """Monte-Carlo mean (the analytic mean diverges for alpha <= 1)."""
        return float(np.mean(self.sample(rng, n)))


@dataclass(frozen=True)
class FixedDuration:
    """Every user intends to watch exactly ``duration_s`` seconds.

    Used by the Fig. 9 sweeps, where everyone staying to the horizon is
    what isolates continuity from churn.  ``sample`` consumes no random
    numbers, so the durations stream stays untouched (bit-compatible with
    workloads that never drew from it).
    """

    duration_s: float

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """``n`` copies of the fixed duration (no RNG draws)."""
        return np.full(int(n), float(self.duration_s))


@dataclass(frozen=True)
class ProgramSchedule:
    """Program end times and the audience share leaving at each.

    ``endings`` holds (time_s, leave_probability) pairs: at ``time_s``
    every currently watching user independently leaves with the given
    probability.  This produces the sharp drop "around 22:00 ... caused by
    the ending of some programs" in Fig. 5a/5b.
    """

    endings: Tuple[Tuple[float, float], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for t, p in self.endings:
            if t < 0:
                raise ValueError("ending times must be non-negative")
            if not (0.0 <= p <= 1.0):
                raise ValueError("leave probabilities must be in [0, 1]")
        times = [t for t, _p in self.endings]
        if any(t2 <= t1 for t1, t2 in zip(times, times[1:])):
            raise ValueError("ending times must be strictly increasing")

    @classmethod
    def single_ending(cls, time_s: float, leave_probability: float = 0.75
                      ) -> "ProgramSchedule":
        """A schedule with exactly one program ending."""
        return cls(endings=((time_s, leave_probability),))

    def events_in(self, t0: float, t1: float) -> Sequence[Tuple[float, float]]:
        """Endings falling within ``[t0, t1)``."""
        return [(t, p) for t, p in self.endings if t0 <= t < t1]
