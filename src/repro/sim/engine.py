"""Event-driven simulation kernel.

The kernel is deliberately small and callback-based rather than
coroutine-based: profiling mesh-pull workloads showed that the dominant cost
at scale is per-event overhead, and a plain ``heapq`` of ``(time, seq,
event)`` tuples is several times cheaper than generator-based processes.
Protocol code schedules closures; periodic behaviour uses
:class:`PeriodicTask`.

Three design points keep the constant factors down at paper scale:

* heap entries are plain tuples, so every sift comparison resolves on the
  ``(time, seq)`` prefix in C without calling back into Python;
* ``__len__`` is O(1): a live-event counter is maintained on schedule,
  cancel and pop instead of scanning the heap;
* cancellation is lazy (a flag checked on pop), but when cancelled entries
  outnumber live ones the heap is compacted in one O(n) pass -- partner
  reselection churn would otherwise grow the heap without bound.

Determinism: events scheduled for the same timestamp fire in scheduling
order (a monotonically increasing sequence number breaks ties), so a run is
bit-for-bit reproducible given the same seed and scenario.  Compaction
cannot reorder anything: ``(time, seq)`` is a total order, so the pop
sequence of the rebuilt heap is identical to the lazy one.
"""

from __future__ import annotations

import heapq
import itertools
from time import perf_counter
from typing import Any, Callable, List, Optional, Tuple

from repro.obs import context as _obs_context

__all__ = ["Engine", "Event", "PeriodicTask", "SimulationError"]

#: Compaction threshold: never compact heaps smaller than this (the O(n)
#: rebuild is not worth it below a few hundred entries).
_COMPACT_MIN_HEAP = 512


class SimulationError(RuntimeError):
    """Raised on kernel misuse (scheduling in the past, running twice...)."""


class Event:
    """A scheduled callback.

    Events still compare by ``(time, seq)`` for backwards compatibility,
    but the heap itself stores ``(time, seq, event)`` tuples so sift
    comparisons never reach Python.  Cancelling an event merely flags it;
    the heap entry is skipped lazily when popped (cheaper than heap surgery
    for the cancellation rates seen in partner-reselection workloads),
    though the engine compacts in bulk when cancellations pile up.
    """

    __slots__ = ("time", "seq", "fn", "cancelled", "_engine")

    def __init__(self, time: float, seq: int, fn: Callable[[], None],
                 cancelled: bool = False, engine: Optional["Engine"] = None) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = cancelled
        # back-reference used to maintain the engine's O(1) live-event
        # counter; detached (set to None) once the entry leaves the heap so
        # late cancels cannot corrupt the count
        self._engine = engine

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flag = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time} seq={self.seq}{flag}>"

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        eng = self._engine
        if eng is not None:
            self._engine = None
            eng._live -= 1
            eng._maybe_compact()


class Engine:
    """Binary-heap discrete-event loop.

    Parameters
    ----------
    start_time:
        Simulated clock value at which the engine starts (seconds).

    Examples
    --------
    >>> eng = Engine()
    >>> out = []
    >>> _ = eng.schedule(5.0, lambda: out.append(eng.now))
    >>> eng.run(until=10.0)
    >>> out
    [5.0]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        #: Current simulated time in seconds.  A plain attribute (the hot
        #: loops write it per event and protocol code reads it constantly);
        #: treat as read-only outside the kernel.
        self.now = float(start_time)
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._live = 0  # non-cancelled entries currently in the heap
        self._running = False
        self._stopped = False
        self._buckets: dict = {}  # (period, next_time) -> _TimerBucket
        self.events_processed = 0
        self.events_cancelled = 0
        self.heap_compactions = 0
        # observability: engines created inside an active repro.obs session
        # attach automatically; otherwise the kernel keeps its original,
        # instrumentation-free loop (the disabled fast path)
        self._obs = _obs_context.current()

    # ------------------------------------------------------------------
    # clock & introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of pending (non-cancelled) events.  O(1)."""
        return self._live

    def peek(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None`` if the heap is empty."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            self.events_cancelled += 1
        return heap[0][0] if heap else None

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, which may be cancelled.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        seq = next(self._seq)
        time = float(self.now + delay)
        ev = Event(time, seq, fn, False, self)
        heapq.heappush(self._heap, (time, seq, ev))
        self._live += 1
        return ev

    def schedule_at(self, time: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` at absolute simulated time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        time = float(time)
        seq = next(self._seq)
        ev = Event(time, seq, fn, False, self)
        heapq.heappush(self._heap, (time, seq, ev))
        self._live += 1
        return ev

    def call_soon(self, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` at the current time (after pending same-time events)."""
        return self.schedule(0.0, fn)

    # ------------------------------------------------------------------
    # heap hygiene
    # ------------------------------------------------------------------
    def _maybe_compact(self) -> None:
        """Rebuild the heap without cancelled entries once they dominate.

        Triggered from :meth:`Event.cancel`: when more than half the heap
        is dead weight (and the heap is big enough to matter), one O(n)
        heapify is cheaper than sifting every future push/pop through the
        corpses.  Removed entries count towards :attr:`events_cancelled`,
        exactly as if the loop had popped and skipped them.
        """
        heap = self._heap
        dead = len(heap) - self._live
        if dead <= self._live or len(heap) < _COMPACT_MIN_HEAP:
            return
        # in-place rebuild: the run loops hold a reference to this list
        heap[:] = [entry for entry in heap if not entry[2].cancelled]
        heapq.heapify(heap)
        self.events_cancelled += dead
        self.heap_compactions += 1

    def _bucket_for(self, period: float, time: float) -> "_TimerBucket":
        """Find or create the shared periodic-timer bucket firing at
        ``(period, time)`` (see :class:`_TimerBucket`)."""
        key = (period, time)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = _TimerBucket(self, period, time)
            bucket.event = self.schedule_at(time, bucket._fire)
            self._buckets[key] = bucket
        return bucket

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def attach_obs(self, ctx) -> None:
        """Attach an observability context explicitly.

        Guarded against double-instrumentation: attaching twice would run
        the observed loop with stale pre-fetched metrics and double-count
        trace events, so it raises instead.
        """
        if self._obs is not None:
            raise SimulationError("engine is already instrumented")
        self._obs = ctx

    def detach_obs(self) -> None:
        """Remove instrumentation; the kernel reverts to the plain loop."""
        self._obs = None

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Process events until the heap empties, ``until`` is reached, or
        ``max_events`` have fired.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fires earlier, so periodic statistics windows
        close deterministically.
        """
        if self._running:
            raise SimulationError("engine is already running")
        self._running = True
        self._stopped = False
        try:
            if self._obs is None:
                self._loop(until, max_events)
            else:
                self._loop_observed(until, max_events)
        finally:
            self._running = False
        if until is not None and not self._stopped and self.now < until:
            self.now = until

    def _loop(self, until: Optional[float], max_events: Optional[int]) -> None:
        """The original instrumentation-free hot loop (disabled fast path:
        observability adds exactly one ``is None`` dispatch per ``run()``
        call, nothing per event)."""
        fired = 0
        heap = self._heap
        pop = heapq.heappop
        # sentinel bounds turn the per-event `is not None` guards into one
        # plain comparison each (never true for the sentinels)
        if until is None:
            until = float("inf")
        if max_events is None:
            max_events = 0x7FFFFFFFFFFFFFFF
        while heap:
            entry = heap[0]
            ev = entry[2]
            if ev.cancelled:
                pop(heap)
                self.events_cancelled += 1
                continue
            time = entry[0]
            if time > until or fired >= max_events:
                break
            pop(heap)
            self._live -= 1
            ev._engine = None
            self.now = time
            ev.fn()
            fired += 1
            self.events_processed += 1
            if self._stopped:
                break

    def _loop_observed(self, until: Optional[float], max_events: Optional[int]) -> None:
        """Instrumented twin of :meth:`_loop`.

        Two tiers share the same counters and names.  Tracing sessions run
        the full-fidelity loop (:meth:`_loop_traced`): per-event timers,
        trace spans, per-event heap gauges.  Metrics-only sessions run a
        cheap loop: batched per-event counters (exact totals, flushed at
        every snapshot boundary) plus *sampled* wall-time/heap-depth
        instrumentation on one event in 64 -- the expensive reads
        (``perf_counter`` pairs, ``__qualname__`` lookups) that dominated
        the enabled-mode overhead.  Sampling is by deterministic event
        index, so counters -- the seed-determinism subset -- stay exact.
        Simulation behaviour (event order, clock, RNG) is bit-identical to
        the plain loop in both tiers: instrumentation only reads.
        """
        ctx = self._obs
        if ctx.trace is not None:
            self._loop_traced(until, max_events)
            return
        reg = ctx.registry
        progress = ctx.progress
        c_exec = reg.batched_counter("engine.events_executed")
        c_cancel = reg.batched_counter("engine.events_cancelled")
        g_heap = reg.gauge("engine.heap_depth")
        g_heap_max = reg.gauge("engine.heap_depth_max")
        site_timers: dict = {}
        fired = 0
        heap = self._heap
        pop = heapq.heappop
        if until is None:
            until = float("inf")
        if max_events is None:
            max_events = 0x7FFFFFFFFFFFFFFF
        try:
            while heap:
                entry = heap[0]
                ev = entry[2]
                if ev.cancelled:
                    pop(heap)
                    self.events_cancelled += 1
                    c_cancel.pending += 1
                    continue
                time = entry[0]
                if time > until or fired >= max_events:
                    break
                pop(heap)
                self._live -= 1
                ev._engine = None
                self.now = time
                fn = ev.fn
                if fired & 0x3F:
                    # unsampled fast path: clock read and site lookup skipped
                    fn()
                else:
                    t0 = perf_counter()  # repro: noqa[DET002] obs event-timer instrumentation only
                    fn()
                    dur = perf_counter() - t0  # repro: noqa[DET002] obs event-timer instrumentation only
                    site = getattr(fn, "__qualname__", None) or type(fn).__name__
                    timer = site_timers.get(site)
                    if timer is None:
                        timer = reg.timer(f"engine.callback.{site}")
                        site_timers[site] = timer
                    timer.observe(dur)
                    depth = len(heap)
                    g_heap.set(depth)
                    g_heap_max.max(depth)
                fired += 1
                self.events_processed += 1
                c_exec.pending += 1
                if progress is not None and not (fired & 0x3FF):
                    progress.maybe_beat(self.now, self.events_processed)
                if self._stopped:
                    break
        finally:
            # exact totals even if a callback raised mid-loop
            reg.flush_batched()

    def _loop_traced(self, until: Optional[float], max_events: Optional[int]) -> None:
        """Full-fidelity instrumented loop for tracing sessions.

        Adds per-event counters, a heap-depth gauge, per-callback-site
        wall-time timers, Chrome trace spans and the progress heartbeat.
        """
        ctx = self._obs
        reg = ctx.registry
        trace = ctx.trace
        progress = ctx.progress
        c_exec = reg.counter("engine.events_executed")
        c_cancel = reg.counter("engine.events_cancelled")
        g_heap = reg.gauge("engine.heap_depth")
        g_heap_max = reg.gauge("engine.heap_depth_max")
        site_timers: dict = {}
        fired = 0
        heap = self._heap
        pop = heapq.heappop
        while heap:
            entry = heap[0]
            ev = entry[2]
            if ev.cancelled:
                pop(heap)
                self.events_cancelled += 1
                c_cancel.inc()
                continue
            time = entry[0]
            if until is not None and time > until:
                break
            if max_events is not None and fired >= max_events:
                break
            pop(heap)
            self._live -= 1
            ev._engine = None
            self.now = time
            fn = ev.fn
            t0 = perf_counter()  # repro: noqa[DET002] obs event-timer instrumentation only
            fn()
            dur = perf_counter() - t0  # repro: noqa[DET002] obs event-timer instrumentation only
            fired += 1
            self.events_processed += 1
            c_exec.inc()
            depth = len(heap)
            g_heap.set(depth)
            g_heap_max.max(depth)
            site = getattr(fn, "__qualname__", None) or type(fn).__name__
            timer = site_timers.get(site)
            if timer is None:
                timer = reg.timer(f"engine.callback.{site}")
                site_timers[site] = timer
            timer.observe(dur)
            if trace is not None:
                trace.complete(site, trace.rel_us(t0), dur * 1e6,
                               cat="engine", sim_time=self.now)
            if progress is not None and not (fired & 0x3FF):
                progress.maybe_beat(self.now, self.events_processed)
            if self._stopped:
                break

    def stop(self) -> None:
        """Stop the loop after the current callback returns."""
        self._stopped = True


class _TimerBucket:
    """One heap entry shared by every periodic task on the same cadence.

    Tasks registered with an identical ``(period, next_fire_time)`` key
    fire from a single :class:`Event`; members run in registration order,
    which matches the ``(time, seq)`` order separate per-task events would
    have had (per-task events would carry adjacent sequence numbers).  After
    firing, the surviving members re-register as one bucket at
    ``time + period``, so a steady cadence costs one heap entry per firing
    regardless of how many nodes share it.
    """

    __slots__ = ("engine", "period", "time", "key", "tasks", "live", "event")

    def __init__(self, engine: "Engine", period: float, time: float) -> None:
        self.engine = engine
        self.period = period
        self.time = time
        self.key = (period, time)  # cached: built once per firing, not twice
        self.tasks: List["PeriodicTask"] = []
        self.live = 0  # members not yet stopped
        self.event: Optional[Event] = None

    def _fire(self) -> None:
        engine = self.engine
        buckets = engine._buckets
        del buckets[self.key]
        ev = self.event
        self.event = None
        tasks = self.tasks
        for task in tasks:
            # a member may be stopped by an earlier member's callback in
            # this same firing -- exactly like a cancelled per-task event
            if not task._stopped:
                task._fn()
        if self.live <= 0:
            return
        next_time = self.time + self.period
        if self.live != len(tasks):
            # prune members stopped since the last firing (or just now)
            self.tasks = tasks = [t for t in tasks if not t._stopped]
        key = (self.period, next_time)
        other = buckets.get(key)
        if other is None:
            # steady state: re-use this bucket AND the event object that
            # just fired, pushing inline (next_time > now, so schedule_at's
            # past-check is vacuous; the seq keeps (time, seq) total order)
            self.time = next_time
            self.key = key
            seq = next(engine._seq)
            ev.time = next_time
            ev.seq = seq
            ev._engine = engine
            self.event = ev
            heapq.heappush(engine._heap, (next_time, seq, ev))
            engine._live += 1
            buckets[key] = self
        else:
            # another cadence-mate already occupies the slot: merge into it
            for task in tasks:
                other.tasks.append(task)
                task._bucket = other
            other.live += len(tasks)

    def remove(self, task: "PeriodicTask") -> None:
        """Account for a stopped member; drop the heap entry when the last
        member leaves (so stopped cadences do not linger in the heap)."""
        self.live -= 1
        if self.live <= 0 and self.event is not None:
            self.event.cancel()
            self.event = None
            self.engine._buckets.pop(self.key, None)


class PeriodicTask:
    """Re-arming timer: runs ``fn`` every ``period`` seconds until stopped.

    The first invocation happens after ``first_delay`` (default: one full
    period).  Optional jitter decorrelates peers that start simultaneously --
    e.g. 5-minute status reports in a flash crowd must not all land on the
    log server in the same instant, exactly as in the deployed system where
    report phase depends on join time.

    Unjittered tasks are *bucketed*: tasks sharing an exact
    ``(period, phase)`` ride one heap entry instead of one each (see
    :class:`_TimerBucket`), which collapses the per-tick heap traffic of
    phase-aligned populations.  Jittered tasks re-draw their delay every
    period, so each keeps its own event.
    """

    def __init__(
        self,
        engine: Engine,
        period: float,
        fn: Callable[[], None],
        *,
        first_delay: Optional[float] = None,
        jitter: float = 0.0,
        rng: Optional[Any] = None,
    ) -> None:
        if period <= 0:
            raise SimulationError(f"period must be positive (got {period})")
        if jitter and rng is None:
            raise SimulationError("jitter requires an rng")
        self._engine = engine
        self._period = float(period)
        self._fn = fn
        self._jitter = float(jitter)
        self._rng = rng
        self._stopped = False
        self._event: Optional[Event] = None
        self._bucket: Optional[_TimerBucket] = None
        delay = self._period if first_delay is None else float(first_delay)
        if self._jitter:
            self._arm(delay)
        else:
            if delay < 0:
                raise SimulationError(
                    f"cannot schedule into the past (delay={delay})"
                )
            bucket = engine._bucket_for(self._period, engine.now + delay)
            bucket.tasks.append(self)
            bucket.live += 1
            self._bucket = bucket

    def _arm(self, delay: float) -> None:
        delay = max(0.0, delay + self._rng.uniform(-self._jitter, self._jitter))
        self._event = self._engine.schedule(delay, self._tick)

    def _tick(self) -> None:
        # jittered path only; bucketed tasks are driven by their bucket
        if self._stopped:
            return
        self._fn()
        if not self._stopped:
            self._arm(self._period)

    @property
    def period(self) -> float:
        """The firing period in seconds."""
        return self._period

    def stop(self) -> None:
        """Stop the task; pending firing is cancelled."""
        if self._stopped:
            return
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
        if self._bucket is not None:
            self._bucket.remove(self)
            self._bucket = None
