"""Event-driven simulation kernel.

The kernel is deliberately small and callback-based rather than
coroutine-based: profiling mesh-pull workloads showed that the dominant cost
at scale is per-event overhead, and a plain ``heapq`` of ``(time, seq, fn)``
tuples is several times cheaper than generator-based processes.  Protocol
code schedules closures; periodic behaviour uses :class:`PeriodicTask`.

Determinism: events scheduled for the same timestamp fire in scheduling
order (a monotonically increasing sequence number breaks ties), so a run is
bit-for-bit reproducible given the same seed and scenario.
"""

from __future__ import annotations

import heapq
import itertools
from time import perf_counter
from typing import Any, Callable, Optional

from repro.obs import context as _obs_context

__all__ = ["Engine", "Event", "PeriodicTask", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on kernel misuse (scheduling in the past, running twice...)."""


class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)`` which is what the heap orders on;
    ``__lt__`` is hand-written because it is the hottest comparison in the
    simulator (every heap sift calls it).  Cancelling an event merely
    flags it; the heap entry is skipped lazily when popped (cheaper than
    heap surgery for the cancellation rates seen in partner-reselection
    workloads).
    """

    __slots__ = ("time", "seq", "fn", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[[], None],
                 cancelled: bool = False) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = cancelled

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flag = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time} seq={self.seq}{flag}>"

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent."""
        self.cancelled = True


class Engine:
    """Binary-heap discrete-event loop.

    Parameters
    ----------
    start_time:
        Simulated clock value at which the engine starts (seconds).

    Examples
    --------
    >>> eng = Engine()
    >>> out = []
    >>> _ = eng.schedule(5.0, lambda: out.append(eng.now))
    >>> eng.run(until=10.0)
    >>> out
    [5.0]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self.events_processed = 0
        self.events_cancelled = 0
        # observability: engines created inside an active repro.obs session
        # attach automatically; otherwise the kernel keeps its original,
        # instrumentation-free loop (the disabled fast path)
        self._obs = _obs_context.current()

    # ------------------------------------------------------------------
    # clock & introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def __len__(self) -> int:
        """Number of pending (non-cancelled) events."""
        return sum(1 for ev in self._heap if not ev.cancelled)

    def peek(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None`` if the heap is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self.events_cancelled += 1
        return self._heap[0].time if self._heap else None

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, which may be cancelled.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn)

    def schedule_at(self, time: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` at absolute simulated time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        ev = Event(time=float(time), seq=next(self._seq), fn=fn)
        heapq.heappush(self._heap, ev)
        return ev

    def call_soon(self, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` at the current time (after pending same-time events)."""
        return self.schedule(0.0, fn)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def attach_obs(self, ctx) -> None:
        """Attach an observability context explicitly.

        Guarded against double-instrumentation: attaching twice would run
        the observed loop with stale pre-fetched metrics and double-count
        trace events, so it raises instead.
        """
        if self._obs is not None:
            raise SimulationError("engine is already instrumented")
        self._obs = ctx

    def detach_obs(self) -> None:
        """Remove instrumentation; the kernel reverts to the plain loop."""
        self._obs = None

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Process events until the heap empties, ``until`` is reached, or
        ``max_events`` have fired.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fires earlier, so periodic statistics windows
        close deterministically.
        """
        if self._running:
            raise SimulationError("engine is already running")
        self._running = True
        self._stopped = False
        try:
            if self._obs is None:
                self._loop(until, max_events)
            else:
                self._loop_observed(until, max_events)
        finally:
            self._running = False
        if until is not None and not self._stopped and self._now < until:
            self._now = until

    def _loop(self, until: Optional[float], max_events: Optional[int]) -> None:
        """The original instrumentation-free hot loop (disabled fast path:
        observability adds exactly one ``is None`` dispatch per ``run()``
        call, nothing per event)."""
        fired = 0
        while self._heap:
            ev = self._heap[0]
            if ev.cancelled:
                heapq.heappop(self._heap)
                self.events_cancelled += 1
                continue
            if until is not None and ev.time > until:
                break
            if max_events is not None and fired >= max_events:
                break
            heapq.heappop(self._heap)
            self._now = ev.time
            ev.fn()
            fired += 1
            self.events_processed += 1
            if self._stopped:
                break

    def _loop_observed(self, until: Optional[float], max_events: Optional[int]) -> None:
        """Instrumented twin of :meth:`_loop`.

        Adds per-event counters, a heap-depth gauge, per-callback-site
        wall-time timers, Chrome trace spans and the progress heartbeat.
        Simulation behaviour (event order, clock, RNG) is bit-identical to
        the plain loop: instrumentation only reads.
        """
        ctx = self._obs
        reg = ctx.registry
        trace = ctx.trace
        progress = ctx.progress
        c_exec = reg.counter("engine.events_executed")
        c_cancel = reg.counter("engine.events_cancelled")
        g_heap = reg.gauge("engine.heap_depth")
        g_heap_max = reg.gauge("engine.heap_depth_max")
        site_timers: dict = {}
        fired = 0
        heap = self._heap
        while heap:
            ev = heap[0]
            if ev.cancelled:
                heapq.heappop(heap)
                self.events_cancelled += 1
                c_cancel.inc()
                continue
            if until is not None and ev.time > until:
                break
            if max_events is not None and fired >= max_events:
                break
            heapq.heappop(heap)
            self._now = ev.time
            fn = ev.fn
            t0 = perf_counter()  # repro: noqa[DET002] obs event-timer instrumentation only
            fn()
            dur = perf_counter() - t0  # repro: noqa[DET002] obs event-timer instrumentation only
            fired += 1
            self.events_processed += 1
            c_exec.inc()
            depth = len(heap)
            g_heap.set(depth)
            g_heap_max.max(depth)
            site = getattr(fn, "__qualname__", None) or type(fn).__name__
            timer = site_timers.get(site)
            if timer is None:
                timer = reg.timer(f"engine.callback.{site}")
                site_timers[site] = timer
            timer.observe(dur)
            if trace is not None:
                trace.complete(site, trace.rel_us(t0), dur * 1e6,
                               cat="engine", sim_time=self._now)
            if progress is not None and not (fired & 0x3FF):
                progress.maybe_beat(self._now, self.events_processed)
            if self._stopped:
                break

    def stop(self) -> None:
        """Stop the loop after the current callback returns."""
        self._stopped = True


class PeriodicTask:
    """Re-arming timer: runs ``fn`` every ``period`` seconds until stopped.

    The first invocation happens after ``first_delay`` (default: one full
    period).  Optional jitter decorrelates peers that start simultaneously --
    e.g. 5-minute status reports in a flash crowd must not all land on the
    log server in the same instant, exactly as in the deployed system where
    report phase depends on join time.
    """

    def __init__(
        self,
        engine: Engine,
        period: float,
        fn: Callable[[], None],
        *,
        first_delay: Optional[float] = None,
        jitter: float = 0.0,
        rng: Optional[Any] = None,
    ) -> None:
        if period <= 0:
            raise SimulationError(f"period must be positive (got {period})")
        if jitter and rng is None:
            raise SimulationError("jitter requires an rng")
        self._engine = engine
        self._period = float(period)
        self._fn = fn
        self._jitter = float(jitter)
        self._rng = rng
        self._stopped = False
        self._event: Optional[Event] = None
        delay = self._period if first_delay is None else float(first_delay)
        self._arm(delay)

    def _arm(self, delay: float) -> None:
        if self._jitter:
            delay = max(0.0, delay + self._rng.uniform(-self._jitter, self._jitter))
        self._event = self._engine.schedule(delay, self._tick)

    def _tick(self) -> None:
        if self._stopped:
            return
        self._fn()
        if not self._stopped:
            self._arm(self._period)

    @property
    def period(self) -> float:
        """The firing period in seconds."""
        return self._period

    def stop(self) -> None:
        """Stop the task; pending firing is cancelled."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
