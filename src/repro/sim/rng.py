"""Named, independently seeded random streams.

Every stochastic decision in the library draws from a stream obtained via
:meth:`RngHub.stream`.  Streams are derived from the hub seed and the stream
name with NumPy's ``SeedSequence.spawn`` machinery, so

* two runs with the same hub seed are identical, and
* changing how often one subsystem draws (e.g. adding a partner probe)
  does not perturb the draws seen by any other subsystem.

The second property is what makes A/B ablations (DESIGN.md section 5)
meaningful: the arrival process of an ablated run is bit-identical to the
baseline's.

Seed-discipline sanitizer
-------------------------

The convention above is also what ``repro check`` (DET001) enforces
statically; the *sanitizer* is its runtime counterpart.  Opt in with the
``REPRO_RNG_SANITIZE`` environment variable (``1``/``strict`` raise on
violations, ``warn`` records them) or per hub with
``RngHub(seed, sanitize="strict")``.  When enabled, streams are wrapped
in a transparent proxy that

* counts draws per stream (:attr:`RngHub.draw_counts`),
* flags creation of a stream that was never :meth:`RngHub.declare`-d
  (only once at least one declaration exists -- an undeclared hub stays
  in pure accounting mode), and
* flags draws from a stream outside its declared owner scope
  (:meth:`RngHub.owned_by`).

Violations increment ``rng.sanitizer.violations`` (plus a per-kind
counter) on the ambient obs metrics registry and are kept on
:attr:`RngHub.violations`; in strict mode they additionally raise
:class:`RngDisciplineError`.  The proxy delegates to the *same*
underlying generator, so draws are bit-identical with the sanitizer on
or off.
"""

from __future__ import annotations

import os
import zlib
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

__all__ = ["RngHub", "RngDisciplineError", "sanitize_mode_from_env"]


class RngDisciplineError(RuntimeError):
    """A named-stream discipline violation under the strict sanitizer."""


#: attributes of a Generator that do not consume random state
_NON_DRAW_ATTRS = frozenset({"bit_generator", "spawn", "__getstate__",
                             "__setstate__", "__reduce__"})


def sanitize_mode_from_env() -> Union[bool, str]:
    """The sanitizer mode requested via ``REPRO_RNG_SANITIZE``.

    ``1``/``true``/``strict`` -> ``"strict"``; ``warn``/``record`` ->
    ``"warn"``; anything else (including unset) -> ``False``.
    """
    raw = os.environ.get("REPRO_RNG_SANITIZE", "").strip().lower()
    if raw in ("1", "true", "strict", "yes", "on"):
        return "strict"
    if raw in ("warn", "record"):
        return "warn"
    return False


def _obs_inc(name: str) -> None:
    """Bump an ambient obs counter (no-op when observability is off)."""
    try:
        import repro.obs as obs
        obs.inc(name)
    except Exception:  # pragma: no cover - obs must never break draws
        pass


class _SanitizedStream:
    """Transparent draw-counting, owner-checking Generator proxy.

    Method access is forwarded to the wrapped generator; calling any
    non-underscore method counts as one draw event and re-validates the
    owner scope.  The generator object itself is shared, so sequences
    are bit-identical to the unwrapped stream.
    """

    __slots__ = ("_hub", "_name", "_gen")

    def __init__(self, hub: "RngHub", name: str,
                 gen: np.random.Generator) -> None:
        self._hub = hub
        self._name = name
        self._gen = gen

    def __getattr__(self, attr: str):
        value = getattr(self._gen, attr)
        if (attr.startswith("_") or attr in _NON_DRAW_ATTRS
                or not callable(value)):
            return value
        hub, name = self._hub, self._name

        def drawing(*args, **kwargs):
            hub._record_draw(name)
            return value(*args, **kwargs)

        drawing.__name__ = attr
        return drawing

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"_SanitizedStream({self._name!r}, {self._gen!r})"


class RngHub:
    """Factory of named :class:`numpy.random.Generator` streams."""

    def __init__(self, seed: int = 0,
                 sanitize: Optional[Union[bool, str]] = None) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}
        if sanitize is None:
            sanitize = sanitize_mode_from_env()
        elif sanitize is True:
            sanitize = "strict"
        self._sanitize: Union[bool, str] = sanitize
        # declaration / accounting state (empty and unused when disabled)
        self._declared: Dict[str, Optional[str]] = {}
        self._draw_counts: Dict[str, int] = {}
        self._owner_stack: List[str] = []
        self._violations: List[Tuple[str, str]] = []

    @property
    def seed(self) -> int:
        """The root seed of this hub."""
        return self._seed

    @property
    def sanitize(self) -> Union[bool, str]:
        """Sanitizer mode: ``False``, ``"warn"`` or ``"strict"``."""
        return self._sanitize

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same name always maps to the same stream object (and hence a
        continuing sequence), so callers may re-request it freely.
        """
        gen = self._streams.get(name)
        if gen is None:
            # Derive a child seed from (hub seed, crc32(name)): stable across
            # processes and insertion orders, unlike spawn() call order.
            key = zlib.crc32(name.encode("utf-8"))
            ss = np.random.SeedSequence([self._seed, key])
            gen = np.random.Generator(np.random.PCG64(ss))
            self._streams[name] = gen
            if self._sanitize and self._declared and name not in self._declared:
                self._violation(
                    "undeclared_stream",
                    f"stream {name!r} created without declaration "
                    f"(declared: {sorted(self._declared)})")
        if self._sanitize:
            return self._wrapped(name, gen)  # type: ignore[return-value]
        return gen

    # --- seed-discipline sanitizer -----------------------------------
    def declare(self, name: str, owner: Optional[str] = None) -> None:
        """Declare a stream (optionally bound to an ``owner`` scope).

        Declarations are cheap and always recorded, so library code can
        declare unconditionally; they only have teeth when the sanitizer
        is enabled.  Once any stream is declared on a sanitizing hub,
        creating an *undeclared* stream is a violation, and draws from an
        owned stream outside ``with hub.owned_by(owner)`` are violations.
        """
        self._declared[name] = owner

    @contextmanager
    def owned_by(self, owner: str) -> Iterator[None]:
        """Scope marking ``owner`` as the active drawing subsystem."""
        self._owner_stack.append(str(owner))
        try:
            yield
        finally:
            self._owner_stack.pop()

    @property
    def draw_counts(self) -> Dict[str, int]:
        """Per-stream draw-event counts (sanitizer enabled only)."""
        return dict(self._draw_counts)

    @property
    def violations(self) -> List[Tuple[str, str]]:
        """Recorded ``(kind, message)`` violations, in occurrence order."""
        return list(self._violations)

    def _wrapped(self, name: str, gen: np.random.Generator) -> _SanitizedStream:
        return _SanitizedStream(self, name, gen)

    def _record_draw(self, name: str) -> None:
        self._draw_counts[name] = self._draw_counts.get(name, 0) + 1
        owner = self._declared.get(name)
        if owner is not None and self._owner_stack:
            current = self._owner_stack[-1]
            if current != owner:
                self._violation(
                    "out_of_owner_draw",
                    f"stream {name!r} (owner {owner!r}) drawn from "
                    f"within scope {current!r}")

    def _violation(self, kind: str, message: str) -> None:
        self._violations.append((kind, message))
        _obs_inc("rng.sanitizer.violations")
        _obs_inc(f"rng.sanitizer.{kind}")
        if self._sanitize == "strict":
            raise RngDisciplineError(f"[{kind}] {message}")

    def fork(self, salt: int) -> "RngHub":
        """A new hub whose streams are independent of this one.

        Used by parameter sweeps: replicate ``i`` runs on ``hub.fork(i)``.
        """
        return RngHub(seed=(self._seed * 1_000_003 + int(salt)) & 0x7FFFFFFF,
                      sanitize=self._sanitize)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngHub(seed={self._seed}, streams={sorted(self._streams)})"
