"""Named, independently seeded random streams.

Every stochastic decision in the library draws from a stream obtained via
:meth:`RngHub.stream`.  Streams are derived from the hub seed and the stream
name with NumPy's ``SeedSequence.spawn`` machinery, so

* two runs with the same hub seed are identical, and
* changing how often one subsystem draws (e.g. adding a partner probe)
  does not perturb the draws seen by any other subsystem.

The second property is what makes A/B ablations (DESIGN.md section 5)
meaningful: the arrival process of an ablated run is bit-identical to the
baseline's.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np

__all__ = ["RngHub"]


class RngHub:
    """Factory of named :class:`numpy.random.Generator` streams."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed of this hub."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same name always maps to the same stream object (and hence a
        continuing sequence), so callers may re-request it freely.
        """
        gen = self._streams.get(name)
        if gen is None:
            # Derive a child seed from (hub seed, crc32(name)): stable across
            # processes and insertion orders, unlike spawn() call order.
            key = zlib.crc32(name.encode("utf-8"))
            ss = np.random.SeedSequence([self._seed, key])
            gen = np.random.Generator(np.random.PCG64(ss))
            self._streams[name] = gen
        return gen

    def fork(self, salt: int) -> "RngHub":
        """A new hub whose streams are independent of this one.

        Used by parameter sweeps: replicate ``i`` runs on ``hub.fork(i)``.
        """
        return RngHub(seed=(self._seed * 1_000_003 + int(salt)) & 0x7FFFFFFF)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngHub(seed={self._seed}, streams={sorted(self._streams)})"
