"""Discrete-event simulation substrate.

This package provides the event-driven kernel on which the reference
Coolstreaming implementation (:mod:`repro.core`) runs:

* :class:`repro.sim.engine.Engine` -- a binary-heap event loop with
  deterministic tie-breaking, timers and periodic tasks.
* :class:`repro.sim.rng.RngHub` -- named, independently seeded random
  streams so that every experiment is reproducible from a single seed.
"""

from repro.sim.engine import Engine, Event, PeriodicTask, SimulationError
from repro.sim.rng import RngHub

__all__ = ["Engine", "Event", "PeriodicTask", "RngHub", "SimulationError"]
