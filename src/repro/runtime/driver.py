"""The Scenario -> Backend driver: one entry point for every experiment.

:func:`run_scenario` is the single way to execute a
:class:`~repro.workload.scenarios.Scenario` on either engine:

1. :func:`sample_workload` draws the workload realization *once* from a
   fresh :class:`~repro.sim.rng.RngHub` seeded with the run seed.  Hub
   streams are derived purely from ``(seed, stream name)`` -- see
   :mod:`repro.sim.rng` -- so the arrays are byte-identical to what
   either engine would have sampled from its own internal hub, and both
   engines consume the *same* arrival/duration/schedule realization.
2. :func:`build_backend` instantiates the requested adapter and applies
   that realization.
3. The backend runs to the horizon and the caller reads the standard
   :class:`~repro.telemetry.server.LogServer` (or engine metrics) off the
   returned :class:`RuntimeResult`.

Engine stochasticity *inside* the run (parent choice, connectivity
draws, silent leaves) still comes from each engine's own named streams,
so the two engines explore different protocol trajectories over the same
audience -- which is exactly what the parity harness
(:mod:`repro.runtime.parity`) compares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.fastsim import FastSimConfig
from repro.runtime.backends import (
    FluidBackend,
    StreamingBackend,
    resolve_backend,
)
from repro.sim.rng import RngHub
from repro.telemetry.server import LogServer

__all__ = [
    "WorkloadRealization",
    "RuntimeResult",
    "sample_workload",
    "build_backend",
    "run_scenario",
]

#: RngHub stream names the workload realization is drawn from.  These are
#: load-bearing: they match the names the engines themselves historically
#: used, which is what makes externally sampled arrays bit-identical to
#: the old per-engine wiring.
ARRIVALS_STREAM = "workload.arrivals"
DURATIONS_STREAM = "workload.durations"


@dataclass(frozen=True)
class WorkloadRealization:
    """One sampled audience: what both engines consume for a (scenario,
    seed) pair."""

    times: np.ndarray       # sorted arrival times (s)
    durations: np.ndarray   # intended watch durations (s), aligned
    endings: tuple          # ((time_s, leave_probability), ...)

    def __post_init__(self) -> None:
        if self.times.shape != self.durations.shape:
            raise ValueError("times and durations must align")

    @property
    def n_users(self) -> int:
        """Number of arriving users."""
        return int(self.times.size)


def sample_workload(scenario, seed: int = 0) -> WorkloadRealization:
    """Draw the scenario's workload realization for ``seed``.

    Sampling uses a standalone :class:`RngHub` with the canonical stream
    names, so the result is independent of which engine (if any) will
    consume it, and identical for both.
    """
    hub = RngHub(int(seed))
    # declare the canonical streams so the opt-in seed-discipline
    # sanitizer can police this hub: any other stream created on it, or a
    # draw outside the workload scope, is a discipline violation
    hub.declare(ARRIVALS_STREAM, owner="workload")
    hub.declare(DURATIONS_STREAM, owner="workload")
    with hub.owned_by("workload"):
        times = np.asarray(
            scenario.arrivals.sample(scenario.horizon_s,
                                     hub.stream(ARRIVALS_STREAM)),
            dtype=float,
        )
        durations = np.asarray(
            scenario.duration_model.sample(hub.stream(DURATIONS_STREAM),
                                           len(times)),
            dtype=float,
        )
    return WorkloadRealization(
        times=times,
        durations=durations,
        endings=tuple(scenario.schedule.endings),
    )


@dataclass
class RuntimeResult:
    """A finished (or partially run) scenario execution."""

    scenario: "object"
    engine: str
    seed: int
    backend: StreamingBackend
    workload: WorkloadRealization

    @property
    def log(self) -> LogServer:
        """The run's telemetry log (uniform across engines)."""
        return self.backend.log

    def metrics(self) -> Dict[str, float]:
        """Engine-level metric snapshot at the current simulated time."""
        return self.backend.snapshot_metrics()

    # -- engine-specific escape hatches --------------------------------
    @property
    def system(self):
        """The :class:`CoolstreamingSystem` (detailed engine only)."""
        return getattr(self.backend, "system", None)

    @property
    def population(self):
        """The :class:`UserPopulation` (detailed engine only)."""
        return getattr(self.backend, "population", None)

    @property
    def sim(self):
        """The :class:`FastSimulation` (fluid engine only)."""
        return getattr(self.backend, "sim", None)


def _default_capacity_hint(n_users: int) -> int:
    """Slot capacity covering every arrival plus retry headroom."""
    return 2 * int(n_users) + 64


def build_backend(
    scenario,
    seed: int = 0,
    engine: str = "detailed",
    *,
    workload: Optional[WorkloadRealization] = None,
    fast: Optional[FastSimConfig] = None,
    capacity_hint: Optional[int] = None,
) -> StreamingBackend:
    """Instantiate a backend with the scenario's workload applied.

    Nothing runs yet; callers that need mid-run snapshots (e.g. the
    Fig. 4 overlay series) call :meth:`StreamingBackend.run` with an
    increasing ``until``.
    """
    factory = resolve_backend(engine)  # ValueError on unknown engines
    if workload is None:
        workload = sample_workload(scenario, seed)
    if engine == FluidBackend.name:
        backend: StreamingBackend = FluidBackend(
            scenario,
            seed,
            fast=fast,
            capacity_hint=(capacity_hint if capacity_hint is not None
                           else _default_capacity_hint(workload.n_users)),
        )
    else:
        # every other engine shares the (scenario, seed) constructor shape
        backend = factory(scenario, seed)
    backend.apply_workload(workload.times, workload.durations)
    for time_s, prob in workload.endings:
        backend.add_program_ending(time_s, prob)
    return backend


def run_scenario(
    scenario,
    seed: int = 0,
    engine: str = "detailed",
    *,
    until: Optional[float] = None,
    fast: Optional[FastSimConfig] = None,
    capacity_hint: Optional[int] = None,
) -> RuntimeResult:
    """Run ``scenario`` on the chosen engine and return the result.

    ``until`` defaults to the scenario horizon; ``fast`` and
    ``capacity_hint`` tune the fluid engine and are ignored by the
    detailed one.
    """
    workload = sample_workload(scenario, seed)
    backend = build_backend(
        scenario, seed, engine,
        workload=workload, fast=fast, capacity_hint=capacity_hint,
    )
    backend.run(until if until is not None else scenario.horizon_s)
    # a finished run leaves its log durable: a spilled log's tail chunk
    # rotates to disk here, so the directory is LogReader-complete even
    # though the server stays open (mid-run snapshots may run further)
    backend.log.flush()
    return RuntimeResult(
        scenario=scenario,
        engine=engine,
        seed=int(seed),
        backend=backend,
        workload=workload,
    )
