"""Cross-engine parity: any two (or three) engines, side by side.

The paper validates its measurement pipeline by checking that its three
log types tell one consistent story; our reproduction has no ground
truth to compare against, but it has independently implemented engines
consuming the same workload realization.  This module runs one scenario
on each requested engine and compares the paper-level metrics side by
side:

* **peak concurrent users** -- the Fig. 5 headline, driven by the
  arrival/departure balance every engine must honour;
* **mean continuity index** -- the Fig. 8/9 quality metric, driven by
  capacity allocation and adaptation;
* **retry-session fraction** -- the Fig. 10b failure statistic, driven
  by the join pipeline under load.

All three are computed *from the logs* with the same
:mod:`repro.analysis` code for every engine, so the comparison exercises
the full telemetry pipeline, not engine internals.  This mirrors the
seeders-paper methodology (PAPERS.md): a detailed simulation certifies
the fluid approximation on small scenarios, which then carries the
large-scale sweeps -- and now also certifies the socket deployment
(``--engines detailed,net``), closing the loop between the simulators
and a run over real connections.

Tolerances are calibrated per engine *pair* (:data:`PAIR_TOLERANCES`):
detailed vs fast spans two independent models, so its bands are wide;
detailed vs net shares the protocol implementation and diverges only
through real-network timing and per-engine RNG consumption, so its
continuity band is tighter while the retry band stays loose (join
timing races differ).  Unlisted pairs fall back to the detailed-fast
bands, the most conservative set.

Default (detailed vs fast) tolerances are calibrated on the preset
scenarios at seeds 0-2 (see ``tests/test_runtime_parity.py``).  Observed
agreement: peak concurrent users within 2.5% relative, mean continuity
within 7% relative; the retry-session fraction only agrees in order of
magnitude (the fluid join pipeline smooths the tail that produces
retries, so it systematically under-counts them) and is therefore
compared with a wide absolute band -- it is a sanity check, not a
precision claim.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.continuity import mean_continuity
from repro.analysis.sessions import SessionTable
from repro.runtime.backends import BackendStartupError, available_engines
from repro.runtime.driver import RuntimeResult, run_scenario
from repro.telemetry.server import LogServer

__all__ = [
    "DEFAULT_TOLERANCES",
    "PAIR_TOLERANCES",
    "MetricComparison",
    "ParityReport",
    "paper_metrics",
    "run_parity",
    "run_parity_suite",
    "main",
]

#: default relative tolerances per metric (documented in README
#: "Choosing an engine"); calibrated for the detailed-fast pair against
#: the preset scenarios at seeds 0-2 with >=1.5x headroom over the worst
#: observed divergence.  Also the fallback for engine pairs without a
#: calibrated entry in :data:`PAIR_TOLERANCES`.
DEFAULT_TOLERANCES: Dict[str, float] = {
    "peak_concurrent_users": 0.15,
    "mean_continuity": 0.10,
    "retry_session_fraction": 0.60,
}

#: absolute slack per metric: a comparison passes if EITHER the relative
#: band or the absolute band holds.  The retry band is wide on purpose:
#: the fluid engine under-counts retries (see module docstring), so the
#: fraction is an order-of-magnitude check only.
ABSOLUTE_FLOOR: Dict[str, float] = {
    "peak_concurrent_users": 2.0,
    "mean_continuity": 0.02,
    "retry_session_fraction": 0.30,
}

#: calibrated tolerance bands keyed by *sorted* engine pair.  detailed-net
#: shares the protocol code, so continuity tracks closely (observed <2%
#: divergence on small_audience, seeds 0-2); peak keeps slack for join
#: timing shifted by real connection latency, and retries stay loose --
#: the pump-quantum timing races produce a different retry tail.
PAIR_TOLERANCES: Dict[Tuple[str, str], Dict[str, float]] = {
    ("detailed", "fast"): DEFAULT_TOLERANCES,
    ("detailed", "net"): {
        "peak_concurrent_users": 0.10,
        "mean_continuity": 0.05,
        "retry_session_fraction": 0.60,
    },
    ("fast", "net"): DEFAULT_TOLERANCES,
    # mean-field ODE vs the peer-level engines, calibrated on all four
    # presets at seeds 0-2: peak tracks within ~5% (common workload
    # forcing), continuity within ~3% of detailed and ~10% of fast (the
    # ODE's deterministic supply has no per-peer variance, so it sits at
    # the optimistic edge of the band), and retries are floor-only --
    # the mean-field limit drops the per-parent competition (Eq. 6)
    # that generates the detailed engine's retry tail.
    ("detailed", "ode"): {
        "peak_concurrent_users": 0.10,
        "mean_continuity": 0.08,
        "retry_session_fraction": 0.60,
    },
    ("fast", "ode"): {
        "peak_concurrent_users": 0.10,
        "mean_continuity": 0.15,
        "retry_session_fraction": 0.60,
    },
}


def _pair_key(a: str, b: str) -> Tuple[str, str]:
    return (a, b) if a <= b else (b, a)


def paper_metrics(log: LogServer, horizon_s: float) -> Dict[str, float]:
    """The three parity metrics, derived from a run's log.

    Continuity excludes the first 20% of the horizon as warm-up (reports
    from peers still filling their buffers would swamp the steady state
    either engine settles into).
    """
    table = SessionTable.from_log(log)
    _grid, counts = table.concurrent_users(
        step_s=max(1.0, horizon_s / 288), t1=horizon_s
    )
    hist = table.retry_histogram()
    users = sum(hist.values())
    retried = sum(n for r, n in hist.items() if r >= 1)
    return {
        "peak_concurrent_users": float(counts.max()) if counts.size else 0.0,
        "mean_continuity": mean_continuity(log, after=0.2 * horizon_s),
        "retry_session_fraction": (retried / users) if users else float("nan"),
    }


@dataclass(frozen=True)
class MetricComparison:
    """One metric compared across an engine pair.

    The ``detailed``/``fast`` fields are the first/second engine's value
    slots -- named for the historical default pair, labelled by
    ``engines`` in rendered output.
    """

    name: str
    detailed: float
    fast: float
    tolerance: float          # relative
    absolute_floor: float = 0.0
    engines: Tuple[str, str] = ("detailed", "fast")

    @property
    def rel_diff(self) -> float:
        """|detailed - fast| / max(|detailed|, |fast|) (0 when both 0)."""
        denom = max(abs(self.detailed), abs(self.fast))
        if denom == 0:
            return 0.0
        return abs(self.detailed - self.fast) / denom

    @property
    def ok(self) -> bool:
        """Within the relative tolerance or the absolute floor.

        NaN on either side fails: a metric one engine cannot produce is a
        parity violation, not a pass.
        """
        if self.detailed != self.detailed or self.fast != self.fast:
            return False
        if abs(self.detailed - self.fast) <= self.absolute_floor:
            return True
        return self.rel_diff <= self.tolerance


@dataclass
class ParityReport:
    """Side-by-side comparison of one engine pair for one (scenario, seed)."""

    scenario_name: str
    seed: int
    comparisons: List[MetricComparison] = field(default_factory=list)
    engines: Tuple[str, str] = ("detailed", "fast")
    results: Dict[str, RuntimeResult] = field(default_factory=dict)

    @property
    def detailed_result(self) -> Optional[RuntimeResult]:
        """The first engine's run (``None`` unless kept)."""
        return self.results.get(self.engines[0])

    @property
    def fast_result(self) -> Optional[RuntimeResult]:
        """The second engine's run (``None`` unless kept)."""
        return self.results.get(self.engines[1])

    @property
    def ok(self) -> bool:
        """Every metric within tolerance."""
        return all(c.ok for c in self.comparisons)

    def render(self) -> str:
        """Human-readable side-by-side table."""
        a, b = self.engines
        head = (f"parity: {self.scenario_name} (seed {self.seed})  "
                f"{a} vs {b}")
        rows = [head, "-" * len(head),
                f"{'metric':<26}{a:>12}{b:>12}"
                f"{'rel diff':>10}{'tol':>8}  verdict"]
        for c in self.comparisons:
            rows.append(
                f"{c.name:<26}{c.detailed:>12.4f}{c.fast:>12.4f}"
                f"{c.rel_diff:>10.3f}{c.tolerance:>8.2f}  "
                f"{'ok' if c.ok else 'FAIL'}"
            )
        rows.append(f"=> {'PARITY OK' if self.ok else 'PARITY FAILED'}")
        return "\n".join(rows)


def _resolve_tolerances(
    engines: Tuple[str, str],
    tolerances: Optional[Dict[str, float]],
) -> Dict[str, float]:
    """The tolerance band for an engine pair, with caller overrides."""
    tol = dict(PAIR_TOLERANCES.get(_pair_key(*engines), DEFAULT_TOLERANCES))
    if tolerances:
        unknown = set(tolerances) - set(DEFAULT_TOLERANCES)
        if unknown:
            raise ValueError(f"unknown parity metrics: {sorted(unknown)}")
        tol.update(tolerances)
    return tol


def _build_report(
    scenario_name: str,
    seed: int,
    engines: Tuple[str, str],
    metrics: Dict[str, Dict[str, float]],
    tol: Dict[str, float],
) -> ParityReport:
    report = ParityReport(scenario_name=scenario_name, seed=int(seed),
                          engines=engines)
    a, b = engines
    for name in DEFAULT_TOLERANCES:
        report.comparisons.append(MetricComparison(
            name=name,
            detailed=metrics[a][name],
            fast=metrics[b][name],
            tolerance=tol[name],
            absolute_floor=ABSOLUTE_FLOOR.get(name, 0.0),
            engines=engines,
        ))
    return report


def run_parity(
    scenario,
    seed: int = 0,
    *,
    engines: Sequence[str] = ("detailed", "fast"),
    tolerances: Optional[Dict[str, float]] = None,
    keep_results: bool = False,
) -> ParityReport:
    """Run ``scenario`` on an engine pair and compare paper-level metrics.

    ``engines`` names the pair (default ``("detailed", "fast")``);
    ``tolerances`` overrides entries of the pair's calibrated band;
    ``keep_results`` retains the two :class:`RuntimeResult` objects on
    the report for further analysis.
    """
    pair = tuple(engines)
    if len(pair) != 2:
        raise ValueError("run_parity compares exactly two engines; "
                         "use run_parity_suite for triples")
    tol = _resolve_tolerances(pair, tolerances)

    results = {e: run_scenario(scenario, seed=seed, engine=e) for e in pair}
    metrics = {e: paper_metrics(results[e].log, scenario.horizon_s)
               for e in pair}
    report = _build_report(scenario.name, seed, pair, metrics, tol)
    if keep_results:
        report.results = results
    return report


def run_parity_suite(
    scenario,
    seed: int = 0,
    *,
    engines: Sequence[str],
    tolerances: Optional[Dict[str, float]] = None,
) -> List[ParityReport]:
    """Pairwise parity across two or three engines, one run per engine.

    Each engine executes the scenario once; every unordered pair gets a
    :class:`ParityReport` with its calibrated tolerance band (a triple
    yields three reports).
    """
    names = list(dict.fromkeys(engines))  # dedupe, keep order
    if not 2 <= len(names) <= 3:
        raise ValueError("parity needs two or three distinct engines, "
                         f"got {names!r}")
    metrics: Dict[str, Dict[str, float]] = {}
    for e in names:
        result = run_scenario(scenario, seed=seed, engine=e)
        metrics[e] = paper_metrics(result.log, scenario.horizon_s)
    reports = []
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            tol = _resolve_tolerances((a, b), tolerances)
            reports.append(
                _build_report(scenario.name, seed, (a, b), metrics, tol))
    return reports


# ---------------------------------------------------------------------------
# CLI: python -m repro parity --scenario steady_audience --seed 0
# ---------------------------------------------------------------------------
def _preset_scenarios() -> Dict[str, Callable]:
    """Name -> zero-argument scenario factory, sized for a CLI check.

    The presets are scaled down from the figure defaults so a parity run
    (which pays for the detailed engine) finishes in tens of seconds.
    ``small_audience`` is sized for the net backend: <=64 users over a
    10-minute virtual horizon is ~30s of wall time at the default 20x
    time scale.
    """
    from repro.core.config import SystemConfig
    from repro.workload.scenarios import (
        evening_broadcast,
        flash_crowd_storm,
        steady_audience,
    )

    return {
        "steady_audience": lambda: steady_audience(
            rate_per_s=0.4, horizon_s=900.0, n_servers=3),
        "small_audience": lambda: dataclasses.replace(
            steady_audience(
                rate_per_s=0.08, horizon_s=600.0, n_servers=2,
                cfg=SystemConfig().with_overrides(
                    status_report_period_s=60.0)),
            name="small_audience"),
        "evening_broadcast": lambda: evening_broadcast(
            horizon_s=1200.0, peak_rate=0.8),
        "flash_crowd_storm": lambda: flash_crowd_storm(
            burst_users_per_s=1.2, horizon_s=600.0, n_servers=2),
    }


def main(argv=None) -> int:
    """``python -m repro parity`` entry point.

    Exit codes: 0 parity holds, 1 out of tolerance (or runtime/startup
    error), 2 usage error, 130 interrupted.
    """
    presets = _preset_scenarios()
    parser = argparse.ArgumentParser(
        prog="python -m repro parity",
        description="Run one scenario on two or three engines and compare "
                    "paper-level metrics within calibrated tolerances.",
    )
    parser.add_argument("--scenario", default="steady_audience",
                        choices=sorted(presets),
                        help="scenario preset (default steady_audience)")
    parser.add_argument("--seed", type=int, default=0,
                        help="root random seed (default 0)")
    parser.add_argument("--engines", default="detailed,fast", metavar="A,B[,C]",
                        help="comma-separated engines to compare "
                             f"(from: {', '.join(available_engines())}; "
                             "default detailed,fast)")
    parser.add_argument("--tol-peak", type=float, default=None, metavar="F",
                        help="relative tolerance for peak concurrent users")
    parser.add_argument("--tol-continuity", type=float, default=None,
                        metavar="F",
                        help="relative tolerance for mean continuity")
    parser.add_argument("--tol-retry", type=float, default=None, metavar="F",
                        help="relative tolerance for retry-session fraction")
    args = parser.parse_args(argv)

    engines = [e.strip() for e in args.engines.split(",") if e.strip()]
    engines = list(dict.fromkeys(engines))
    known = set(available_engines())
    unknown = [e for e in engines if e not in known]
    if unknown:
        parser.error(f"unknown engine(s) {', '.join(unknown)}; "
                     f"choose from: {', '.join(available_engines())}")
    if not 2 <= len(engines) <= 3:
        parser.error("--engines needs two or three distinct engine names")

    overrides: Dict[str, float] = {}
    if args.tol_peak is not None:
        overrides["peak_concurrent_users"] = args.tol_peak
    if args.tol_continuity is not None:
        overrides["mean_continuity"] = args.tol_continuity
    if args.tol_retry is not None:
        overrides["retry_session_fraction"] = args.tol_retry

    try:
        reports = run_parity_suite(
            presets[args.scenario](), seed=args.seed,
            engines=engines, tolerances=overrides or None)
    except KeyboardInterrupt:
        print("error: interrupted", file=sys.stderr)
        return 130
    except BackendStartupError as exc:
        print(f"error: backend startup: {exc}", file=sys.stderr)
        return 1
    except Exception as exc:
        print(f"error: parity: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    print("\n\n".join(r.render() for r in reports))
    return 0 if all(r.ok for r in reports) else 1


if __name__ == "__main__":
    sys.exit(main())
