"""Cross-engine parity: the fluid engine vs the reference engine.

The paper validates its measurement pipeline by checking that its three
log types tell one consistent story; our reproduction has no ground
truth to compare against, but it has two independently implemented
engines consuming the same workload realization.  This module runs one
scenario on both and compares the paper-level metrics side by side:

* **peak concurrent users** -- the Fig. 5 headline, driven by the
  arrival/departure balance both engines must honour;
* **mean continuity index** -- the Fig. 8/9 quality metric, driven by
  capacity allocation and adaptation;
* **retry-session fraction** -- the Fig. 10b failure statistic, driven
  by the join pipeline under load.

All three are computed *from the logs* with the same
:mod:`repro.analysis` code for both engines, so the comparison exercises
the full telemetry pipeline, not engine internals.  This mirrors the
seeders-paper methodology (PAPERS.md): a detailed simulation certifies
the fluid approximation on small scenarios, which then carries the
large-scale sweeps.

Default tolerances are calibrated on the preset scenarios at seeds 0-2
(see ``tests/test_runtime_parity.py``).  Observed agreement: peak
concurrent users within 2.5% relative, mean continuity within 7%
relative; the retry-session fraction only agrees in order of magnitude
(the fluid join pipeline smooths the tail that produces retries, so it
systematically under-counts them) and is therefore compared with a wide
absolute band -- it is a sanity check, not a precision claim.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.analysis.continuity import mean_continuity
from repro.analysis.sessions import SessionTable
from repro.runtime.driver import RuntimeResult, run_scenario
from repro.telemetry.server import LogServer

__all__ = [
    "DEFAULT_TOLERANCES",
    "MetricComparison",
    "ParityReport",
    "paper_metrics",
    "run_parity",
    "main",
]

#: default relative tolerances per metric (documented in README
#: "Choosing an engine"); calibrated against the preset scenarios at
#: seeds 0-2 with >=1.5x headroom over the worst observed divergence.
DEFAULT_TOLERANCES: Dict[str, float] = {
    "peak_concurrent_users": 0.15,
    "mean_continuity": 0.10,
    "retry_session_fraction": 0.60,
}

#: absolute slack per metric: a comparison passes if EITHER the relative
#: band or the absolute band holds.  The retry band is wide on purpose:
#: the fluid engine under-counts retries (see module docstring), so the
#: fraction is an order-of-magnitude check only.
ABSOLUTE_FLOOR: Dict[str, float] = {
    "peak_concurrent_users": 2.0,
    "mean_continuity": 0.02,
    "retry_session_fraction": 0.30,
}


def paper_metrics(log: LogServer, horizon_s: float) -> Dict[str, float]:
    """The three parity metrics, derived from a run's log.

    Continuity excludes the first 20% of the horizon as warm-up (reports
    from peers still filling their buffers would swamp the steady state
    either engine settles into).
    """
    table = SessionTable.from_log(log)
    _grid, counts = table.concurrent_users(
        step_s=max(1.0, horizon_s / 288), t1=horizon_s
    )
    hist = table.retry_histogram()
    users = sum(hist.values())
    retried = sum(n for r, n in hist.items() if r >= 1)
    return {
        "peak_concurrent_users": float(counts.max()) if counts.size else 0.0,
        "mean_continuity": mean_continuity(log, after=0.2 * horizon_s),
        "retry_session_fraction": (retried / users) if users else float("nan"),
    }


@dataclass(frozen=True)
class MetricComparison:
    """One metric compared across the two engines."""

    name: str
    detailed: float
    fast: float
    tolerance: float          # relative
    absolute_floor: float = 0.0

    @property
    def rel_diff(self) -> float:
        """|detailed - fast| / max(|detailed|, |fast|) (0 when both 0)."""
        denom = max(abs(self.detailed), abs(self.fast))
        if denom == 0:
            return 0.0
        return abs(self.detailed - self.fast) / denom

    @property
    def ok(self) -> bool:
        """Within the relative tolerance or the absolute floor.

        NaN on either side fails: a metric one engine cannot produce is a
        parity violation, not a pass.
        """
        if self.detailed != self.detailed or self.fast != self.fast:
            return False
        if abs(self.detailed - self.fast) <= self.absolute_floor:
            return True
        return self.rel_diff <= self.tolerance


@dataclass
class ParityReport:
    """Side-by-side engine comparison for one (scenario, seed)."""

    scenario_name: str
    seed: int
    comparisons: List[MetricComparison] = field(default_factory=list)
    detailed_result: Optional[RuntimeResult] = None
    fast_result: Optional[RuntimeResult] = None

    @property
    def ok(self) -> bool:
        """Every metric within tolerance."""
        return all(c.ok for c in self.comparisons)

    def render(self) -> str:
        """Human-readable side-by-side table."""
        head = (f"parity: {self.scenario_name} (seed {self.seed})  "
                f"detailed vs fast")
        rows = [head, "-" * len(head),
                f"{'metric':<26}{'detailed':>12}{'fast':>12}"
                f"{'rel diff':>10}{'tol':>8}  verdict"]
        for c in self.comparisons:
            rows.append(
                f"{c.name:<26}{c.detailed:>12.4f}{c.fast:>12.4f}"
                f"{c.rel_diff:>10.3f}{c.tolerance:>8.2f}  "
                f"{'ok' if c.ok else 'FAIL'}"
            )
        rows.append(f"=> {'PARITY OK' if self.ok else 'PARITY FAILED'}")
        return "\n".join(rows)


def run_parity(
    scenario,
    seed: int = 0,
    *,
    tolerances: Optional[Dict[str, float]] = None,
    keep_results: bool = False,
) -> ParityReport:
    """Run ``scenario`` on both engines and compare paper-level metrics.

    ``tolerances`` overrides entries of :data:`DEFAULT_TOLERANCES`;
    ``keep_results`` retains the two :class:`RuntimeResult` objects on
    the report for further analysis.
    """
    tol = dict(DEFAULT_TOLERANCES)
    if tolerances:
        unknown = set(tolerances) - set(tol)
        if unknown:
            raise ValueError(f"unknown parity metrics: {sorted(unknown)}")
        tol.update(tolerances)

    detailed = run_scenario(scenario, seed=seed, engine="detailed")
    fast = run_scenario(scenario, seed=seed, engine="fast")
    m_det = paper_metrics(detailed.log, scenario.horizon_s)
    m_fast = paper_metrics(fast.log, scenario.horizon_s)

    report = ParityReport(scenario_name=scenario.name, seed=int(seed))
    for name in DEFAULT_TOLERANCES:
        report.comparisons.append(MetricComparison(
            name=name,
            detailed=m_det[name],
            fast=m_fast[name],
            tolerance=tol[name],
            absolute_floor=ABSOLUTE_FLOOR.get(name, 0.0),
        ))
    if keep_results:
        report.detailed_result = detailed
        report.fast_result = fast
    return report


# ---------------------------------------------------------------------------
# CLI: python -m repro parity --scenario steady_audience --seed 0
# ---------------------------------------------------------------------------
def _preset_scenarios() -> Dict[str, Callable]:
    """Name -> zero-argument scenario factory, sized for a CLI check.

    The presets are scaled down from the figure defaults so a parity run
    (which pays for the detailed engine) finishes in tens of seconds.
    """
    from repro.workload.scenarios import (
        evening_broadcast,
        flash_crowd_storm,
        steady_audience,
    )

    return {
        "steady_audience": lambda: steady_audience(
            rate_per_s=0.4, horizon_s=900.0, n_servers=3),
        "evening_broadcast": lambda: evening_broadcast(
            horizon_s=1200.0, peak_rate=0.8),
        "flash_crowd_storm": lambda: flash_crowd_storm(
            burst_users_per_s=1.2, horizon_s=600.0, n_servers=2),
    }


def main(argv=None) -> int:
    """``python -m repro parity`` entry point.

    Exit codes: 0 parity holds, 1 out of tolerance (or runtime error),
    2 usage error.
    """
    presets = _preset_scenarios()
    parser = argparse.ArgumentParser(
        prog="python -m repro parity",
        description="Run one scenario on both engines and compare "
                    "paper-level metrics within tolerances.",
    )
    parser.add_argument("--scenario", default="steady_audience",
                        choices=sorted(presets),
                        help="scenario preset (default steady_audience)")
    parser.add_argument("--seed", type=int, default=0,
                        help="root random seed (default 0)")
    parser.add_argument("--tol-peak", type=float, default=None, metavar="F",
                        help="relative tolerance for peak concurrent users")
    parser.add_argument("--tol-continuity", type=float, default=None,
                        metavar="F",
                        help="relative tolerance for mean continuity")
    parser.add_argument("--tol-retry", type=float, default=None, metavar="F",
                        help="relative tolerance for retry-session fraction")
    args = parser.parse_args(argv)

    overrides: Dict[str, float] = {}
    if args.tol_peak is not None:
        overrides["peak_concurrent_users"] = args.tol_peak
    if args.tol_continuity is not None:
        overrides["mean_continuity"] = args.tol_continuity
    if args.tol_retry is not None:
        overrides["retry_session_fraction"] = args.tol_retry

    try:
        report = run_parity(presets[args.scenario](), seed=args.seed,
                            tolerances=overrides or None)
    except KeyboardInterrupt:
        print("error: interrupted", file=sys.stderr)
        return 130
    except Exception as exc:
        print(f"error: parity: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    print(report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
