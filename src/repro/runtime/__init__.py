"""repro.runtime -- the engine-agnostic Scenario -> Backend runtime.

One driving surface over both simulation engines:

* :class:`StreamingBackend` -- the engine contract (apply a workload,
  schedule program endings, run, expose the log and metric snapshots);
* :class:`DetailedBackend` / :class:`FluidBackend` -- adapters over the
  event-driven reference engine and the vectorized fluid engine;
* :func:`run_scenario` -- sample the workload once (identically named
  RNG streams, so both engines see the same realization) and run it on
  the chosen engine;
* :func:`run_parity` / ``python -m repro parity`` -- cross-engine
  consistency checks on paper-level metrics.

Every figure, ablation and campaign run routes through this package;
``Scenario.build``/``Scenario.run`` are thin shims over it.
"""

from repro.runtime.backends import (
    ENGINES,
    BackendStartupError,
    DetailedBackend,
    FluidBackend,
    StreamingBackend,
    available_engines,
    register_backend,
    resolve_backend,
)
from repro.runtime.driver import (
    RuntimeResult,
    WorkloadRealization,
    build_backend,
    run_scenario,
    sample_workload,
)
from repro.runtime.parity import (
    DEFAULT_TOLERANCES,
    PAIR_TOLERANCES,
    MetricComparison,
    ParityReport,
    paper_metrics,
    run_parity,
    run_parity_suite,
)

__all__ = [
    "ENGINES",
    "BackendStartupError",
    "register_backend",
    "available_engines",
    "resolve_backend",
    "StreamingBackend",
    "DetailedBackend",
    "FluidBackend",
    "WorkloadRealization",
    "RuntimeResult",
    "sample_workload",
    "build_backend",
    "run_scenario",
    "DEFAULT_TOLERANCES",
    "PAIR_TOLERANCES",
    "MetricComparison",
    "ParityReport",
    "paper_metrics",
    "run_parity",
    "run_parity_suite",
]
