"""repro.runtime -- the engine-agnostic Scenario -> Backend runtime.

One driving surface over both simulation engines:

* :class:`StreamingBackend` -- the engine contract (apply a workload,
  schedule program endings, run, expose the log and metric snapshots);
* :class:`DetailedBackend` / :class:`FluidBackend` -- adapters over the
  event-driven reference engine and the vectorized fluid engine;
* :func:`run_scenario` -- sample the workload once (identically named
  RNG streams, so both engines see the same realization) and run it on
  the chosen engine;
* :func:`run_parity` / ``python -m repro parity`` -- cross-engine
  consistency checks on paper-level metrics.

Every figure, ablation and campaign run routes through this package;
``Scenario.build``/``Scenario.run`` are thin shims over it.
"""

from repro.runtime.backends import (
    ENGINES,
    DetailedBackend,
    FluidBackend,
    StreamingBackend,
)
from repro.runtime.driver import (
    RuntimeResult,
    WorkloadRealization,
    build_backend,
    run_scenario,
    sample_workload,
)
from repro.runtime.parity import (
    DEFAULT_TOLERANCES,
    MetricComparison,
    ParityReport,
    paper_metrics,
    run_parity,
)

__all__ = [
    "ENGINES",
    "StreamingBackend",
    "DetailedBackend",
    "FluidBackend",
    "WorkloadRealization",
    "RuntimeResult",
    "sample_workload",
    "build_backend",
    "run_scenario",
    "DEFAULT_TOLERANCES",
    "MetricComparison",
    "ParityReport",
    "paper_metrics",
    "run_parity",
]
