"""Engine adapters: one driving surface over both simulation engines.

The repo grew two ways to run an experiment -- the event-driven reference
engine (:class:`~repro.core.system.CoolstreamingSystem` driven by a
:class:`~repro.workload.users.UserPopulation`) and the vectorized fluid
engine (:class:`~repro.fastsim.engine.FastSimulation`).  Both consume the
same *workload realization* (arrival times, intended durations, program
endings) and both report into a standard
:class:`~repro.telemetry.server.LogServer`, so everything above the
engine -- analysis, figures, campaigns -- can be engine-agnostic.

:class:`StreamingBackend` is that contract.  The two adapters here keep
every engine-specific decision (population wiring, capacity hints, slot
arrays) behind it:

* :class:`DetailedBackend` -- per-peer protocol fidelity: real control
  messages, mCache gossip, per-block buffers.  Cost grows with events,
  i.e. roughly peers x partners x time.
* :class:`FluidBackend` -- the fluid approximation: array state, one
  vectorized step per ``dt``.  Cost grows with peers x steps, so it
  reaches populations the detailed engine cannot.

Workload arrays are applied, not sampled: the driver
(:func:`repro.runtime.driver.sample_workload`) draws them once from
hub-seed-derived named streams, so both backends consume byte-identical
realizations for the same (scenario, seed).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, Tuple, runtime_checkable

import numpy as np

from repro.analysis.sessions import SessionTable
from repro.core.node import NodeState
from repro.core.system import CoolstreamingSystem
from repro.fastsim import FastSimConfig, FastSimulation
from repro.telemetry.server import LogServer
from repro.workload.sessions import ProgramSchedule
from repro.workload.users import UserPopulation

__all__ = [
    "StreamingBackend",
    "DetailedBackend",
    "FluidBackend",
    "ENGINES",
    "BackendStartupError",
    "register_backend",
    "available_engines",
    "resolve_backend",
]


class BackendStartupError(RuntimeError):
    """A backend could not bring its runtime up (listen port already in
    use, coordinator unreachable, ...).  Distinct from a *failed run* so
    CLIs can report it uniformly: startup failures exit 1 with a clean
    one-line message instead of a traceback."""


@runtime_checkable
class StreamingBackend(Protocol):
    """What the runtime driver needs from a simulation engine.

    The lifecycle is: construct -> :meth:`apply_workload` (once) ->
    :meth:`add_program_ending` (any number of times) -> :meth:`run`
    (repeatedly, monotone ``until``) -> read :attr:`log` /
    :meth:`snapshot_metrics`.
    """

    #: short engine name ("detailed" or "fast"); part of campaign run keys
    name: str

    def apply_workload(self, times: np.ndarray, durations: np.ndarray) -> None:
        """Register the audience: one (arrival time, intended duration)
        pair per user, user ids assigned by position."""
        ...

    def add_program_ending(self, time_s: float, leave_probability: float) -> None:
        """Schedule a program-end departure wave."""
        ...

    def run(self, until: float) -> None:
        """Advance simulated time to ``until``."""
        ...

    @property
    def log(self) -> LogServer:
        """The telemetry log both engines report into."""
        ...

    def snapshot_metrics(self) -> Dict[str, float]:
        """Engine-level health metrics at the current simulated time."""
        ...


class DetailedBackend:
    """The event-driven reference engine behind the backend contract.

    Construction wires nothing: the population is materialized lazily so
    program endings registered after :meth:`apply_workload` still land in
    the :class:`~repro.workload.sessions.ProgramSchedule` the population
    is attached with -- exactly how ``Scenario.build`` always wired it,
    keeping event scheduling order (hence runs) bit-identical.
    """

    name = "detailed"

    def __init__(self, scenario, seed: int = 0) -> None:
        self.scenario = scenario
        self.seed = int(seed)
        self.system = CoolstreamingSystem(
            scenario.cfg,
            seed=seed,
            capacity_model=scenario.capacity_model,
            connectivity_mix=scenario.connectivity_mix,
        )
        self.population: Optional[UserPopulation] = None
        self._times: Optional[np.ndarray] = None
        self._durations: Optional[np.ndarray] = None
        self._endings: List[Tuple[float, float]] = []

    # -- workload ------------------------------------------------------
    def apply_workload(self, times: np.ndarray, durations: np.ndarray) -> None:
        """Stage the audience (materialized on the first :meth:`run`)."""
        if self._times is not None:
            raise RuntimeError("workload already applied")
        times = np.asarray(times, dtype=float)
        durations = np.asarray(durations, dtype=float)
        if times.shape != durations.shape:
            raise ValueError("times and durations must align")
        self._times = times
        self._durations = durations

    def add_program_ending(self, time_s: float, leave_probability: float) -> None:
        """Stage a program-end wave (must precede the first :meth:`run`)."""
        if self.population is not None:
            raise RuntimeError("cannot add program endings after run()")
        self._endings.append((float(time_s), float(leave_probability)))

    def materialize(self) -> None:
        if self.population is not None:
            return
        if self._times is None:
            raise RuntimeError("apply_workload() must be called before run()")
        schedule = ProgramSchedule(endings=tuple(sorted(self._endings)))
        self.population = UserPopulation(
            self.system,
            arrival_times=self._times,
            durations=self._durations,
            duration_model=self.scenario.duration_model,
            schedule=schedule,
            silent_leave_prob=self.scenario.silent_leave_prob,
        )
        self.population.attach()

    # -- execution -----------------------------------------------------
    def run(self, until: float) -> None:
        """Attach the staged audience, then run the event loop."""
        self.materialize()
        self.system.run(until=until)

    # -- views ---------------------------------------------------------
    @property
    def log(self) -> LogServer:
        """The system's telemetry log."""
        return self.system.log

    def snapshot_metrics(self) -> Dict[str, float]:
        """Simulator-side ground truth (not derived from the log)."""
        system = self.system
        peers = system.peers(alive_only=True)
        playing = sum(1 for p in peers if p.state is NodeState.PLAYING)
        out: Dict[str, float] = {
            "concurrent_users": float(system.concurrent_users),
            "playing_users": float(playing),
            "sessions_spawned": float(system.sessions_spawned),
            "mean_continuity": float(system.summary().get(
                "mean_continuity", float("nan"))),
        }
        if self.population is not None:
            out["success_fraction"] = self.population.success_fraction()
            out["adaptations"] = float(sum(
                p.adaptation_count
                for p in system.peers(alive_only=False)
            ))
        return out


class FluidBackend:
    """The vectorized fluid engine behind the backend contract."""

    name = "fast"

    def __init__(
        self,
        scenario,
        seed: int = 0,
        *,
        fast: Optional[FastSimConfig] = None,
        capacity_hint: Optional[int] = None,
    ) -> None:
        self.scenario = scenario
        self.seed = int(seed)
        self.sim = FastSimulation(
            scenario.cfg,
            fast,
            seed=seed,
            capacity_model=scenario.capacity_model,
            connectivity_mix=scenario.connectivity_mix,
            capacity_hint=capacity_hint if capacity_hint is not None else 4096,
        )

    # -- workload ------------------------------------------------------
    def apply_workload(self, times: np.ndarray, durations: np.ndarray) -> None:
        """Register the audience as pending joins."""
        self.sim.add_arrivals(times, durations)

    def add_program_ending(self, time_s: float, leave_probability: float) -> None:
        """Schedule a program-end departure wave."""
        self.sim.add_program_ending(time_s, leave_probability)

    # -- execution -----------------------------------------------------
    def run(self, until: float) -> None:
        """Step the fluid model to ``until``."""
        self.sim.run(until=until)

    # -- views ---------------------------------------------------------
    @property
    def log(self) -> LogServer:
        """The simulation's telemetry log."""
        return self.sim.log

    def snapshot_metrics(self) -> Dict[str, float]:
        """Simulator-side ground truth (not derived from the log)."""
        sim = self.sim
        out: Dict[str, float] = {
            "concurrent_users": float(sim.concurrent_users),
            "playing_users": float(sim.playing_users),
            "sessions_spawned": float(sim.sessions_spawned),
            "mean_continuity": sim.mean_continuity(),
            # the fluid model has no per-peer adaptation ground truth; the
            # log-derived parity metrics are the cross-engine comparables
            "adaptations": float("nan"),
        }
        out["success_fraction"] = self._success_fraction_from_log()
        return out

    def _success_fraction_from_log(self) -> float:
        """Fraction of arrived users with any session reaching playback
        (log-derived; the fluid engine keeps no per-user ground truth)."""
        table = SessionTable.from_log(self.sim.log)
        by_user = table.sessions_per_user()
        if not by_user:
            return float("nan")
        ok = sum(
            1 for sessions in by_user.values()
            if any(s.started_playback for s in sessions)
        )
        return ok / len(by_user)


#: legacy engine name -> backend class mapping for the two simulators.
#: Kept stable for existing imports; the *registry* below is the source
#: of truth (it also knows engines with heavier import footprints, like
#: the socket backend, which register lazily).
ENGINES = {
    DetailedBackend.name: DetailedBackend,
    FluidBackend.name: FluidBackend,
}


# ---------------------------------------------------------------------------
# backend registry
# ---------------------------------------------------------------------------
#: engine name -> backend factory, or a lazy ``"module:attr"`` spec that
#: is resolved (and cached) on first use so registering an engine does
#: not import its implementation
_REGISTRY: Dict[str, object] = {}


def register_backend(name: str, factory) -> None:
    """Register an engine under ``name``.

    ``factory`` is the backend class (or any callable with the
    ``(scenario, seed)`` constructor shape), or a ``"module:attr"``
    string resolved lazily on first :func:`resolve_backend`.  The CLI's
    ``--engine`` choices, campaign spec validation and the parity
    harness all derive from this registry, so a new engine plugs in
    without editing call sites.
    """
    if not name or not isinstance(name, str):
        raise ValueError("engine name must be a non-empty string")
    _REGISTRY[name] = factory


def available_engines() -> Tuple[str, ...]:
    """Registered engine names, sorted (the canonical --engine choices)."""
    return tuple(sorted(_REGISTRY))


def resolve_backend(name: str):
    """The backend factory for ``name`` (imports lazy specs on demand).

    Raises ``ValueError`` for unknown names -- callers surface that as a
    usage error (exit 2)."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; choose from {sorted(_REGISTRY)}"
        ) from None
    if isinstance(factory, str):
        module_name, _, attr = factory.partition(":")
        import importlib

        factory = getattr(importlib.import_module(module_name), attr)
        _REGISTRY[name] = factory
    return factory


register_backend(DetailedBackend.name, DetailedBackend)
register_backend(FluidBackend.name, FluidBackend)
# the socket backend registers lazily: its asyncio stack (and everything
# under repro.net) only loads when an actual net run is requested
register_backend("net", "repro.net.backend:NetBackend")
# mean-field ODE backend: population dynamics, O(1) step cost in N
register_backend("ode", "repro.model.meanfield:MeanFieldBackend")
