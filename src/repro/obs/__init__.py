"""repro.obs -- instrumentation, metrics and tracing for the simulators.

This package observes the *simulator itself* -- event-loop throughput,
fastsim step cost, protocol hot-spot rates, memory -- and is deliberately
distinct from :mod:`repro.telemetry`, which models the measured system's
own log pipeline (Section V.A) and must keep reading only parsed log
strings.  ``repro.telemetry`` is part of the reproduced artefact;
``repro.obs`` is the lens we point at our own machinery.

Typical use::

    import repro.obs as obs

    with obs.session(metrics_path="m.jsonl", trace_path="t.json",
                     progress=True, scenario="flash_crowd", seed=7):
        system = CoolstreamingSystem(cfg, seed=7)   # auto-instruments
        ...run...

    # m.jsonl          JSONL time series of every counter/gauge/histogram
    # t.json           Chrome trace_event JSON (open in Perfetto)
    # m.manifest.json  seed, config hash, git rev, wall time, peak RSS

Everything is off by default: with no active session the engines run their
original un-instrumented loops and the helpers below are no-ops.
"""

from __future__ import annotations

from repro.obs.context import (
    ObsContext,
    ObsError,
    activate,
    current,
    deactivate,
    session,
)
from repro.obs.exporters import JsonlMetricsWriter, write_prometheus
from repro.obs.manifest import (
    RunManifest,
    canonical_payload,
    config_fingerprint,
    git_revision,
    manifest_path_for,
    peak_rss_bytes,
    stable_hash,
)
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS_S,
    NULL_REGISTRY,
    BatchedCounter,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Timer,
    render_prometheus,
)
from repro.obs.progress import ProgressReporter
from repro.obs.trace import TraceCollector

__all__ = [
    "ObsContext", "ObsError", "activate", "current", "deactivate", "session",
    "JsonlMetricsWriter", "write_prometheus",
    "RunManifest", "canonical_payload", "config_fingerprint", "git_revision",
    "manifest_path_for", "peak_rss_bytes", "stable_hash",
    "BatchedCounter", "Counter", "Gauge", "Histogram", "Timer", "MetricsRegistry",
    "NullRegistry", "NULL_REGISTRY", "DEFAULT_TIME_BUCKETS_S",
    "render_prometheus", "ProgressReporter", "TraceCollector",
    "inc", "observe", "set_gauge", "enabled",
]


# ---------------------------------------------------------------------------
# module-level helpers for protocol-layer call sites
#
# Core protocol code (node.py, stream.py ...) counts hot-spot events through
# these: one ``is None`` check when observability is off, a dict lookup and
# an integer add when on.  They always target the ambient session so call
# sites need no plumbing.
# ---------------------------------------------------------------------------

def enabled() -> bool:
    """Whether an observability session is active."""
    return current() is not None


def inc(name: str, n: int = 1) -> None:
    """Increment a counter in the ambient registry (no-op when off)."""
    ctx = current()
    if ctx is not None:
        ctx.registry.counter(name).inc(n)


def observe(name: str, value: float) -> None:
    """Record a histogram observation in the ambient registry."""
    ctx = current()
    if ctx is not None:
        ctx.registry.histogram(name).observe(value)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge in the ambient registry (no-op when off)."""
    ctx = current()
    if ctx is not None:
        ctx.registry.gauge(name).set(value)
