"""Periodic heartbeat for long runs.

A :class:`ProgressReporter` is poked from the engines' hot loops via
:meth:`maybe_beat`; it rate-limits itself on wall time, so calling it every
couple thousand events is safe.  Each beat prints one line like::

    [obs] sim=1200.0s wall=31.9s ratio=37.6x events/s=61432 peers=8412

and invokes an optional ``on_beat`` callback, which the obs session uses to
append a metrics snapshot to the JSONL stream -- long runs therefore get a
time series for free, not just a final dump.
"""

from __future__ import annotations

import sys
from time import perf_counter
from typing import Callable, Optional

__all__ = ["ProgressReporter"]


class ProgressReporter:
    """Wall-clock-throttled progress line emitter."""

    def __init__(
        self,
        *,
        interval_s: float = 5.0,
        stream=None,
        print_lines: bool = True,
        on_beat: Optional[Callable[[float], None]] = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self._interval = float(interval_s)
        self._stream = stream if stream is not None else sys.stderr
        self._print = bool(print_lines)
        self._on_beat = on_beat
        self._t_start = perf_counter()
        self._t_last = self._t_start
        self._work_last = 0
        self._sim_start: Optional[float] = None
        self.beats = 0
        # engines (or systems) may install a live-peer-count provider
        self.live_peers_fn: Optional[Callable[[], int]] = None

    # ------------------------------------------------------------------
    def maybe_beat(self, sim_time: float, work_done: int,
                   work_unit: str = "events") -> None:
        """Emit a heartbeat if at least ``interval_s`` wall seconds passed.

        ``work_done`` is a monotonically increasing total (events executed,
        fastsim steps...); the beat reports its rate since the last beat.
        """
        now = perf_counter()
        if self._sim_start is None:
            self._sim_start = sim_time
        if now - self._t_last < self._interval:
            return
        self.beat(sim_time, work_done, work_unit, wall_now=now)

    def beat(self, sim_time: float, work_done: int,
             work_unit: str = "events", *, wall_now: Optional[float] = None) -> None:
        """Emit a heartbeat unconditionally."""
        now = perf_counter() if wall_now is None else wall_now
        if self._sim_start is None:
            self._sim_start = sim_time
        dt_wall = max(1e-9, now - self._t_last)
        rate = (work_done - self._work_last) / dt_wall
        elapsed = max(1e-9, now - self._t_start)
        ratio = (sim_time - self._sim_start) / elapsed
        self._t_last = now
        self._work_last = work_done
        self.beats += 1
        if self._print:
            peers = ""
            if self.live_peers_fn is not None:
                try:
                    peers = f" peers={self.live_peers_fn()}"
                except Exception:  # pragma: no cover - provider died mid-run
                    peers = ""
            self._stream.write(
                f"[obs] sim={sim_time:.1f}s wall={elapsed:.1f}s "
                f"ratio={ratio:.1f}x {work_unit}/s={rate:.0f}{peers}\n"
            )
            self._stream.flush()
        if self._on_beat is not None:
            self._on_beat(sim_time)
