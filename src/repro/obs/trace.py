"""Chrome ``trace_event`` collection: open a run in Perfetto.

The collector buffers *complete* duration events (``ph: "X"``), instant
events and counter samples, then serialises the standard
``{"traceEvents": [...]}`` JSON object understood by ``chrome://tracing``
and https://ui.perfetto.dev.  Timestamps are wall-clock microseconds from
the collector's creation; ``args.sim_time`` carries the simulated clock so
both time bases are visible in the UI.

A hard cap bounds memory: once ``max_events`` events are buffered further
events are dropped (counted in :attr:`dropped`), mirroring how real
tracing backends shed load rather than OOM the process under an event
storm.
"""

from __future__ import annotations

import json
from time import perf_counter
from typing import Dict, List, Optional

__all__ = ["TraceCollector"]


class TraceCollector:
    """Bounded in-memory buffer of Chrome trace events."""

    def __init__(self, *, max_events: int = 500_000,
                 process_name: str = "repro") -> None:
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        self._epoch = perf_counter()
        self._events: List[Dict[str, object]] = []
        self._max = int(max_events)
        self.dropped = 0
        self._metadata = [{
            "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
            "args": {"name": process_name},
        }]

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    @property
    def full(self) -> bool:
        """Whether the buffer reached its cap."""
        return len(self._events) >= self._max

    def now_us(self) -> float:
        """Microseconds of wall time since the collector was created."""
        return (perf_counter() - self._epoch) * 1e6

    def rel_us(self, perf_counter_s: float) -> float:
        """Convert a raw ``perf_counter()`` stamp to trace microseconds."""
        return (perf_counter_s - self._epoch) * 1e6

    # ------------------------------------------------------------------
    def complete(self, name: str, start_us: float, dur_us: float, *,
                 cat: str = "sim", tid: int = 0,
                 sim_time: Optional[float] = None) -> None:
        """Record a complete (begin+end) duration event."""
        if len(self._events) >= self._max:
            self.dropped += 1
            return
        ev: Dict[str, object] = {
            "name": name, "ph": "X", "cat": cat, "pid": 0, "tid": tid,
            "ts": start_us, "dur": max(0.0, dur_us),
        }
        if sim_time is not None:
            ev["args"] = {"sim_time": sim_time}
        self._events.append(ev)

    def instant(self, name: str, *, cat: str = "sim", tid: int = 0,
                sim_time: Optional[float] = None) -> None:
        """Record an instant event at the current wall time."""
        if len(self._events) >= self._max:
            self.dropped += 1
            return
        ev: Dict[str, object] = {
            "name": name, "ph": "i", "s": "g", "cat": cat, "pid": 0,
            "tid": tid, "ts": self.now_us(),
        }
        if sim_time is not None:
            ev["args"] = {"sim_time": sim_time}
        self._events.append(ev)

    def counter(self, name: str, values: Dict[str, float], *,
                cat: str = "sim") -> None:
        """Record a counter sample (renders as a track of stacked areas)."""
        if len(self._events) >= self._max:
            self.dropped += 1
            return
        self._events.append({
            "name": name, "ph": "C", "cat": cat, "pid": 0,
            "ts": self.now_us(), "args": dict(values),
        })

    # ------------------------------------------------------------------
    def to_json_obj(self) -> Dict[str, object]:
        """The ``{"traceEvents": [...]}`` object Perfetto loads."""
        return {
            "traceEvents": self._metadata + self._events,
            "displayTimeUnit": "ms",
            "otherData": {"dropped_events": self.dropped},
        }

    def write(self, path) -> None:
        """Serialise the buffered trace to ``path`` as JSON."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_json_obj(), fh)
