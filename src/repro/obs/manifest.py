"""Run manifests: the reproducibility sidecar of every observed run.

A manifest records everything needed to audit or re-run an experiment:
seed, a stable hash of every :class:`~repro.core.config.SystemConfig`
involved, the scenario/experiment name, the git revision of the code, the
wall time spent and the peak RSS of the process.  It is written alongside
the metrics stream (``m.jsonl`` -> ``m.manifest.json``) so a directory of
results is self-describing.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Dict, Optional

__all__ = [
    "canonical_payload",
    "stable_hash",
    "config_fingerprint",
    "git_revision",
    "peak_rss_bytes",
    "manifest_path_for",
    "RunManifest",
]


def _normalise(obj: Any) -> Any:
    """Reduce ``obj`` to a canonical JSON-serialisable form.

    Dataclasses become field dicts, mappings get string keys, sequences
    become lists, and floats are normalised so that ``-0.0`` and non-finite
    values serialise identically everywhere.  Anything else falls back to
    ``repr`` (the same fallback the original config fingerprint used).
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return _normalise(dataclasses.asdict(obj))
    if isinstance(obj, dict):
        return {str(k): _normalise(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_normalise(v) for v in obj]
    if isinstance(obj, bool) or obj is None:
        return obj
    if isinstance(obj, int):
        return int(obj)
    if isinstance(obj, float):
        if math.isnan(obj):
            return "float:nan"
        if math.isinf(obj):
            return "float:inf" if obj > 0 else "float:-inf"
        if obj == 0.0:  # repro: noqa[FLT001] exact comparison collapses -0.0 on purpose (collapse -0.0)
            return 0.0
        return float(obj)
    if isinstance(obj, str):
        return obj
    # numpy scalars (and anything else exposing .item()) -> python scalars
    item = getattr(obj, "item", None)
    if callable(item):
        try:
            return _normalise(obj.item())
        except (TypeError, ValueError):
            pass
    return repr(obj)


def canonical_payload(obj: Any) -> str:
    """Canonical JSON text of ``obj``: sorted keys, compact separators,
    normalised floats.  Two structurally equal objects always produce the
    same text regardless of dict insertion order, process, or platform —
    this is the byte string every content hash is taken over."""
    return json.dumps(_normalise(obj), sort_keys=True,
                      separators=(",", ":"), allow_nan=False)


def stable_hash(obj: Any, *, length: Optional[int] = None) -> str:
    """SHA-256 hex digest of :func:`canonical_payload`, optionally
    truncated to ``length`` characters."""
    digest = hashlib.sha256(canonical_payload(obj).encode("utf-8")).hexdigest()
    return digest if length is None else digest[:length]


def config_fingerprint(cfg: Any) -> str:
    """Stable short hash of a config object.

    Dataclasses are hashed over their canonicalised field dict; other
    objects over ``repr``.  Two configs with equal fields always hash
    equal, across processes, dict insertion orders and python versions.
    """
    return stable_hash(cfg, length=16)


def git_revision(cwd: Optional[Path] = None) -> Optional[str]:
    """Current git commit hash, or None outside a repo / without git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd else None,
            capture_output=True, text=True, timeout=5.0,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def peak_rss_bytes() -> Optional[int]:
    """Peak resident set size of this process in bytes (None if unknown)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS
    return int(rss) * (1 if sys.platform == "darwin" else 1024)


def manifest_path_for(output_path) -> Path:
    """Sidecar manifest path for a metrics/trace output file
    (``m.jsonl`` -> ``m.manifest.json``)."""
    p = Path(output_path)
    return p.with_suffix(".manifest.json") if p.suffix else p.with_name(
        p.name + ".manifest.json"
    )


class RunManifest:
    """Mutable collector for one run's provenance record."""

    def __init__(self, *, scenario: Optional[str] = None,
                 seed: Optional[int] = None) -> None:
        self._t0 = time.time()
        self._p0 = time.perf_counter()
        self.scenario = scenario
        self.seed = seed
        self.config_hashes: list[str] = []
        self.extra: Dict[str, Any] = {}

    # --- collection -------------------------------------------------------
    def note_config(self, cfg: Any) -> str:
        """Record (deduplicated) the fingerprint of a config object."""
        fp = config_fingerprint(cfg)
        if fp not in self.config_hashes:
            self.config_hashes.append(fp)
        return fp

    def note_seed(self, seed: int) -> None:
        """Record the run's root seed (first writer wins)."""
        if self.seed is None:
            self.seed = int(seed)

    def note(self, key: str, value: Any) -> None:
        """Attach an arbitrary JSON-serialisable fact."""
        self.extra[key] = value

    # --- output -----------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        """Finalized manifest content (wall time / RSS sampled now)."""
        out: Dict[str, Any] = {
            "scenario": self.scenario,
            "seed": self.seed,
            "config_hash": self.config_hashes[0] if self.config_hashes else None,
            "config_hashes": list(self.config_hashes),
            "git_rev": git_revision(),
            "started_at_unix": self._t0,
            "wall_time_s": time.perf_counter() - self._p0,
            "peak_rss_bytes": peak_rss_bytes(),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "argv": list(sys.argv),
        }
        out.update(self.extra)
        return out

    def write(self, path) -> Path:
        """Serialise the manifest to ``path``; returns the path."""
        p = Path(path)
        with open(p, "w", encoding="utf-8") as fh:
            json.dump(self.as_dict(), fh, indent=2, default=str)
            fh.write("\n")
        return p
