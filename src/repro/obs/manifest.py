"""Run manifests: the reproducibility sidecar of every observed run.

A manifest records everything needed to audit or re-run an experiment:
seed, a stable hash of every :class:`~repro.core.config.SystemConfig`
involved, the scenario/experiment name, the git revision of the code, the
wall time spent and the peak RSS of the process.  It is written alongside
the metrics stream (``m.jsonl`` -> ``m.manifest.json``) so a directory of
results is self-describing.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Dict, Optional

__all__ = [
    "config_fingerprint",
    "git_revision",
    "peak_rss_bytes",
    "manifest_path_for",
    "RunManifest",
]


def config_fingerprint(cfg: Any) -> str:
    """Stable short hash of a config object.

    Dataclasses are hashed over their sorted field dict; other objects over
    ``repr``.  Two configs with equal fields always hash equal, across
    processes and python versions.
    """
    if dataclasses.is_dataclass(cfg) and not isinstance(cfg, type):
        payload = json.dumps(
            dataclasses.asdict(cfg), sort_keys=True, default=str
        )
    else:
        payload = repr(cfg)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def git_revision(cwd: Optional[Path] = None) -> Optional[str]:
    """Current git commit hash, or None outside a repo / without git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd else None,
            capture_output=True, text=True, timeout=5.0,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def peak_rss_bytes() -> Optional[int]:
    """Peak resident set size of this process in bytes (None if unknown)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS
    return int(rss) * (1 if sys.platform == "darwin" else 1024)


def manifest_path_for(output_path) -> Path:
    """Sidecar manifest path for a metrics/trace output file
    (``m.jsonl`` -> ``m.manifest.json``)."""
    p = Path(output_path)
    return p.with_suffix(".manifest.json") if p.suffix else p.with_name(
        p.name + ".manifest.json"
    )


class RunManifest:
    """Mutable collector for one run's provenance record."""

    def __init__(self, *, scenario: Optional[str] = None,
                 seed: Optional[int] = None) -> None:
        self._t0 = time.time()
        self._p0 = time.perf_counter()
        self.scenario = scenario
        self.seed = seed
        self.config_hashes: list[str] = []
        self.extra: Dict[str, Any] = {}

    # --- collection -------------------------------------------------------
    def note_config(self, cfg: Any) -> str:
        """Record (deduplicated) the fingerprint of a config object."""
        fp = config_fingerprint(cfg)
        if fp not in self.config_hashes:
            self.config_hashes.append(fp)
        return fp

    def note_seed(self, seed: int) -> None:
        """Record the run's root seed (first writer wins)."""
        if self.seed is None:
            self.seed = int(seed)

    def note(self, key: str, value: Any) -> None:
        """Attach an arbitrary JSON-serialisable fact."""
        self.extra[key] = value

    # --- output -----------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        """Finalized manifest content (wall time / RSS sampled now)."""
        out: Dict[str, Any] = {
            "scenario": self.scenario,
            "seed": self.seed,
            "config_hash": self.config_hashes[0] if self.config_hashes else None,
            "config_hashes": list(self.config_hashes),
            "git_rev": git_revision(),
            "started_at_unix": self._t0,
            "wall_time_s": time.perf_counter() - self._p0,
            "peak_rss_bytes": peak_rss_bytes(),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "argv": list(sys.argv),
        }
        out.update(self.extra)
        return out

    def write(self, path) -> Path:
        """Serialise the manifest to ``path``; returns the path."""
        p = Path(path)
        with open(p, "w", encoding="utf-8") as fh:
            json.dump(self.as_dict(), fh, indent=2, default=str)
            fh.write("\n")
        return p
