"""Exporters: JSONL time series and Prometheus text format.

The Chrome-trace exporter lives on :class:`~repro.obs.trace.TraceCollector`
itself (the collector owns the buffered events); this module handles the
registry-shaped outputs.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Optional

from repro.obs.metrics import MetricsRegistry, render_prometheus

__all__ = ["JsonlMetricsWriter", "write_prometheus"]


class JsonlMetricsWriter:
    """Append-mode JSONL sink for registry snapshots.

    Each line is ``{"t_wall": <unix>, "t_sim": <sim s>, "metrics": {...}}``;
    repeated snapshots during a run (driven by the progress heartbeat) form
    a machine-readable time series of every counter/gauge/histogram.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._fh = open(self.path, "w", encoding="utf-8")
        self.lines_written = 0

    def snapshot(self, registry: MetricsRegistry,
                 sim_time: Optional[float] = None) -> None:
        """Append one snapshot line."""
        if self._fh.closed:
            return
        line = {
            "t_wall": time.time(),
            "t_sim": sim_time,
            "metrics": registry.snapshot(),
        }
        self._fh.write(json.dumps(line) + "\n")
        self._fh.flush()
        self.lines_written += 1

    def close(self) -> None:
        """Flush and close the stream.  Idempotent."""
        if not self._fh.closed:
            self._fh.close()


def write_prometheus(registry: MetricsRegistry, path) -> Path:
    """Write the registry in Prometheus text exposition format."""
    p = Path(path)
    with open(p, "w", encoding="utf-8") as fh:
        fh.write(render_prometheus(registry))
    return p
