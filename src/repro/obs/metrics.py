"""Zero-dependency metrics registry: counters, gauges, histograms, timers.

This is the *simulator-side* instrumentation store -- deliberately distinct
from :mod:`repro.telemetry`, which models the measured system's own log
pipeline (Section V.A) and must keep reading only parsed log strings.  The
registry measures the measurement machine itself: event-loop throughput,
fastsim step cost, adaptation storms, protocol hot-spot rates.

Design constraints:

* **Determinism.** Counters and gauges record only simulation-deterministic
  quantities (event counts, peer counts); wall-clock observations live in
  timers/histograms, which are excluded from :meth:`MetricsRegistry.
  counter_values` so seed-determinism checks can compare runs.
* **Near-zero overhead when disabled.** Disabled code paths never reach
  this module at all (the engines keep a ``None`` observer and run their
  original loops); where a guard is impractical the :data:`NULL_REGISTRY`
  accepts every call as a no-op.
* **No dependencies.** Pure stdlib so the registry can be imported from
  any layer (kernel, fastsim, core protocol) without cycles.
"""

from __future__ import annotations

import bisect
import math
import re
from typing import Dict, List, Sequence, Tuple

__all__ = [
    "Counter",
    "BatchedCounter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_TIME_BUCKETS_S",
]

# Fixed bucket boundaries for wall-time histograms (seconds).  Spanning
# 10 us .. 10 s covers everything from a no-op callback to a whole fastsim
# step over a million peers.
DEFAULT_TIME_BUCKETS_S: Tuple[float, ...] = (
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0, 10.0,
)


class Counter:
    """Monotonically increasing count of simulation-deterministic events."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (default 1) to the counter."""
        self.value += n


class BatchedCounter:
    """Write-combining facade over a :class:`Counter` for hot loops.

    Increments accumulate in :attr:`pending` (hot paths may bump the
    attribute directly, skipping even the method call) and fold into the
    registry-visible counter at snapshot boundaries --
    :meth:`MetricsRegistry.snapshot` and
    :meth:`MetricsRegistry.counter_values` flush first, so every exported
    value is exact and ``counter_values`` output is identical to
    unbatched counting.
    """

    __slots__ = ("counter", "pending")

    kind = "counter"

    def __init__(self, counter: Counter) -> None:
        self.counter = counter
        self.pending = 0

    @property
    def name(self) -> str:
        """The underlying counter's name."""
        return self.counter.name

    @property
    def value(self) -> int:
        """Exact current count (flushed + pending)."""
        return self.counter.value + self.pending

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (default 1) to the pending batch."""
        self.pending += n

    def flush(self) -> None:
        """Fold the pending batch into the underlying counter."""
        if self.pending:
            self.counter.value += self.pending
            self.pending = 0


class Gauge:
    """A point-in-time value (heap depth, live peers, RSS...)."""

    __slots__ = ("name", "value")

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge value."""
        self.value = value

    def max(self, value: float) -> None:
        """Keep the running maximum."""
        if value > self.value:
            self.value = value


class Histogram:
    """Fixed-boundary histogram (cumulative bucket counts + sum + count).

    Bucket semantics follow the Prometheus convention: ``buckets[i]``
    counts observations ``<= bounds[i]``, with an implicit ``+Inf`` bucket
    equal to ``count``.
    """

    __slots__ = ("name", "bounds", "buckets", "count", "total")

    kind = "histogram"

    def __init__(self, name: str,
                 bounds: Sequence[float] = DEFAULT_TIME_BUCKETS_S) -> None:
        if list(bounds) != sorted(bounds) or len(bounds) == 0:
            raise ValueError("bucket bounds must be a non-empty sorted sequence")
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self.buckets: List[int] = [0] * len(self.bounds)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        idx = bisect.bisect_left(self.bounds, value)
        if idx < len(self.buckets):
            self.buckets[idx] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        """Mean observation (NaN when empty)."""
        return self.total / self.count if self.count else math.nan

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, Prometheus-style."""
        out: List[Tuple[float, int]] = []
        acc = 0
        for bound, n in zip(self.bounds, self.buckets):
            acc += n
            out.append((bound, acc))
        return out


class Timer:
    """Wall-time accumulator backed by a :class:`Histogram`.

    Use as a context manager for convenience, or feed externally measured
    durations to :meth:`observe` on hot paths (avoids ``with`` overhead).
    """

    __slots__ = ("name", "hist", "_t0")

    kind = "timer"

    def __init__(self, name: str,
                 bounds: Sequence[float] = DEFAULT_TIME_BUCKETS_S) -> None:
        self.name = name
        self.hist = Histogram(name, bounds)
        self._t0 = 0.0

    def observe(self, seconds: float) -> None:
        """Record an externally measured duration."""
        self.hist.observe(seconds)

    @property
    def count(self) -> int:
        """Number of recorded durations."""
        return self.hist.count

    @property
    def total_s(self) -> float:
        """Total recorded wall time in seconds."""
        return self.hist.total

    def __enter__(self) -> "Timer":
        from time import perf_counter
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        from time import perf_counter
        self.hist.observe(perf_counter() - self._t0)


class MetricsRegistry:
    """Name-keyed store of metrics with get-or-create accessors.

    Metric names are dotted paths (``engine.events_executed``,
    ``fastsim.step_s``); the Prometheus exporter sanitizes them.
    """

    enabled = True

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}
        self._batched: Dict[str, BatchedCounter] = {}

    # --- get-or-create accessors ------------------------------------------
    def _get(self, name: str, cls, *args):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, *args)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        """Get or create a counter."""
        return self._get(name, Counter)

    def batched_counter(self, name: str) -> BatchedCounter:
        """Get or create a write-combining facade over ``counter(name)``.

        The underlying counter is registered as usual; the facade is
        shared per name, so hot loops and slow paths can mix
        ``batched_counter(n)`` and ``counter(n)`` against one total.
        """
        batched = self._batched.get(name)
        if batched is None:
            batched = BatchedCounter(self.counter(name))
            self._batched[name] = batched
        return batched

    def flush_batched(self) -> None:
        """Fold every batched counter's pending increments in (called
        automatically by :meth:`snapshot` / :meth:`counter_values`)."""
        for batched in self._batched.values():
            batched.flush()

    def gauge(self, name: str) -> Gauge:
        """Get or create a gauge."""
        return self._get(name, Gauge)

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_TIME_BUCKETS_S) -> Histogram:
        """Get or create a fixed-boundary histogram."""
        return self._get(name, Histogram, bounds)

    def timer(self, name: str,
              bounds: Sequence[float] = DEFAULT_TIME_BUCKETS_S) -> Timer:
        """Get or create a wall-time timer."""
        return self._get(name, Timer, bounds)

    # --- views -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def metrics(self) -> List[object]:
        """All registered metrics, sorted by name."""
        return [self._metrics[k] for k in sorted(self._metrics)]

    def counter_values(self) -> Dict[str, int]:
        """``name -> value`` for counters only -- the deterministic subset
        compared by the seed-determinism regression test."""
        self.flush_batched()
        return {
            name: m.value for name, m in sorted(self._metrics.items())
            if isinstance(m, Counter)
        }

    def snapshot(self) -> Dict[str, object]:
        """Flat JSON-serialisable view of every metric.

        Counters/gauges map to their value; histograms and timers map to
        ``{count, total, mean, buckets}``.
        """
        self.flush_batched()
        out: Dict[str, object] = {}
        for name in sorted(self._metrics):
            m = self._metrics[name]
            if isinstance(m, (Counter, Gauge)):
                out[name] = m.value
            else:
                hist = m.hist if isinstance(m, Timer) else m
                mean = hist.mean
                out[name] = {
                    "count": hist.count,
                    "total": hist.total,
                    "mean": None if math.isnan(mean) else mean,
                    "buckets": hist.cumulative_buckets(),
                }
        return out


class _NullMetric:
    """Shared sink for every metric operation when observability is off."""

    __slots__ = ("pending",)
    value = 0
    count = 0
    total_s = 0.0

    def __init__(self) -> None:
        # batched-counter call sites may bump ``pending`` directly
        self.pending = 0

    def inc(self, n: int = 1) -> None:
        pass

    def flush(self) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def max(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_METRIC = _NullMetric()


class NullRegistry:
    """No-op registry: every accessor returns the same inert metric.

    Lets call sites write ``registry.counter("x").inc()`` unconditionally
    in paths where threading an ``if`` guard through would hurt clarity
    more than the two no-op calls hurt speed.
    """

    enabled = False

    def counter(self, name: str) -> _NullMetric:
        """Return the shared no-op metric."""
        return _NULL_METRIC

    gauge = counter
    histogram = counter
    timer = counter
    batched_counter = counter

    def flush_batched(self) -> None:
        """Nothing to flush."""

    def __len__(self) -> int:
        return 0

    def __contains__(self, name: str) -> bool:
        return False

    def metrics(self) -> List[object]:
        """Always empty."""
        return []

    def counter_values(self) -> Dict[str, int]:
        """Always empty."""
        return {}

    def snapshot(self) -> Dict[str, object]:
        """Always empty."""
        return {}


NULL_REGISTRY = NullRegistry()

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def prometheus_name(name: str) -> str:
    """Sanitize a dotted metric name for the Prometheus text format."""
    sane = _NAME_RE.sub("_", name)
    if sane and sane[0].isdigit():
        sane = "_" + sane
    return f"repro_{sane}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    registry.flush_batched()
    lines: List[str] = []
    for metric in registry.metrics():
        name = prometheus_name(metric.name)
        if isinstance(metric, Counter):
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {metric.value}")
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {metric.value}")
        else:
            hist = metric.hist if isinstance(metric, Timer) else metric
            if isinstance(metric, Timer):
                name += "_seconds"
            lines.append(f"# TYPE {name} histogram")
            for bound, acc in hist.cumulative_buckets():
                lines.append(f'{name}_bucket{{le="{bound:g}"}} {acc}')
            lines.append(f'{name}_bucket{{le="+Inf"}} {hist.count}')
            lines.append(f"{name}_sum {hist.total}")
            lines.append(f"{name}_count {hist.count}")
    return "\n".join(lines) + ("\n" if lines else "")
