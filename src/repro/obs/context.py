"""The ambient observability context.

An :class:`ObsContext` bundles one run's registry, optional trace
collector, optional progress reporter and the run manifest.  Exactly one
context may be *active* at a time; engines created while it is active
attach themselves automatically (:class:`repro.sim.engine.Engine`,
:class:`repro.fastsim.engine.FastSimulation`), so experiment code needs no
signature changes to become observable.

When no context is active, the engines keep their original,
instrumentation-free hot loops and the module-level counter helpers
(:func:`repro.obs.inc`) are cheap no-ops -- observability costs nothing
unless asked for.
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional

from repro.obs.exporters import JsonlMetricsWriter
from repro.obs.manifest import RunManifest, manifest_path_for, peak_rss_bytes
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import ProgressReporter
from repro.obs.trace import TraceCollector

__all__ = ["ObsError", "ObsContext", "current", "activate", "deactivate",
           "session"]


class ObsError(RuntimeError):
    """Raised on observability misuse (double sessions, double attach)."""


class ObsContext:
    """One run's worth of observability state."""

    def __init__(
        self,
        *,
        registry: Optional[MetricsRegistry] = None,
        trace: Optional[TraceCollector] = None,
        progress: Optional[ProgressReporter] = None,
        manifest: Optional[RunManifest] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.trace = trace
        self.progress = progress
        self.manifest = manifest if manifest is not None else RunManifest()
        # gauge providers are sampled at every snapshot beat: systems
        # register cheap callables (live peer count, running continuity)
        # instead of updating gauges from their hot paths
        self.gauge_providers: Dict[str, Callable[[], float]] = {}

    def register_gauge_provider(
        self, name: str, fn: Callable[[], float]
    ) -> None:
        """Install (or replace) a gauge provider sampled at each beat."""
        self.gauge_providers[name] = fn

    def sample_gauge_providers(self) -> None:
        """Pull every registered provider into its gauge, plus peak RSS."""
        for name, fn in self.gauge_providers.items():
            try:
                value = float(fn())
            except Exception:  # pragma: no cover - provider died mid-run
                continue
            if value == value:  # skip NaN (e.g. continuity before playback)
                self.registry.gauge(name).set(value)
        self.registry.gauge("run.peak_rss_mb").set(
            peak_rss_bytes() / (1024.0 * 1024.0)
        )

    # convenience pass-throughs used by instrumented call sites
    def note_config(self, cfg) -> None:
        """Record a config fingerprint in the run manifest."""
        self.manifest.note_config(cfg)

    def note_seed(self, seed: int) -> None:
        """Record the root seed in the run manifest."""
        self.manifest.note_seed(seed)


# the single ambient context (None = observability off)
_ACTIVE: Optional[ObsContext] = None


def current() -> Optional[ObsContext]:
    """The active context, or None when observability is off."""
    return _ACTIVE


def activate(ctx: ObsContext) -> ObsContext:
    """Make ``ctx`` the ambient context.  Refuses to nest (the
    double-instrumentation guard: two active sessions would double-count
    every hot-spot counter)."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise ObsError("an observability session is already active")
    _ACTIVE = ctx
    return ctx


def deactivate(ctx: Optional[ObsContext] = None) -> None:
    """Clear the ambient context (optionally verifying identity)."""
    global _ACTIVE
    if ctx is not None and _ACTIVE is not ctx and _ACTIVE is not None:
        raise ObsError("deactivating a context that is not active")
    _ACTIVE = None


@contextmanager
def session(
    *,
    metrics_path=None,
    trace_path=None,
    progress: bool = False,
    progress_interval_s: float = 5.0,
    scenario: Optional[str] = None,
    seed: Optional[int] = None,
    stream=None,
    trace_max_events: int = 500_000,
) -> Iterator[ObsContext]:
    """Run a block under an active observability session.

    On exit: a final metrics snapshot and the run manifest are written
    (when ``metrics_path`` is given), the Chrome trace is serialised (when
    ``trace_path`` is given), and the ambient context is cleared.  The
    progress heartbeat doubles as the JSONL time-series driver: every beat
    appends a snapshot line.
    """
    writer = JsonlMetricsWriter(metrics_path) if metrics_path else None
    trace = TraceCollector(max_events=trace_max_events) if trace_path else None
    registry = MetricsRegistry()

    manifest = RunManifest(scenario=scenario, seed=seed)
    ctx = ObsContext(registry=registry, trace=trace, progress=None,
                     manifest=manifest)

    reporter: Optional[ProgressReporter] = None
    if progress or writer is not None:
        on_beat = None
        if writer is not None:
            def on_beat(sim_t):
                ctx.sample_gauge_providers()
                writer.snapshot(registry, sim_t)
        reporter = ProgressReporter(
            interval_s=progress_interval_s,
            stream=stream if stream is not None else sys.stderr,
            print_lines=progress,
            on_beat=on_beat,
        )
        ctx.progress = reporter

    activate(ctx)
    try:
        yield ctx
    finally:
        deactivate(ctx)
        try:
            if writer is not None:
                ctx.sample_gauge_providers()
                writer.snapshot(registry, None)
                writer.close()
            if trace is not None and trace_path is not None:
                trace.write(trace_path)
            sidecar_source = metrics_path or trace_path
            if sidecar_source is not None:
                manifest.note("metrics_path", str(metrics_path) if metrics_path else None)
                manifest.note("trace_path", str(trace_path) if trace_path else None)
                manifest.write(manifest_path_for(sidecar_source))
        except OSError as exc:  # pragma: no cover - disk full etc.
            print(f"[obs] export failed: {exc}", file=sys.stderr)
