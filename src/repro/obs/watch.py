"""Live view over an obs metrics JSONL feed.

``python -m repro watch RUN.jsonl`` tails the snapshot stream that
``--metrics-out`` (or a campaign heartbeat) appends to and renders one
status line per snapshot::

    [watch] sim=1180.0s events/s=61432 peers=842 continuity=0.97 rss=312MB

The feed is the only coupling: the watcher holds no reference to the
running process, so it works across processes, over NFS, and on feeds
from runs that already finished.  Campaign feeds are recognised by their
``campaign.runs_total`` gauge and render scheduler progress instead::

    [watch] campaign 37/120 done (2 failed, 14 cached, 4 running) rss=98MB

Exit codes: 0 feed completed (final snapshot seen) or ``--once``
rendered, 1 error (unreadable feed / run never appeared), 2 usage
error, 130 interrupted.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["Snapshot", "render_snapshot", "iter_feed", "follow_feed", "main"]

# counters whose per-second rate is the headline number, in preference
# order (detailed engine first, then the fluid engine's step counter)
_WORK_COUNTERS: Tuple[Tuple[str, str], ...] = (
    ("engine.events_executed", "events"),
    ("fastsim.steps", "steps"),
)


class Snapshot:
    """One parsed feed line plus the rate context of the previous one."""

    __slots__ = ("t_wall", "t_sim", "metrics")

    def __init__(self, t_wall: float, t_sim: Optional[float],
                 metrics: Dict[str, object]) -> None:
        self.t_wall = t_wall
        self.t_sim = t_sim
        self.metrics = metrics

    @classmethod
    def from_line(cls, line: str) -> "Snapshot":
        data = json.loads(line)
        return cls(float(data["t_wall"]), data.get("t_sim"),
                   data.get("metrics") or {})

    @property
    def is_final(self) -> bool:
        """The session-exit snapshot carries a null ``t_sim``."""
        return self.t_sim is None

    @property
    def is_campaign(self) -> bool:
        return "campaign.runs_total" in self.metrics


def _fmt_count(value: float) -> str:
    return f"{value:,.0f}".replace(",", " ")


def render_snapshot(snap: Snapshot, prev: Optional[Snapshot] = None) -> str:
    """One human-readable status line for ``snap``.

    ``prev`` (the previous snapshot, if any) supplies the baseline for
    the work-rate figure; without it the line shows cumulative totals.
    """
    m = snap.metrics
    parts: List[str] = []
    if snap.is_campaign:
        total = int(m.get("campaign.runs_total", 0) or 0)
        done = int(m.get("campaign.runs_done", 0) or 0)
        failed = int(m.get("campaign.runs_failed", 0) or 0)
        cached = int(m.get("campaign.runs_cached", 0) or 0)
        running = int(m.get("campaign.runs_in_flight", 0) or 0)
        parts.append(f"campaign {done}/{total} done "
                     f"({failed} failed, {cached} cached, {running} running)")
    else:
        if snap.t_sim is not None:
            parts.append(f"sim={snap.t_sim:.1f}s")
        for counter, unit in _WORK_COUNTERS:
            value = m.get(counter)
            if not isinstance(value, (int, float)):
                continue
            if prev is not None and snap.t_wall > prev.t_wall:
                prev_value = prev.metrics.get(counter)
                if isinstance(prev_value, (int, float)):
                    rate = (value - prev_value) / (snap.t_wall - prev.t_wall)
                    parts.append(f"{unit}/s={_fmt_count(rate)}")
                    break
            parts.append(f"{unit}={_fmt_count(value)}")
            break
        peers = m.get("run.live_peers")
        if isinstance(peers, (int, float)):
            parts.append(f"peers={int(peers)}")
        continuity = m.get("run.mean_continuity")
        if isinstance(continuity, (int, float)):
            parts.append(f"continuity={continuity:.3f}")
    rss = m.get("run.peak_rss_mb")
    if isinstance(rss, (int, float)):
        parts.append(f"rss={rss:.0f}MB")
    if snap.is_final:
        parts.append("(run finished)")
    if not parts:
        parts.append("(no recognised metrics yet)")
    return "[watch] " + " ".join(parts)


def iter_feed(path: Path) -> Iterator[Snapshot]:
    """Parse every complete snapshot line currently in the feed.

    Malformed or truncated lines (a writer may be mid-append) are
    skipped, never fatal.
    """
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                yield Snapshot.from_line(line)
            except (ValueError, KeyError, TypeError):
                continue


def follow_feed(
    path: Path,
    *,
    interval_s: float = 1.0,
    timeout_s: Optional[float] = None,
    stream=None,
    _sleep=time.sleep,
) -> int:
    """Tail ``path``, rendering each new snapshot until the final one.

    Waits up to ``timeout_s`` for the feed file to appear (a watcher is
    typically started moments before or after the run), then for new
    lines, polling every ``interval_s``.  Returns an exit code.
    """
    out = stream if stream is not None else sys.stdout
    t0 = time.monotonic()  # repro: noqa[DET002] watcher pacing, not simulation state
    while not path.exists():
        if timeout_s is not None and time.monotonic() - t0 >= timeout_s:  # repro: noqa[DET002] watcher pacing
            print(f"error: watch: {path} never appeared", file=sys.stderr)
            return 1
        _sleep(min(interval_s, 0.2))

    prev: Optional[Snapshot] = None
    offset = 0
    stalled_since: Optional[float] = None
    with open(path, "r", encoding="utf-8") as fh:
        while True:
            fh.seek(offset)
            chunk = fh.read()
            progressed = False
            # only consume lines the writer has finished (newline-terminated)
            while "\n" in chunk:
                line, chunk = chunk.split("\n", 1)
                offset += len(line.encode("utf-8")) + 1
                line = line.strip()
                if not line:
                    continue
                try:
                    snap = Snapshot.from_line(line)
                except (ValueError, KeyError, TypeError):
                    continue
                progressed = True
                out.write(render_snapshot(snap, prev) + "\n")
                out.flush()
                prev = snap
                if snap.is_final:
                    return 0
            now = time.monotonic()  # repro: noqa[DET002] watcher pacing, not simulation state
            if progressed:
                stalled_since = None
            elif stalled_since is None:
                stalled_since = now
            elif timeout_s is not None and now - stalled_since >= timeout_s:
                print(f"error: watch: {path} stalled for {timeout_s:.0f}s "
                      "without a final snapshot", file=sys.stderr)
                return 1
            _sleep(interval_s)


def watch_once(path: Path, *, stream=None) -> int:
    """Render the latest snapshot currently in the feed and return 0."""
    out = stream if stream is not None else sys.stdout
    prev: Optional[Snapshot] = None
    last: Optional[Snapshot] = None
    for snap in iter_feed(path):
        prev, last = last, snap
    if last is None:
        print(f"error: watch: no snapshots in {path}", file=sys.stderr)
        return 1
    out.write(render_snapshot(last, prev) + "\n")
    out.flush()
    return 0


def main(argv=None) -> int:
    """``python -m repro watch`` entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro watch",
        description="Render the metrics JSONL feed of a running run or "
                    "campaign (written by --metrics-out).",
    )
    parser.add_argument("feed", help="metrics JSONL path to tail")
    parser.add_argument("--once", action="store_true",
                        help="render the latest snapshot and exit")
    parser.add_argument("--interval", type=float, default=1.0,
                        metavar="S", help="poll interval (default 1s)")
    parser.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="give up after S seconds without progress "
                             "(default: wait forever)")
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return int(exc.code or 0)
    if args.interval <= 0:
        print("error: watch: --interval must be positive", file=sys.stderr)
        return 2

    path = Path(args.feed)
    try:
        if args.once:
            return watch_once(path)
        return follow_feed(path, interval_s=args.interval,
                           timeout_s=args.timeout)
    except KeyboardInterrupt:
        print("error: interrupted", file=sys.stderr)
        return 130
    except OSError as exc:
        print(f"error: watch: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
