"""Network substrate: connectivity, capacity, latency and bandwidth sharing.

The paper's analysis treats the network as a fluid rate system (Section IV.C)
with the binding constraint being each peer's *upload* capacity, shared among
its child sub-stream connections; and reachability being governed by the
peer's connectivity class (Section V.B).  This package implements exactly
that substrate:

* :class:`ConnectivityClass` / :func:`can_initiate` -- the four user types
  (direct-connect, UPnP, NAT, firewall) and the partnership-direction rule.
* :class:`CapacityModel` -- heterogeneous upload/download capacity sampling.
* :class:`LatencyModel` -- pairwise propagation delay.
* :class:`FairShareAllocator` -- max-min fair division of a parent's upload
  among child connections, the quantity that drives Eqs. (3)-(6).
"""

from repro.network.connectivity import (
    ConnectivityClass,
    ConnectivityMix,
    can_accept_incoming,
    can_establish,
)
from repro.network.capacity import CapacityModel, CapacityProfile
from repro.network.latency import LatencyModel
from repro.network.fairshare import FairShareAllocator, waterfill, waterfill_rates

__all__ = [
    "ConnectivityClass",
    "ConnectivityMix",
    "can_accept_incoming",
    "can_establish",
    "CapacityModel",
    "CapacityProfile",
    "LatencyModel",
    "FairShareAllocator",
    "waterfill",
    "waterfill_rates",
]
