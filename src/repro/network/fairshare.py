"""Max-min fair division of a parent's upload among child connections.

Section IV.C models the degradation of per-sub-stream rate when a parent is
oversubscribed: with ``D_p`` children each nominally needing ``R/K``, an
extra child drives each connection down to ``r_down = D_p/(D_p+1) * R/K``
(Eq. 5).  That formula is the equal-split special case; in general children
differ -- a caught-up child only *consumes* the live rate ``R/K`` while a
catching-up child can absorb any surplus (Eq. 3's ``r_up``).

We therefore allocate by progressive filling (water-filling): capacity is
poured equally into all unsaturated demands; a demand that reaches its cap
is frozen and the remainder is re-poured among the rest.  This is the
classic max-min fair allocation and reduces exactly to Eq. 5 when all
demands exceed the fair share.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = ["waterfill", "waterfill_rates", "FairShareAllocator"]

# Below this size the pure-Python fill beats the numpy call overhead (the
# common case is a handful of child connections per parent).
_SMALL_N = 16


# argsort permutations keyed by the input's comparison pattern (dense
# ranks): numpy's introsort is comparison-based, so two arrays with the
# same rank pattern sort through the identical permutation.  Tied demand
# vectors are the *common* hot-path case (all caught-up children demand
# the same rate), so the permutation is computed once per pattern and the
# fill itself stays pure Python.
_perm_cache: dict = {}


def _waterfill_py(capacity: float, demands: Sequence[float]) -> List[float]:
    """Pure-Python progressive filling for small demand vectors.

    Capped allocations within a group of *tied* demands are mathematically
    equal but can differ in the last ulp (the ``remaining / active``
    recurrence drifts), and which index receives which variant is decided
    by the sort's tie order.  The numpy path's ``argsort`` order is the
    reference behaviour, and ``argsort``'s permutation depends only on the
    comparison pattern of its input -- so for tie patterns whose ulp
    assignment is order-dependent the fill is replayed over the cached
    argsort permutation for that pattern.  Either way the result is
    bit-identical to :func:`_waterfill_np`.
    """
    n = len(demands)
    order = sorted(range(n), key=demands.__getitem__)
    alloc = [0.0] * n
    remaining = capacity
    active = n
    prev_d = -1.0
    prev_give = -1.0
    for idx in order:
        fair = remaining / active
        d = demands[idx]
        give = d if d < fair else fair
        if d == prev_d and give != prev_give:
            break  # tie-order-dependent: replay over argsort's permutation
        alloc[idx] = give
        remaining -= give
        active -= 1
        prev_d = d
        prev_give = give
    else:
        return alloc
    # dense ranks in original index order = the comparison pattern
    ranks = [0] * n
    r = 0
    prev = demands[order[0]]
    for idx in order:
        d = demands[idx]
        if d != prev:
            r += 1
            prev = d
        ranks[idx] = r
    key = tuple(ranks)
    perm = _perm_cache.get(key)
    if perm is None:
        if len(_perm_cache) > 4096:  # adversarial-pattern backstop
            _perm_cache.clear()
        perm = np.argsort(np.asarray(ranks, dtype=float)).tolist()
        _perm_cache[key] = perm
    alloc = [0.0] * n
    remaining = capacity
    active = n
    for idx in perm:
        fair = remaining / active
        d = demands[idx]
        give = d if d < fair else fair
        alloc[idx] = give
        remaining -= give
        active -= 1
    return alloc


def _waterfill_np(capacity: float, d: np.ndarray) -> np.ndarray:
    """The numpy progressive-filling recurrence (pre-validated input)."""
    n = d.size
    alloc = np.empty(n, dtype=float)
    order = np.argsort(d)
    dl = d.tolist()  # python-float loop: same bits, no numpy scalar boxing
    remaining = float(capacity)
    active = n
    for idx in order.tolist():
        fair = remaining / active
        give = min(dl[idx], fair)
        alloc[idx] = give
        remaining -= give
        active -= 1
    return alloc


def waterfill_rates(capacity: float, demands: Sequence[float]) -> List[float]:
    """Max-min fair allocation returning a plain list of floats.

    The hot-path variant of :func:`waterfill` used by the upload
    schedulers: for small flat demand vectors it runs a pure-Python fill
    (no numpy round-trip), falling back to the numpy path for large
    vectors and for tie patterns whose ulp assignment is sort-order
    dependent (see :func:`_waterfill_py`).  Allocation values are
    bit-identical to :func:`waterfill` in every case.
    """
    if capacity < 0:
        raise ValueError(f"capacity must be non-negative (got {capacity})")
    n = len(demands)
    if n == 0:
        return []
    if n <= _SMALL_N:
        for d in demands:
            if d < 0:
                raise ValueError("demands must be non-negative")
        return _waterfill_py(capacity, demands)
    d = np.asarray(demands, dtype=float)
    if (d < 0).any():
        raise ValueError("demands must be non-negative")
    return _waterfill_np(capacity, d).tolist()


def waterfill(capacity: float, demands: Sequence[float]) -> np.ndarray:
    """Max-min fair allocation of ``capacity`` over ``demands``.

    Parameters
    ----------
    capacity:
        Total resource to divide (e.g. parent upload, bps).  Must be >= 0.
    demands:
        Per-connection maximum useful rate.  ``inf`` is allowed (a
        catching-up child absorbs anything).

    Returns
    -------
    numpy.ndarray
        Allocation with ``0 <= alloc[i] <= demands[i]`` and
        ``sum(alloc) == min(capacity, sum(demands))`` (up to float error).

    Notes
    -----
    Runs in O(n log n) by sorting demands once, following the standard
    progressive-filling recurrence rather than a loop of passes.  Use
    :func:`waterfill_rates` on hot paths: same values, list output, and a
    pure-Python fast path for small vectors.
    """
    d = np.asarray(demands, dtype=float)
    if d.ndim != 1:
        raise ValueError("demands must be one-dimensional")
    if capacity < 0:
        raise ValueError(f"capacity must be non-negative (got {capacity})")
    if (d < 0).any():
        raise ValueError("demands must be non-negative")
    if d.size == 0:
        return np.zeros(0)
    return _waterfill_np(capacity, d)


class FairShareAllocator:
    """Stateful wrapper used by the reference engine.

    Tracks, per parent, the set of child connections and their demands, and
    recomputes allocations only when membership or demands change -- rate
    recomputation is the hot path during flash crowds.
    """

    def __init__(self, capacity: float) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self._capacity = float(capacity)
        self._demands: dict[object, float] = {}
        self._alloc: dict[object, float] = {}
        self._dirty = False

    @property
    def capacity(self) -> float:
        """Maximum entries held."""
        return self._capacity

    @property
    def n_connections(self) -> int:
        """Number of tracked connections."""
        return len(self._demands)

    def set_demand(self, key: object, demand: float) -> None:
        """Add or update a connection's demand."""
        if demand < 0:
            raise ValueError("demand must be non-negative")
        if self._demands.get(key) != demand:
            self._demands[key] = float(demand)
            self._dirty = True

    def remove(self, key: object) -> None:
        """Drop a connection.  Missing keys are ignored (idempotent teardown)."""
        if self._demands.pop(key, None) is not None:
            self._alloc.pop(key, None)
            self._dirty = True

    def allocation(self, key: object) -> float:
        """Current fair-share rate for ``key`` (0 if unknown)."""
        self._recompute()
        return self._alloc.get(key, 0.0)

    def allocations(self) -> dict[object, float]:
        """Snapshot of all current allocations."""
        self._recompute()
        return dict(self._alloc)

    def _recompute(self) -> None:
        if not self._dirty:
            return
        keys = list(self._demands.keys())
        demands = [self._demands[k] for k in keys]
        alloc = waterfill_rates(self._capacity, demands)
        self._alloc = dict(zip(keys, alloc))
        self._dirty = False
