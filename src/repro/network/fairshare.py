"""Max-min fair division of a parent's upload among child connections.

Section IV.C models the degradation of per-sub-stream rate when a parent is
oversubscribed: with ``D_p`` children each nominally needing ``R/K``, an
extra child drives each connection down to ``r_down = D_p/(D_p+1) * R/K``
(Eq. 5).  That formula is the equal-split special case; in general children
differ -- a caught-up child only *consumes* the live rate ``R/K`` while a
catching-up child can absorb any surplus (Eq. 3's ``r_up``).

We therefore allocate by progressive filling (water-filling): capacity is
poured equally into all unsaturated demands; a demand that reaches its cap
is frozen and the remainder is re-poured among the rest.  This is the
classic max-min fair allocation and reduces exactly to Eq. 5 when all
demands exceed the fair share.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["waterfill", "FairShareAllocator"]


def waterfill(capacity: float, demands: Sequence[float]) -> np.ndarray:
    """Max-min fair allocation of ``capacity`` over ``demands``.

    Parameters
    ----------
    capacity:
        Total resource to divide (e.g. parent upload, bps).  Must be >= 0.
    demands:
        Per-connection maximum useful rate.  ``inf`` is allowed (a
        catching-up child absorbs anything).

    Returns
    -------
    numpy.ndarray
        Allocation with ``0 <= alloc[i] <= demands[i]`` and
        ``sum(alloc) == min(capacity, sum(demands))`` (up to float error).

    Notes
    -----
    Runs in O(n log n) by sorting demands once, following the standard
    progressive-filling recurrence rather than a loop of passes.
    """
    d = np.asarray(demands, dtype=float)
    if d.ndim != 1:
        raise ValueError("demands must be one-dimensional")
    if capacity < 0:
        raise ValueError(f"capacity must be non-negative (got {capacity})")
    if (d < 0).any():
        raise ValueError("demands must be non-negative")
    n = d.size
    if n == 0:
        return np.zeros(0)
    alloc = np.empty(n, dtype=float)
    order = np.argsort(d)
    remaining = float(capacity)
    active = n
    for k, idx in enumerate(order):
        fair = remaining / active
        give = min(d[idx], fair)
        alloc[idx] = give
        remaining -= give
        active -= 1
    return alloc


class FairShareAllocator:
    """Stateful wrapper used by the reference engine.

    Tracks, per parent, the set of child connections and their demands, and
    recomputes allocations only when membership or demands change -- rate
    recomputation is the hot path during flash crowds.
    """

    def __init__(self, capacity: float) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self._capacity = float(capacity)
        self._demands: dict[object, float] = {}
        self._alloc: dict[object, float] = {}
        self._dirty = False

    @property
    def capacity(self) -> float:
        """Maximum entries held."""
        return self._capacity

    @property
    def n_connections(self) -> int:
        """Number of tracked connections."""
        return len(self._demands)

    def set_demand(self, key: object, demand: float) -> None:
        """Add or update a connection's demand."""
        if demand < 0:
            raise ValueError("demand must be non-negative")
        if self._demands.get(key) != demand:
            self._demands[key] = float(demand)
            self._dirty = True

    def remove(self, key: object) -> None:
        """Drop a connection.  Missing keys are ignored (idempotent teardown)."""
        if self._demands.pop(key, None) is not None:
            self._alloc.pop(key, None)
            self._dirty = True

    def allocation(self, key: object) -> float:
        """Current fair-share rate for ``key`` (0 if unknown)."""
        self._recompute()
        return self._alloc.get(key, 0.0)

    def allocations(self) -> dict[object, float]:
        """Snapshot of all current allocations."""
        self._recompute()
        return dict(self._alloc)

    def _recompute(self) -> None:
        if not self._dirty:
            return
        keys = list(self._demands.keys())
        demands = [self._demands[k] for k in keys]
        alloc = waterfill(self._capacity, demands)
        self._alloc = dict(zip(keys, alloc.tolist()))
        self._dirty = False
