"""Pairwise propagation-delay model.

Coolstreaming exchanges control messages (gossip, BM updates, subscription
requests) whose timing matters for join latency (Fig. 6) far more than for
steady-state streaming, which is rate-dominated.  We therefore model latency
as a per-peer "virtual coordinate" radius: the delay between two peers is
the sum of their radii plus a base.  This gives a cheap, symmetric,
triangle-inequality-respecting metric without storing an O(N^2) matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable

import numpy as np

__all__ = ["LatencyModel"]


@dataclass
class LatencyModel:
    """Sum-of-radii latency metric.

    Parameters
    ----------
    base_s:
        Constant floor added to every path (transmission + stack overhead).
    mean_radius_s:
        Mean of the exponential distribution from which per-peer radii are
        drawn.  A pair of average peers sees ``base + 2 * mean_radius``.
    """

    base_s: float = 0.010
    mean_radius_s: float = 0.040

    def __post_init__(self) -> None:
        if self.base_s < 0 or self.mean_radius_s < 0:
            raise ValueError("latency parameters must be non-negative")
        self._radii: Dict[Hashable, float] = {}

    def register(self, node_id: Hashable, rng: np.random.Generator) -> float:
        """Assign a radius to a node; returns it.  Idempotent per node."""
        r = self._radii.get(node_id)
        if r is None:
            r = float(rng.exponential(self.mean_radius_s)) if self.mean_radius_s else 0.0
            self._radii[node_id] = r
        return r

    def unregister(self, node_id: Hashable) -> None:
        """Forget a node.  Idempotent."""
        self._radii.pop(node_id, None)

    def delay(self, a: Hashable, b: Hashable) -> float:
        """One-way propagation delay between registered nodes ``a`` and ``b``."""
        try:
            # radii first: IEEE addition is commutative but not associative,
            # and delay(a, b) == delay(b, a) must hold exactly
            return self.base_s + (self._radii[a] + self._radii[b])
        except KeyError as exc:
            raise KeyError(f"node {exc.args[0]!r} not registered with LatencyModel") from None

    def rtt(self, a: Hashable, b: Hashable) -> float:
        """Round-trip time between ``a`` and ``b``."""
        return 2.0 * self.delay(a, b)

    def __contains__(self, node_id: Hashable) -> bool:
        return node_id in self._radii
