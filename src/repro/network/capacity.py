"""Heterogeneous upload/download capacity sampling.

The paper reports highly unbalanced upload contributions (Fig. 3b: ~30% of
peers carry >80% of bytes).  Two mechanisms produce this in the deployed
system: (a) NAT/firewall peers rarely receive incoming partnerships, so
their capacity is hard to use, and (b) access-link capacity itself was very
heterogeneous in 2006 (dial-up/ADSL/Ethernet).  We model (b) here with a
per-class capacity profile; (a) emerges from the connectivity rule.

Capacities are expressed in *bits per second* and converted to sub-stream
units (multiples of ``R/K``) by the engines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.network.connectivity import ConnectivityClass

__all__ = ["CapacityProfile", "CapacityModel"]


@dataclass(frozen=True)
class CapacityProfile:
    """A discrete mixture of (upload_bps, probability) access tiers."""

    uploads_bps: Sequence[float]
    probabilities: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.uploads_bps) != len(self.probabilities):
            raise ValueError("uploads_bps and probabilities must align")
        if len(self.uploads_bps) == 0:
            raise ValueError("profile must have at least one tier")
        if any(u < 0 for u in self.uploads_bps):
            raise ValueError("capacities must be non-negative")
        total = float(sum(self.probabilities))
        if not np.isclose(total, 1.0, atol=1e-9):
            raise ValueError(f"tier probabilities must sum to 1 (got {total})")

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Sample ``n`` upload capacities (bps) from the mixture."""
        ups = np.asarray(self.uploads_bps, dtype=float)
        probs = np.asarray(self.probabilities, dtype=float)
        idx = rng.choice(len(ups), size=int(n), p=probs)
        return ups[idx]

    @property
    def mean_bps(self) -> float:
        """Expected upload of the mixture."""
        ups = np.asarray(self.uploads_bps, dtype=float)
        probs = np.asarray(self.probabilities, dtype=float)
        return float(ups @ probs)


# 2006-era access mix, scaled so that the *system-wide* mean upload exceeds
# the 768 kbps stream rate only thanks to contributor-class peers -- the
# regime the paper describes ([23]'s critical-ratio argument).
_DEFAULT_PROFILES: Mapping[ConnectivityClass, CapacityProfile] = {
    # Campus/Ethernet + good ADSL: the stable, high-degree parents of Fig. 4.
    # Tier weights are calibrated so the population's *usable* upload
    # (reachability-discounted) exceeds the 768 kbps demand by ~20% -- the
    # critical-ratio margin of [23] that the measured deployment evidently
    # had, since continuity stayed ~97% at 40k users on a tiny server fleet.
    ConnectivityClass.DIRECT: CapacityProfile(
        uploads_bps=(6_000_000.0, 3_000_000.0, 1_500_000.0),
        probabilities=(0.30, 0.40, 0.30),
    ),
    ConnectivityClass.UPNP: CapacityProfile(
        uploads_bps=(3_000_000.0, 1_500_000.0, 750_000.0),
        probabilities=(0.30, 0.45, 0.25),
    ),
    # Residential ADSL uplinks: often below one full stream.
    ConnectivityClass.NAT: CapacityProfile(
        uploads_bps=(800_000.0, 400_000.0, 200_000.0),
        probabilities=(0.30, 0.40, 0.30),
    ),
    ConnectivityClass.FIREWALL: CapacityProfile(
        uploads_bps=(1_000_000.0, 500_000.0, 250_000.0),
        probabilities=(0.30, 0.40, 0.30),
    ),
    # Dedicated servers: 100 Mbps each, as deployed for the measured event.
    ConnectivityClass.SERVER: CapacityProfile(
        uploads_bps=(100_000_000.0,), probabilities=(1.0,)
    ),
}


@dataclass(frozen=True)
class CapacityModel:
    """Per-connectivity-class capacity profiles.

    ``download_factor`` scales a peer's download capacity relative to its
    upload (asymmetric access links; the paper's constraint analysis is
    upload-side, so the default leaves downloads comfortably unconstrained).
    """

    profiles: Mapping[ConnectivityClass, CapacityProfile] = field(
        default_factory=lambda: dict(_DEFAULT_PROFILES)
    )
    download_factor: float = 8.0

    def __post_init__(self) -> None:
        if self.download_factor <= 0:
            raise ValueError("download_factor must be positive")

    def sample_upload(
        self, cls: ConnectivityClass, rng: np.random.Generator
    ) -> float:
        """One upload capacity (bps) for a peer of class ``cls``."""
        return float(self.profiles[cls].sample(1, rng)[0])

    def sample_uploads(
        self,
        classes: Sequence[ConnectivityClass],
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Vectorized sampling for a population of classes."""
        classes = list(classes)
        out = np.empty(len(classes), dtype=float)
        arr = np.array([int(c) for c in classes])
        for cls, profile in self.profiles.items():
            mask = arr == int(cls)
            n = int(mask.sum())
            if n:
                out[mask] = profile.sample(n, rng)
        return out

    def download_for(self, upload_bps: float) -> float:
        """Download capacity implied by an upload capacity."""
        return upload_bps * self.download_factor

    def mean_upload(self, cls: ConnectivityClass) -> float:
        """Expected upload capacity of one class."""
        return self.profiles[cls].mean_bps

    def scaled(self, factor: float) -> "CapacityModel":
        """A model with every tier scaled by ``factor``.

        Used to stress systems into the under-provisioned regime for the
        scalability sweeps (Fig. 9) without changing the *shape* of the
        distribution.
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        scaled = {
            cls: CapacityProfile(
                uploads_bps=tuple(u * factor for u in p.uploads_bps),
                probabilities=tuple(p.probabilities),
            )
            for cls, p in self.profiles.items()
        }
        return CapacityModel(profiles=scaled, download_factor=self.download_factor)
