"""Connectivity classes and the partnership-direction rule.

Section V.B of the paper classifies users by observing (address type,
partnership directions):

* *Direct-connect*: public address, incoming + outgoing partners;
* *UPnP*: private address but explicitly acquired a public mapping, so
  behaves like direct-connect (incoming + outgoing);
* *NAT*: private address, only outgoing partners;
* *Firewall*: public address, only outgoing partners.

The operative rule for overlay formation is therefore: a peer can *initiate*
a partnership to anybody it knows about, but only direct-connect and UPnP
peers can *accept* an incoming partnership request.  Once any partnership
exists, data can flow in either direction over it (the paper: "a NAT or
firewall user can become the parent for another node").

``nat_traversal_prob`` optionally lets a NAT-to-NAT establishment succeed
with small probability, modelling hole punching; the paper observes such
"random links" exist but are rare.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping, Optional

import numpy as np

__all__ = [
    "ConnectivityClass",
    "ConnectivityMix",
    "can_accept_incoming",
    "can_establish",
]


class ConnectivityClass(enum.IntEnum):
    """The four user types of Section V.B (plus servers/source)."""

    DIRECT = 0
    UPNP = 1
    NAT = 2
    FIREWALL = 3
    SERVER = 4  # dedicated servers / source: publicly reachable by design

    @property
    def has_public_address(self) -> bool:
        """Whether peers of this class expose a public IP."""
        return self in (ConnectivityClass.DIRECT, ConnectivityClass.FIREWALL,
                        ConnectivityClass.SERVER)

    @property
    def accepts_incoming(self) -> bool:
        """Whether this class accepts incoming partnerships."""
        return can_accept_incoming(self)

    @property
    def is_contributor_class(self) -> bool:
        """Direct/UPnP: the classes Fig. 3 shows carrying >80% of upload."""
        return self in (ConnectivityClass.DIRECT, ConnectivityClass.UPNP,
                        ConnectivityClass.SERVER)


def can_accept_incoming(cls: ConnectivityClass) -> bool:
    """Whether a peer of class ``cls`` can accept an incoming partnership."""
    return cls in (
        ConnectivityClass.DIRECT,
        ConnectivityClass.UPNP,
        ConnectivityClass.SERVER,
    )


def can_establish(
    initiator: ConnectivityClass,
    target: ConnectivityClass,
    *,
    nat_traversal_prob: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> bool:
    """Whether ``initiator`` can establish a partnership with ``target``.

    The establishment succeeds iff the target accepts incoming connections,
    or (both endpoints being NAT/firewall) a traversal attempt succeeds with
    probability ``nat_traversal_prob``.
    """
    if can_accept_incoming(target):
        return True
    if nat_traversal_prob > 0.0:
        if rng is None:
            raise ValueError("nat_traversal_prob > 0 requires an rng")
        return bool(rng.random() < nat_traversal_prob)
    return False


@dataclass(frozen=True)
class ConnectivityMix:
    """Population mix over connectivity classes.

    Defaults follow the shape of Fig. 3a: roughly 30% of peers are
    contributor-class (direct + UPnP) and ~70% sit behind NAT or firewall.
    """

    fractions: Mapping[ConnectivityClass, float] = field(
        default_factory=lambda: {
            ConnectivityClass.DIRECT: 0.18,
            ConnectivityClass.UPNP: 0.12,
            ConnectivityClass.NAT: 0.55,
            ConnectivityClass.FIREWALL: 0.15,
        }
    )

    def __post_init__(self) -> None:
        total = float(sum(self.fractions.values()))
        if not np.isclose(total, 1.0, atol=1e-9):
            raise ValueError(f"class fractions must sum to 1 (got {total})")
        if any(f < 0 for f in self.fractions.values()):
            raise ValueError("class fractions must be non-negative")
        if ConnectivityClass.SERVER in self.fractions:
            raise ValueError("SERVER is not a samplable user class")

    @property
    def classes(self) -> list[ConnectivityClass]:
        """The classes present in the mix."""
        return list(self.fractions.keys())

    @property
    def contributor_fraction(self) -> float:
        """Fraction of peers in direct/UPnP classes (Fig. 3's ~30%)."""
        return sum(
            f for c, f in self.fractions.items() if c.is_contributor_class
        )

    def sample(self, rng: np.random.Generator) -> ConnectivityClass:
        """Draw one class."""
        return self.sample_many(1, rng)[0]

    def sample_many(
        self, n: int, rng: np.random.Generator
    ) -> list[ConnectivityClass]:
        """Draw ``n`` classes i.i.d. from the mix."""
        classes = self.classes
        probs = np.array([self.fractions[c] for c in classes], dtype=float)
        idx = rng.choice(len(classes), size=int(n), p=probs)
        return [classes[i] for i in idx]
