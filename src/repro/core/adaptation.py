"""Peer adaptation rules: Inequalities (1) and (2) and the cool-down timer.

Section IV.B defines two monitoring conditions for node ``A``.  With all
sequence arithmetic in sub-stream-local block indices (1 block = 1 second):

* **Inequality (1)** (out-of-synchronization, threshold ``T_s``): the
  sub-stream served by parent ``p`` must not lag the most advanced
  sub-stream at ``A`` by ``T_s`` or more.  A violation signals congestion
  or insufficient upload capacity at the parent.

* **Inequality (2)** (lagging parent, threshold ``T_p``): the parent's own
  head on the sub-stream must not lag the most advanced head among *all*
  partners by ``T_p`` or more.  A violation signals that a better-supplied
  partner exists.

Adaptation (re-selecting a parent) is allowed at most once per cool-down
period ``T_a`` (Section IV.B's chain-reaction damper).  A *qualified* new
parent must itself satisfy both inequalities at selection time; among
qualified candidates the deployed system picks uniformly at random (the
``best`` policy is the ablation variant).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.partnership import PartnerState

__all__ = [
    "AdaptationConfig",
    "CooldownTimer",
    "substream_lag",
    "inequality1_ok",
    "inequality2_ok",
    "qualified_parents",
    "choose_parent",
]


@dataclass(frozen=True)
class AdaptationConfig:
    """Thresholds in sub-stream-local block units (= seconds)."""

    ts_blocks: float
    tp_blocks: float
    ta_seconds: float
    cooldown_enabled: bool = True
    parent_choice: str = "random"  # "random" | "best"


class CooldownTimer:
    """Confines a node to one adaptation per ``T_a`` (Section IV.B)."""

    def __init__(self, ta_seconds: float, enabled: bool = True) -> None:
        if ta_seconds < 0:
            raise ValueError("T_a must be non-negative")
        self._ta = float(ta_seconds)
        self._enabled = bool(enabled)
        self._last: float = float("-inf")

    @property
    def last_adaptation(self) -> float:
        """Time of the most recent adaptation."""
        return self._last

    def ready(self, now: float) -> bool:
        """Whether an adaptation may be performed now."""
        if not self._enabled:
            return True
        return (now - self._last) >= self._ta

    def fire(self, now: float) -> None:
        """Record that an adaptation was performed."""
        self._last = now


def substream_lag(own_heads: Sequence[int], substream: int) -> int:
    """How far ``substream`` lags the most advanced sub-stream at this node
    (local blocks).  This is the left side of Inequality (1) restricted to
    the monitored sub-stream."""
    return max(own_heads) - own_heads[substream]


def inequality1_ok(own_heads: Sequence[int], substream: int, ts_blocks: float) -> bool:
    """Inequality (1): the monitored sub-stream is within ``T_s`` of the
    most advanced sub-stream at this node."""
    return substream_lag(own_heads, substream) < ts_blocks


def inequality2_ok(
    parent_head_local: int,
    best_partner_head_local: int,
    tp_blocks: float,
) -> bool:
    """Inequality (2): the parent's head on the sub-stream is within ``T_p``
    of the best head among all partners.

    Heads are local indices; ``best_partner_head_local`` is
    ``max_head // K`` of the best partner BM.  An unknown parent head
    (``-1`` = no BM yet) never triggers -- the establishment grace period.
    """
    if parent_head_local < 0 or best_partner_head_local < 0:
        return True
    return (best_partner_head_local - parent_head_local) < tp_blocks


def qualified_parents(
    partners: Sequence[PartnerState],
    substream: int,
    own_head: int,
    best_partner_head_local: int,
    tp_blocks: float,
    geometry,
    exclude: Sequence[int] = (),
    cache_window: Optional[int] = None,
) -> List[PartnerState]:
    """Partners qualified to become the parent of ``substream``.

    A candidate must (per Section IV.B's "the selected partner must satisfy
    the two inequalities"):

    * have reported a BM (we know its heads);
    * be at least as advanced as us on the sub-stream (it can supply the
      next block we need);
    * still hold our next needed block in its cache window, when
      ``cache_window`` is given;
    * satisfy Inequality (2) as a parent: its head within ``T_p`` of the
      best partner head.
    """
    excl = set(exclude)
    out: List[PartnerState] = []
    for state in partners:
        if state.node_id in excl or state.bm is None:
            continue
        head = state.bm.head_local(substream, geometry)
        if head < own_head:
            continue
        if not inequality2_ok(head, best_partner_head_local, tp_blocks):
            continue
        if cache_window is not None and own_head + 1 < head - cache_window + 1:
            # our next needed block has already left the candidate's cache
            continue
        out.append(state)
    return out


def choose_parent(
    candidates: Sequence[PartnerState],
    substream: int,
    geometry,
    rng: np.random.Generator,
    policy: str = "random",
) -> Optional[PartnerState]:
    """Pick the new parent among qualified candidates.

    ``random`` is the deployed policy ("the peer will choose one of them
    randomly"); ``best`` picks the most advanced head and is used by the
    ablation benchmark to quantify what randomness costs/buys.
    """
    if not candidates:
        return None
    if policy == "random":
        return candidates[int(rng.integers(len(candidates)))]
    if policy == "best":
        return max(
            candidates, key=lambda s: (s.bm.head_local(substream, geometry), -s.node_id)
        )
    raise ValueError(f"unknown parent choice policy {policy!r}")
