"""Partnership manager: partner state, direction bookkeeping and BM views.

A *partnership* is a long-lived control relation (a TCP connection in the
deployed system) over which two peers exchange buffer maps and gossip.  It
is distinct from the *parent-child* relation: parents are always a subset
of partners (Section III.B).

Direction matters for the measurement study: Section V.B classifies users
by whether they ever obtain *incoming* partners, so every partnership
records who initiated it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.buffer import BufferMap
from repro.core.membership import MCacheEntry

__all__ = ["Direction", "PartnerState", "PartnershipManager"]


class Direction(str, enum.Enum):
    """Who initiated the partnership, from this node's point of view."""

    OUTGOING = "out"  # we initiated
    INCOMING = "in"   # the partner initiated


@dataclass
class PartnerState:
    """Everything this node knows about one partner."""

    node_id: int
    direction: Direction
    established_at: float
    entry: Optional[MCacheEntry] = None
    bm: Optional[BufferMap] = None
    last_bm_time: float = field(default=-1.0)

    def update_bm(self, bm: BufferMap, now: float) -> None:
        """Store a freshly received buffer map."""
        self.bm = bm
        self.last_bm_time = now

    def bm_age(self, now: float) -> float:
        """Seconds since the last BM was heard (inf if never)."""
        if self.last_bm_time < 0:
            return float("inf")
        return now - self.last_bm_time


class PartnershipManager:
    """Bounded set of partnerships with direction and BM bookkeeping."""

    def __init__(self, owner_id: int, max_partners: int) -> None:
        if max_partners < 1:
            raise ValueError("max_partners must be >= 1")
        self._owner = owner_id
        self._max = int(max_partners)
        self._partners: Dict[int, PartnerState] = {}
        # counters feeding the Section V.B classifier
        self.total_incoming_ever = 0
        self.total_outgoing_ever = 0

    # --- introspection ------------------------------------------------------
    @property
    def max_partners(self) -> int:
        """The partnership bound M."""
        return self._max

    def __len__(self) -> int:
        return len(self._partners)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._partners

    def get(self, node_id: int) -> Optional[PartnerState]:
        """Look up by id (None when absent)."""
        return self._partners.get(node_id)

    def ids(self) -> List[int]:
        """Ids currently stored, in insertion order."""
        return list(self._partners.keys())

    def states(self) -> List[PartnerState]:
        """All stored states, in insertion order."""
        return list(self._partners.values())

    @property
    def is_full(self) -> bool:
        """Whether the partner set reached M."""
        return len(self._partners) >= self._max

    def has_incoming(self) -> bool:
        """Whether this node ever held an incoming partnership -- the
        observable that classifies it as direct/UPnP in Section V.B."""
        return self.total_incoming_ever > 0

    # --- mutation ---------------------------------------------------------------
    def add(
        self,
        node_id: int,
        direction: Direction,
        now: float,
        entry: Optional[MCacheEntry] = None,
    ) -> PartnerState:
        """Register a partnership.  Raises if full or duplicate or self."""
        if node_id == self._owner:
            raise ValueError("cannot partner with self")
        if node_id in self._partners:
            raise ValueError(f"already partnered with {node_id}")
        if self.is_full:
            raise OverflowError("partner set full")
        state = PartnerState(
            node_id=node_id, direction=direction, established_at=now, entry=entry
        )
        self._partners[node_id] = state
        if direction is Direction.INCOMING:
            self.total_incoming_ever += 1
        else:
            self.total_outgoing_ever += 1
        return state

    def remove(self, node_id: int) -> Optional[PartnerState]:
        """Drop a partnership; returns the removed state (None if absent)."""
        return self._partners.pop(node_id, None)

    # --- BM views ------------------------------------------------------------
    def record_bm(self, node_id: int, bm: BufferMap, now: float) -> bool:
        """Store a received buffer map; returns False for unknown partners
        (late messages after a drop are silently discarded, as TCP teardown
        would have done)."""
        state = self._partners.get(node_id)
        if state is None:
            return False
        # inlined update_bm: this runs once per partner per BM exchange
        state.bm = bm
        state.last_bm_time = now
        return True

    def best_partner_head(self) -> int:
        """``max{H_{S_i,q} : i <= K, q in partners}`` -- the left side of
        Inequality (2): the most advanced global head over all partners'
        sub-streams.  -1 if no BM has been heard yet."""
        best = -1
        for state in self._partners.values():
            bm = state.bm
            if bm is not None:
                h = bm.max_head
                if h > best:
                    best = h
        return best

    def partners_with_bm(self) -> List[PartnerState]:
        """Partners whose buffer map has been heard."""
        return [s for s in self._partners.values() if s.bm is not None]

    def stale_partners(self, now: float, timeout_s: float) -> List[int]:
        """Partners whose BM is older than ``timeout_s`` *and* that have been
        established long enough to have reported one -- the churn detector."""
        out = []
        for state in self._partners.values():
            if now - state.established_at < timeout_s:
                continue
            # inlined bm_age: never-heard (last_bm_time < 0) is infinitely old
            t = state.last_bm_time
            if t < 0 or now - t > timeout_s:
                out.append(state.node_id)
        return out
