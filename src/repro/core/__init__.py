"""Reference implementation of the Coolstreaming protocol (Sections III-IV).

The package mirrors Fig. 1 of the paper:

* :mod:`repro.core.membership` -- membership manager (mCache + gossip).
* :mod:`repro.core.partnership` -- partnership manager (TCP-partnerships,
  buffer-map exchange, incoming/outgoing direction bookkeeping).
* :mod:`repro.core.stream` -- stream manager (sub-stream subscription,
  parent selection, push delivery, playback).
* :mod:`repro.core.buffer` -- synchronization buffer, cache buffer and the
  2K-tuple buffer map of Fig. 2.
* :mod:`repro.core.adaptation` -- Inequalities (1)/(2), cool-down timer.
* :mod:`repro.core.node` / :mod:`repro.core.source` -- peer node, source,
  dedicated servers and the bootstrap node.
* :mod:`repro.core.system` -- wires a whole system together on one engine.
* :mod:`repro.core.config` -- Table I parameters.
"""

from repro.core.config import SystemConfig
from repro.core.blocks import StreamGeometry
from repro.core.buffer import BufferMap, CacheBuffer, SyncBuffer
from repro.core.membership import MCache, MCacheEntry, ReplacementPolicy
from repro.core.multichannel import MultiChannelDeployment
from repro.core.node import PeerNode, SessionOutcome
from repro.core.pull import PullRequest, PullRequester, PullScheduler
from repro.core.source import BootstrapNode, DedicatedServer, SourceNode
from repro.core.system import CoolstreamingSystem

__all__ = [
    "SystemConfig",
    "StreamGeometry",
    "BufferMap",
    "CacheBuffer",
    "SyncBuffer",
    "MCache",
    "MCacheEntry",
    "ReplacementPolicy",
    "MultiChannelDeployment",
    "PeerNode",
    "SessionOutcome",
    "PullRequest",
    "PullRequester",
    "PullScheduler",
    "BootstrapNode",
    "DedicatedServer",
    "SourceNode",
    "CoolstreamingSystem",
]
