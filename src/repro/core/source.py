"""Source node, dedicated servers and the boot-strap node.

Deployment as measured (Section V.A): "The source sends video streams to
the servers, which are collectively responsible for streaming the video to
peers."  Peers never talk to the source directly; they learn server
addresses from the boot-strap node and treat servers as ordinary (very
capable, always-on) partners.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.core.buffer import BufferMap, SyncBuffer
from repro.core.membership import MCacheEntry
from repro.core.node import NodeState, PeerNode
from repro.core.stream import SubscriptionConn, UploadScheduler
from repro.network.connectivity import ConnectivityClass
from repro.sim.engine import PeriodicTask

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import CoolstreamingSystem

__all__ = ["SourceNode", "DedicatedServer", "BootstrapNode"]

SOURCE_ID = 0
BOOTSTRAP_ID = -1
LOGSERVER_ID = -2


class SourceNode:
    """The stream origin.

    Generates each sub-stream at one block per second from stream start and
    pushes to its direct children (the dedicated servers).  It exposes just
    enough of the node RPC surface to act as a parent.
    """

    is_server = True
    is_source = True
    connectivity = ConnectivityClass.SERVER
    alive = True

    def __init__(self, system: "CoolstreamingSystem") -> None:
        self.system = system
        self.cfg = system.cfg
        self.engine = system.engine
        self.node_id = SOURCE_ID
        self.stream_start = self.engine.now
        self.upload_bps = self.cfg.source_upload_bps
        self.scheduler = UploadScheduler(
            self.upload_bps, self.cfg.substream_rate_bps, self.cfg.block_bits
        )
        self._children: List[int] = []
        self._last_delivery = self.engine.now
        system.latency.register(self.node_id, system.rng.stream("latency"))
        self._task = PeriodicTask(
            self.engine, self.cfg.delivery_interval_s, self._delivery_tick,
            first_delay=self.cfg.delivery_interval_s,
        )

    # --- stream production ------------------------------------------------
    @property
    def heads(self) -> List[int]:
        """Contiguous local head per sub-stream: the live edge."""
        edge = self.system.geometry.live_edge_local(self.engine.now - self.stream_start)
        return [edge] * self.cfg.n_substreams

    def _own_bm(self) -> BufferMap:
        return BufferMap.from_local_heads(self.heads, self.system.geometry)

    # --- parent RPC surface ---------------------------------------------------
    def rpc_subscribe(self, child_id: int, substream: int, from_index: int) -> None:
        """A child subscribes to one of our sub-streams."""
        child = self.system.get_node(child_id)
        if child is None or not getattr(child, "is_server", False):
            return  # only dedicated servers may pull from the source
        self.scheduler.subscribe(child_id, substream, from_index, self.engine.now)
        if child_id not in self._children:
            self._children.append(child_id)

    def rpc_unsubscribe(self, child_id: int, substream: int) -> None:
        """A child stops pulling one of our sub-streams."""
        self.scheduler.unsubscribe(child_id, substream)

    def rpc_partner_close(self, from_id: int) -> None:
        """A partner closed the partnership."""
        self.scheduler.drop_child(from_id)
        if from_id in self._children:
            self._children.remove(from_id)

    def _push(self, conn: SubscriptionConn, first: int, last: int) -> None:
        child = self.system.get_node(conn.child_id)
        if child is None or not child.alive:
            self.scheduler.drop_child(conn.child_id)
            return
        child.deliver_blocks(self.node_id, conn.substream, first, last)

    def _delivery_tick(self) -> None:
        now = self.engine.now
        dt = now - self._last_delivery
        self._last_delivery = now
        if dt <= 0:
            return
        heads = self.heads
        if self.scheduler.substream_degree:
            self.scheduler.deliver(
                dt, heads, int(self.cfg.buffer_seconds), self._push,
            )
        # keep the servers' view of our buffer fresh
        bm = self._own_bm()
        for child_id in self._children:
            child = self.system.get_node(child_id)
            if child is not None and child.alive:
                child.rpc_bm_update(self.node_id, bm)


class DedicatedServer(PeerNode):
    """A dedicated streaming server (one of the paper's 24 x 100 Mbps).

    Behaves as a peer with server-class connectivity and capacity, except
    that it (a) pulls every sub-stream straight from the source, (b) never
    plays back, never loses patience and never leaves, and (c) does not
    report to the log server (server traffic is infrastructure, not user
    telemetry).
    """

    is_server = True

    def __init__(self, system: "CoolstreamingSystem", node_id: int) -> None:
        super().__init__(
            system,
            node_id=node_id,
            user_id=-node_id,
            session_id=-node_id,
            attempt=1,
            connectivity=ConnectivityClass.SERVER,
            upload_bps=system.cfg.server_upload_bps,
        )

    def _max_partners(self) -> int:
        return self.cfg.server_max_partners

    def start(self) -> None:
        """Attach to the source and begin relaying immediately."""
        now = self.engine.now
        self.joined_at = now
        self.state = NodeState.PLAYING  # servers are always "up"; no buffering
        self.system.latency.register(self.node_id, self.system.rng.stream("latency"))
        self.system.bootstrap.register(self.self_entry())
        # full stream from the origin
        k = self.cfg.n_substreams
        source = self.system.source
        start = max(0, min(source.heads))
        self.start_index = start
        self.sync = [SyncBuffer(start) for _ in range(k)]
        self.heads = [start - 1] * k
        self.playback = None  # servers do not play back
        for sub in range(k):
            self.parents[sub] = SOURCE_ID
            source.rpc_subscribe(self.node_id, sub, start)
        self._start_tasks()

    def _control_tick(self) -> None:  # pragma: no cover - thin override
        if not self.alive:
            return
        self._control_ticks += 1
        for pid in self.partners.stale_partners(self.engine.now, self._stale_timeout):
            self._drop_partner(pid, notify=False)
        self._broadcast_bm()
        if self._control_ticks % self._gossip_every == 0:
            self._gossip()

    def _maybe_player_ready(self) -> None:
        return  # nothing to get ready

    def _drop_partner(self, partner_id: int, *, notify: bool) -> None:
        if partner_id == SOURCE_ID:
            return  # the source is not droppable
        super()._drop_partner(partner_id, notify=notify)


class BootstrapNode:
    """Tracks active nodes and hands newcomers an initial peer list.

    The returned list is a uniform random sample of the active population,
    always topped up with at least one dedicated server so a joiner in an
    empty or NAT-saturated overlay still has a reachable first partner --
    mirroring the deployed web-server redirection to the server fleet.
    """

    node_id = BOOTSTRAP_ID

    def __init__(self, system: "CoolstreamingSystem", *, min_servers_in_reply: int = 1) -> None:
        self.system = system
        self._registry: Dict[int, MCacheEntry] = {}
        self._server_ids: List[int] = []
        self._min_servers = int(min_servers_in_reply)
        self.join_count = 0
        self.leave_count = 0
        system.latency.register(self.node_id, system.rng.stream("latency"))

    # --- registry ---------------------------------------------------------
    def register(self, entry: MCacheEntry) -> None:
        """Record a node as active."""
        self._registry[entry.node_id] = entry
        if entry.connectivity is ConnectivityClass.SERVER:
            if entry.node_id not in self._server_ids:
                self._server_ids.append(entry.node_id)
        else:
            self.join_count += 1

    def unregister(self, node_id: int) -> None:
        """Forget a node.  Idempotent."""
        if self._registry.pop(node_id, None) is not None:
            if node_id in self._server_ids:
                self._server_ids.remove(node_id)
            else:
                self.leave_count += 1

    @property
    def active_count(self) -> int:
        """Number of currently registered nodes."""
        return len(self._registry)

    # --- the join RPC -------------------------------------------------------
    def request_list(self, node: PeerNode) -> None:
        """Serve a joiner its initial node list after one round trip."""
        rtt = self.system.latency.rtt(self.node_id, node.node_id)
        self.system.engine.schedule(rtt, lambda: self._reply(node))

    def _reply(self, node: PeerNode) -> None:
        if not node.alive:
            return
        node.on_bootstrap_reply(self.sample_for(node.node_id))

    def sample_for(self, requester_id: int) -> List[MCacheEntry]:
        """Random peer list for a joining node."""
        rng = self.system.rng.stream("bootstrap")
        n = self.system.cfg.bootstrap_sample
        pool = [e for nid, e in self._registry.items() if nid != requester_id]
        if not pool:
            return []
        take = min(n, len(pool))
        idx = rng.choice(len(pool), size=take, replace=False)
        sample = [pool[i] for i in idx]
        # guarantee server presence
        have_servers = sum(
            1 for e in sample if e.connectivity is ConnectivityClass.SERVER
        )
        if have_servers < self._min_servers and self._server_ids:
            k = min(self._min_servers - have_servers, len(self._server_ids))
            picks = rng.choice(len(self._server_ids), size=k, replace=False)
            extra = [self._registry[self._server_ids[i]] for i in picks]
            sample = extra + sample[: max(0, n - len(extra))]
        return sample
