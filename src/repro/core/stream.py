"""Stream manager: push delivery, upload sharing, playback and continuity.

**Parent side** (:class:`UploadScheduler`): a parent holds one
:class:`SubscriptionConn` per (child, sub-stream).  Once per delivery
quantum it water-fills its upload capacity over the connections' demands
(a caught-up child only consumes the live sub-stream rate; a lagging child
absorbs surplus -- Eq. 3's catch-up) and pushes the resulting *interval* of
blocks to each child.  No per-block Python objects exist anywhere: the hot
path moves ``(first, last)`` index ranges, per the HPC guide's
"no per-element work in inner loops" rule.

**Child side** (:class:`PlaybackState`): tracks the playout pointer, the
blocks that missed their deadline, and the resulting continuity index --
"the number of blocks that arrive before playback deadlines over the total
number of blocks" (Section V.D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.network.fairshare import _SMALL_N, _waterfill_py, waterfill_rates

__all__ = ["SubscriptionConn", "UploadScheduler", "PlaybackState", "Hole"]

# A lagging child's demand cap, in multiples of the nominal sub-stream rate.
# Models the finite ramp of a single TCP connection: catch-up is fast but a
# single connection cannot absorb a server's whole 100 Mbps.
CATCHUP_DEMAND_FACTOR = 12.0


@dataclass(slots=True)
class SubscriptionConn:
    """Parent-side state of one pushed sub-stream.

    ``next_index`` is the next local block index owed to the child;
    ``credit`` accumulates fractional blocks between quanta so that rates
    below one block per quantum still deliver correctly over time.
    Slotted: a busy parent touches every connection every delivery quantum,
    and slot access is measurably cheaper than dict-backed attributes.
    """

    child_id: int
    substream: int
    next_index: int
    credit: float = 0.0
    blocks_sent: int = 0
    started_at: float = 0.0

    def lag_behind(self, parent_head: int) -> int:
        """How many deliverable blocks the child is behind the parent."""
        return max(0, parent_head - self.next_index + 1)


class UploadScheduler:
    """Water-filled push scheduler for one parent node.

    Parameters
    ----------
    upload_bps:
        The parent's total upload capacity.
    substream_rate_bps:
        Nominal rate of one sub-stream (R/K).
    block_bits:
        Bits per block (one second of one sub-stream).
    """

    def __init__(self, upload_bps: float, substream_rate_bps: float,
                 block_bits: float) -> None:
        if upload_bps < 0:
            raise ValueError("upload capacity must be non-negative")
        if substream_rate_bps <= 0 or block_bits <= 0:
            raise ValueError("rates must be positive")
        self.upload_bps = float(upload_bps)
        self._sub_rate = float(substream_rate_bps)
        self._block_bits = float(block_bits)
        # hoisted out of the per-quantum demand loop
        self._catchup_demand = self._sub_rate * CATCHUP_DEMAND_FACTOR
        self._conns: Dict[Tuple[int, int], SubscriptionConn] = {}
        self.bits_uploaded = 0.0
        # observability: whether the last delivery quantum was demand-
        # constrained (the water-fill ran).  A plain flag so the obs layer
        # can count saturation without touching this hot loop.
        self.last_saturated = False

    # --- subscription management ------------------------------------------
    def subscribe(self, child_id: int, substream: int, from_index: int,
                  now: float) -> SubscriptionConn:
        """Open (or re-point) the connection pushing ``substream`` to
        ``child_id`` starting at local block ``from_index``.

        A parent "will always accept requests and ... simply push out all
        blocks of a sub-stream in need" (Section IV.B) -- no admission
        control happens here; competition is resolved by the water-filling.
        """
        key = (child_id, substream)
        conn = SubscriptionConn(
            child_id=child_id, substream=substream,
            next_index=max(0, int(from_index)), started_at=now,
        )
        self._conns[key] = conn
        return conn

    def unsubscribe(self, child_id: int, substream: int) -> Optional[SubscriptionConn]:
        """Close one pushed sub-stream connection."""
        return self._conns.pop((child_id, substream), None)

    def drop_child(self, child_id: int) -> List[SubscriptionConn]:
        """Remove every connection towards ``child_id`` (departure/churn)."""
        keys = [k for k in self._conns if k[0] == child_id]
        return [self._conns.pop(k) for k in keys]

    def connections(self) -> List[SubscriptionConn]:
        """All live connections."""
        return list(self._conns.values())

    def children(self) -> set[int]:
        """Ids of children currently served."""
        return {child for (child, _s) in self._conns}

    @property
    def substream_degree(self) -> int:
        """``D_p``: the out-going sub-stream degree of this parent."""
        return len(self._conns)

    def degree_for_substream(self, substream: int) -> int:
        """Out-degree restricted to one sub-stream."""
        return sum(1 for (_c, s) in self._conns if s == substream)

    # --- the delivery quantum -------------------------------------------------
    def deliver(
        self,
        dt: float,
        parent_heads: List[int],
        window: int,
        push: Callable[[SubscriptionConn, int, int], None],
    ) -> float:
        """Run one delivery quantum of length ``dt`` seconds.

        ``parent_heads[s]`` is this parent's own contiguous head on
        sub-stream ``s``; ``window`` is the parent's cache window in blocks
        (the floor of deliverable indices is ``head - window + 1``);
        ``push(conn, first, last)`` delivers the block interval to the
        child (and must update the child).  Returns bits uploaded.

        A child whose ``next_index`` has fallen out of the cache window is
        fast-forwarded to the window floor -- the child will observe the
        hole via its sync buffer, exactly like the deployed system where
        playout pushed the blocks out of the parent's buffer (Section IV.A).
        """
        conns_map = self._conns
        if not conns_map:
            return 0.0
        conns = list(conns_map.values())
        sub_rate = self._sub_rate
        catchup = self._catchup_demand
        window = int(window)
        demands = []
        append = demands.append
        heads = []  # per-conn head, so the push loop skips the re-lookup
        happend = heads.append
        total = 0.0
        for conn in conns:
            head = parent_heads[conn.substream]
            happend(head)
            if head < 0:
                append(0.0)
                continue
            floor = head - window + 1
            if 0 < floor and conn.next_index < floor:
                conn.next_index = floor  # blocks lost to the sliding window
            d = catchup if conn.next_index <= head else sub_rate
            append(d)
            total += d
        # fast path: an under-loaded parent satisfies every demand -- no
        # need for the O(n log n) waterfill (the common case for servers
        # and for contributor peers most of the time)
        if total <= self.upload_bps:
            rates = demands
            self.last_saturated = False
        else:
            # demands are non-negative by construction: call the fill
            # directly and skip waterfill_rates' validation pass
            if len(demands) <= _SMALL_N:
                rates = _waterfill_py(self.upload_bps, demands)
            else:
                rates = waterfill_rates(self.upload_bps, demands)
            self.last_saturated = True
        block_bits = self._block_bits
        bits_this_quantum = 0.0
        for conn, rate, head in zip(conns, rates, heads):
            if head < 0:
                continue
            credit = conn.credit + rate * dt / block_bits
            n = int(credit)
            if n > 0:
                deliverable = head - conn.next_index + 1
                if n > deliverable:
                    n = deliverable
                if n > 0:
                    first = conn.next_index
                    conn.next_index = first + n
                    credit -= n
                    conn.blocks_sent += n
                    bits_this_quantum += n * block_bits
                    push(conn, first, first + n - 1)
            # Credit must not bank unboundedly while a child is caught up:
            # unused upload capacity is not storable bandwidth.
            if credit > 2.0:
                credit = 2.0
            conn.credit = credit
        self.bits_uploaded += bits_this_quantum
        return bits_this_quantum


@dataclass
class Hole:
    """A gap of blocks that can never arrive (evicted before subscription)."""

    substream: int
    first: int
    last: int

    @property
    def size(self) -> int:
        """Number of blocks covered."""
        return self.last - self.first + 1


class PlaybackState:
    """Playout pointer plus deadline accounting for the continuity index.

    The player consumes each sub-stream at one block per second starting
    from ``start_index``.  Blocks that were never received when the pointer
    passes them count as missed; the continuity index over a window is
    ``1 - missed / due``.  Holes (blocks skipped because they left a
    parent's cache before we subscribed) are recorded explicitly so they
    are charged as missed even though the contiguous head jumped over them.
    """

    def __init__(self, n_substreams: int, start_index: int) -> None:
        if start_index < 0:
            raise ValueError("start_index must be non-negative")
        self.k = int(n_substreams)
        self.start_index = int(start_index)
        self.position = float(start_index)  # local-block playout pointer
        self.playing = False
        self.started_at: Optional[float] = None
        self.blocks_due = 0
        self.blocks_missed = 0
        self._window_due = 0
        self._window_missed = 0
        self._watch_due = 0
        self._watch_missed = 0
        self._holes: List[Hole] = []

    def start(self, now: float) -> None:
        """Start of the contiguous range."""
        self.playing = True
        self.started_at = now

    def add_hole(self, substream: int, first: int, last: int) -> None:
        """Record a gap of permanently missing blocks."""
        if last >= first and last >= self.position:
            self._holes.append(Hole(substream, first, last))

    # ------------------------------------------------------------------
    def advance(self, dt: float, heads: List[int]) -> Tuple[int, int]:
        """Advance playout by ``dt`` seconds against current contiguous
        ``heads`` (local index per sub-stream).  Returns (due, missed) for
        this step."""
        if not self.playing or dt <= 0:
            return (0, 0)
        prev = self.position
        self.position = prev + dt
        lo = int(prev)          # first index whose deadline falls in (prev, now]
        hi = int(self.position)  # exclusive upper bound
        if hi <= lo:
            return (0, 0)
        # indices lo..hi-1 are due on every sub-stream
        due = (hi - lo) * self.k
        missed = 0
        for h in heads:
            # missed = due indices beyond the contiguous head
            first_missing = h + 1
            if first_missing < lo:
                first_missing = lo
            if first_missing < hi:
                missed += hi - first_missing
        # holes are *within* the contiguous range, so add them on top
        if self._holes:
            survivors: List[Hole] = []
            for hole in self._holes:
                overlap_lo = max(hole.first, lo)
                overlap_hi = min(hole.last, hi - 1)
                if overlap_hi >= overlap_lo:
                    missed += overlap_hi - overlap_lo + 1
                if hole.last >= hi:
                    survivors.append(hole)
            self._holes = survivors
        self.blocks_due += due
        self.blocks_missed += missed
        self._window_due += due
        self._window_missed += missed
        self._watch_due += due
        self._watch_missed += missed
        return (due, missed)

    # ------------------------------------------------------------------
    @property
    def continuity_index(self) -> float:
        """Lifetime continuity index (1.0 when nothing was ever due)."""
        if self.blocks_due == 0:
            return 1.0
        return 1.0 - self.blocks_missed / self.blocks_due

    def window_continuity(self, reset: bool = True) -> Optional[float]:
        """Continuity since the last call (the 5-minute QoS report value).

        Returns None when no blocks came due in the window (e.g. the node
        joined seconds ago) -- the deployed log simply lacks a QoS number
        in that case.
        """
        if self._window_due == 0:
            return None
        value = 1.0 - self._window_missed / self._window_due
        if reset:
            self._window_due = 0
            self._window_missed = 0
        return value

    def watchdog_continuity(self, reset: bool = True) -> Optional[float]:
        """Continuity since the last watchdog check -- the short-horizon
        signal the client uses to decide the stream became unwatchable.
        Independent of the 5-minute report window, so draining one never
        blinds the other."""
        if self._watch_due == 0:
            return None
        value = 1.0 - self._watch_missed / self._watch_due
        if reset:
            self._watch_due = 0
            self._watch_missed = 0
        return value

    def buffered_seconds(self, heads: List[int]) -> float:
        """Contiguous playable seconds ahead of the playout pointer."""
        combined = min(heads) + 1  # combination process: min over sub-streams
        return max(0.0, combined - self.position)
