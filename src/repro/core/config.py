"""System parameters (Table I of the paper) plus engine knobs.

Table I:

====  =========================================================
R     bit rate of the live video stream
K     number of sub-streams
B     length of a peer's buffer in units of time
T_s   out-of-synchronization threshold (max deviation between
      sub-streams)
T_p   maximum allowable latency for a partner behind others
T_a   period within which a peer re-selects a parent at most once
D_p   out-going sub-stream degree of node p (state, not a knob)
====  =========================================================

Internally all sequence arithmetic is done in *sub-stream-local block
indices*: one block carries exactly one second of one sub-stream, so a
local index difference is directly a time difference in seconds and the
thresholds below are expressed in seconds.  :class:`repro.core.blocks.
StreamGeometry` converts to and from the on-the-wire global sequence
numbers of Fig. 2.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

__all__ = ["SystemConfig"]


@dataclass(frozen=True)
class SystemConfig:
    """All protocol and engine parameters.

    The defaults correspond to the measured deployment where the paper
    gives numbers (R = 768 kbps, 5-minute status reports, 24 servers at
    100 Mbps) and to sensible DONet-lineage values elsewhere.
    """

    # --- Table I -------------------------------------------------------
    stream_rate_bps: float = 768_000.0  # R: TV-quality rate used in Sec. V
    n_substreams: int = 4               # K
    buffer_seconds: float = 60.0        # B: cache-buffer span per peer
    ts_seconds: float = 10.0            # T_s: out-of-sync threshold
    tp_seconds: float = 15.0            # T_p: partner-lag threshold & join offset
    ta_seconds: float = 20.0            # T_a: adaptation cool-down period

    # --- membership / partnership ---------------------------------------
    max_partners: int = 8               # M: upper bound on partnerships
    target_partners: int = 5            # partnerships a node tries to hold
    mcache_size: int = 32               # partial-view size
    gossip_period_s: float = 10.0       # mCache exchange period
    gossip_fanout: int = 4              # entries shipped per gossip message
    bootstrap_sample: int = 8           # nodes returned by the boot-strap
    bm_exchange_period_s: float = 2.0   # buffer-map exchange period

    # --- delivery / playback --------------------------------------------
    delivery_mode: str = "push"         # "push" (the measured system) |
                                        # "pull" (the DONet [3] baseline)
    delivery_interval_s: float = 1.0    # parent push scheduling quantum
    pull_horizon_s: float = 8.0         # pull: request window per round
    pull_timeout_s: float = 4.0         # pull: re-request after this long
    player_buffer_s: float = 12.0       # contiguous seconds needed for
                                        # "media player ready" (Fig. 6 shows
                                        # a 10-20 s buffering wait)
    playout_delay_s: float = 0.0        # extra startup delay after ready

    # --- user behaviour ---------------------------------------------------
    join_patience_s: float = 45.0       # give up joining after this long
    max_join_retries: int = 5           # re-tries before abandoning (Fig. 10b)
    retry_backoff_s: float = 5.0        # wait between join attempts
    stall_window_s: float = 15.0        # horizon of the unwatchability check
    stall_exit_continuity: float = 0.25  # below this, depart and re-enter
                                         # (Sec. V.D: slow catch-up users
                                         # "simply depart and re-enter")

    # --- telemetry (Section V.A) ------------------------------------------
    status_report_period_s: float = 300.0  # the 5-minute status cadence

    # --- deployment -------------------------------------------------------
    n_servers: int = 24                 # dedicated servers (Sec. V.A)
    server_upload_bps: float = 100_000_000.0
    server_max_partners: int = 64       # servers hold many more partnerships
    source_upload_bps: float = 40_000_000.0  # source feeds the servers only

    # --- ablation switches (DESIGN.md section 5) --------------------------
    initial_offset_mode: str = "tp"     # "tp" (paper: m - T_p) | "latest" | "oldest"
    parent_choice: str = "random"       # "random" (paper) | "best"
    mcache_replacement: str = "random"  # "random" (paper) | "age"
    cooldown_enabled: bool = True       # T_a timer on/off
    nat_traversal_prob: float = 0.02    # rare NAT<->NAT "random links"

    def __post_init__(self) -> None:
        if self.stream_rate_bps <= 0:
            raise ValueError("stream_rate_bps must be positive")
        if self.n_substreams < 1:
            raise ValueError("n_substreams must be >= 1")
        if self.buffer_seconds <= 0:
            raise ValueError("buffer_seconds must be positive")
        if self.ts_seconds <= 0 or self.tp_seconds <= 0:
            raise ValueError("T_s and T_p must be positive")
        if self.ta_seconds < 0:
            raise ValueError("T_a must be non-negative")
        if not (0 < self.target_partners <= self.max_partners):
            raise ValueError("need 0 < target_partners <= max_partners")
        if self.mcache_size < self.bootstrap_sample:
            raise ValueError("mcache_size must hold a bootstrap sample")
        if self.gossip_period_s <= 0 or self.bm_exchange_period_s <= 0:
            raise ValueError("gossip/buffer-map periods must be positive")
        if self.gossip_fanout < 1:
            raise ValueError("gossip_fanout must be >= 1")
        if self.delivery_interval_s <= 0:
            raise ValueError("delivery_interval_s must be positive")
        if self.playout_delay_s < 0:
            raise ValueError("playout_delay_s must be non-negative")
        if self.join_patience_s <= 0:
            raise ValueError("join_patience_s must be positive")
        if self.max_join_retries < 0:
            raise ValueError("max_join_retries must be non-negative")
        if self.retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be non-negative")
        if self.stall_window_s <= 0:
            raise ValueError("stall_window_s must be positive")
        if not (0.0 <= self.stall_exit_continuity <= 1.0):
            raise ValueError("stall_exit_continuity must be a fraction")
        if self.status_report_period_s <= 0:
            raise ValueError("status_report_period_s must be positive")
        if self.n_servers < 0:
            raise ValueError("n_servers must be non-negative")
        if self.server_upload_bps <= 0 or self.source_upload_bps <= 0:
            raise ValueError("server/source upload rates must be positive")
        if self.server_max_partners < 1:
            raise ValueError("server_max_partners must be >= 1")
        if self.player_buffer_s <= 0:
            raise ValueError("player_buffer_s must be positive")
        if self.tp_seconds >= self.buffer_seconds:
            raise ValueError("T_p must be smaller than the buffer span")
        if self.delivery_mode not in ("push", "pull"):
            raise ValueError(f"unknown delivery_mode {self.delivery_mode!r}")
        if self.pull_horizon_s <= 0 or self.pull_timeout_s <= 0:
            raise ValueError("pull parameters must be positive")
        if self.initial_offset_mode not in ("tp", "latest", "oldest"):
            raise ValueError(f"unknown initial_offset_mode {self.initial_offset_mode!r}")
        if self.parent_choice not in ("random", "best"):
            raise ValueError(f"unknown parent_choice {self.parent_choice!r}")
        if self.mcache_replacement not in ("random", "age"):
            raise ValueError(f"unknown mcache_replacement {self.mcache_replacement!r}")
        if not (0.0 <= self.nat_traversal_prob <= 1.0):
            raise ValueError("nat_traversal_prob must be a probability")

    # --- derived quantities ----------------------------------------------
    @property
    def substream_rate_bps(self) -> float:
        """R/K: nominal rate of one sub-stream."""
        return self.stream_rate_bps / self.n_substreams

    @property
    def block_bits(self) -> float:
        """Bits per block: one second of one sub-stream."""
        return self.substream_rate_bps  # 1 s worth by construction

    def upload_slots(self, upload_bps: float) -> float:
        """Upload capacity expressed in sub-stream units (how many full
        sub-streams a node can sustain simultaneously)."""
        return upload_bps / self.substream_rate_bps

    def with_overrides(self, **kwargs: Any) -> "SystemConfig":
        """A copy with the given fields replaced (validation re-runs)."""
        return replace(self, **kwargs)

    def table1(self) -> list[tuple[str, str, str]]:
        """Rows (symbol, meaning, value) reproducing Table I."""
        return [
            ("R", "bit rate of the live video stream",
             f"{self.stream_rate_bps / 1000:.0f} kbps"),
            ("K", "number of sub-streams", str(self.n_substreams)),
            ("B", "length of a peer's buffer (time)",
             f"{self.buffer_seconds:.0f} s"),
            ("T_s", "out-of-synchronization threshold",
             f"{self.ts_seconds:.0f} s"),
            ("T_p", "max allowable latency for a partner behind others",
             f"{self.tp_seconds:.0f} s"),
            ("T_a", "peer re-selection cool-down period",
             f"{self.ta_seconds:.0f} s"),
            ("D_p", "out-going sub-stream degree of node p",
             "run-time state"),
        ]
