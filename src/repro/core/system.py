"""Whole-system wiring: engine + source + servers + bootstrap + peers.

:class:`CoolstreamingSystem` owns the simulation kernel, the network
substrate, the telemetry server and the node registry, and provides the
latency-scheduled RPC fabric over which nodes talk.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.blocks import StreamGeometry
from repro.core.config import SystemConfig
from repro.core.node import NodeState, PeerNode
from repro.core.source import (
    LOGSERVER_ID,
    SOURCE_ID,
    BootstrapNode,
    DedicatedServer,
    SourceNode,
)
from repro.network.capacity import CapacityModel
from repro.network.connectivity import ConnectivityClass, ConnectivityMix
from repro.network.latency import LatencyModel
from repro.obs import context as _obs_context
from repro.sim.engine import Engine
from repro.sim.rng import RngHub
from repro.telemetry.reporter import NodeReporter
from repro.telemetry.server import LogServer

__all__ = ["CoolstreamingSystem", "NullReporter"]


class NullReporter:
    """Reporter stand-in for infrastructure nodes: swallows everything."""

    def __init__(self) -> None:
        self.reports_sent = 0

    def activity(self, *args, **kwargs) -> None:
        """No-op: infrastructure nodes do not report."""
        pass

    def install_status_provider(self, provider) -> None:
        """No-op: infrastructure nodes do not report."""
        pass

    def record_partner_event(self, *args, **kwargs) -> None:
        """No-op: infrastructure nodes do not report."""
        pass

    def drain_partner_events(self) -> tuple:
        """Return and clear buffered partner events."""
        return ()

    def close(self, silent: bool) -> None:
        """Stop reporting."""
        pass


class CoolstreamingSystem:
    """A complete Coolstreaming deployment on one simulation engine.

    Parameters
    ----------
    cfg:
        Protocol and deployment parameters (Table I and friends).
    seed:
        Root seed for every random stream in the run.
    capacity_model, latency_model, connectivity_mix:
        Network substrate; defaults follow DESIGN.md's 2006 calibration.
    log_server:
        Destination for telemetry; a fresh one is created when omitted.
    """

    def __init__(
        self,
        cfg: Optional[SystemConfig] = None,
        *,
        seed: int = 0,
        capacity_model: Optional[CapacityModel] = None,
        latency_model: Optional[LatencyModel] = None,
        connectivity_mix: Optional[ConnectivityMix] = None,
        log_server: Optional[LogServer] = None,
        start_servers: bool = True,
        engine: Optional[Engine] = None,
        rng: Optional[RngHub] = None,
        node_id_base: int = 1000,
        session_id_base: int = 1,
    ) -> None:
        self.cfg = cfg or SystemConfig()
        # engine/rng may be supplied so several systems (e.g. the channels
        # of a multi-channel deployment) share one simulated clock while
        # keeping their random streams independent
        self.engine = engine if engine is not None else Engine()
        self.rng = rng if rng is not None else RngHub(seed)
        self.geometry = StreamGeometry(self.cfg.n_substreams)
        self.latency = latency_model or LatencyModel()
        self.capacity = capacity_model or CapacityModel()
        self.mix = connectivity_mix or ConnectivityMix()
        self.log = log_server or LogServer()

        # observability: record provenance in the active session's manifest
        # and give the progress heartbeat a live-peer-count view
        _ctx = _obs_context.current()
        if _ctx is not None:
            _ctx.note_seed(seed)
            _ctx.note_config(self.cfg)
            if (_ctx.progress is not None
                    and _ctx.progress.live_peers_fn is None):
                _ctx.progress.live_peers_fn = lambda: self.concurrent_users
            if "run.live_peers" not in _ctx.gauge_providers:
                _ctx.register_gauge_provider(
                    "run.live_peers", lambda: self.concurrent_users)

        self._nodes: Dict[int, object] = {}
        # id bases keep node/session ids disjoint across co-hosted systems
        # (multi-channel deployments merge their logs for analysis)
        self._next_node_id = int(node_id_base)
        self._next_session_id = int(session_id_base)
        self.sessions_spawned = 0

        # log-server uplink latency endpoint
        self.latency.register(LOGSERVER_ID, self.rng.stream("latency"))

        self.bootstrap = BootstrapNode(self)
        self.source = SourceNode(self)
        self._nodes[SOURCE_ID] = self.source
        self.servers: List[DedicatedServer] = []
        if start_servers:
            for i in range(self.cfg.n_servers):
                # servers sit just below the peer id range so they stay
                # disjoint across co-hosted channels too
                server = DedicatedServer(self, node_id=node_id_base - 1000 + i + 1)
                self._nodes[server.node_id] = server
                self.servers.append(server)
                server.start()

    # ------------------------------------------------------------------
    # registry & RPC fabric
    # ------------------------------------------------------------------
    def get_node(self, node_id: int):
        """Node object by id (None when unknown)."""
        return self._nodes.get(node_id)

    def rpc(self, src_id: int, dst_id: int, method: str, *args) -> None:
        """Invoke ``method`` on the destination node after one propagation
        delay.  Dropped silently if the destination is gone by then."""
        try:
            delay = self.latency.delay(src_id, dst_id)
        except KeyError:
            delay = self.latency.base_s

        def dispatch() -> None:
            """Deliver the RPC if the destination is still alive."""
            node = self._nodes.get(dst_id)
            if node is None or not getattr(node, "alive", False):
                return
            fn = getattr(node, method, None)
            if fn is not None:
                fn(*args)

        self.engine.schedule(delay, dispatch)

    def make_reporter(self, node: PeerNode):
        """Build the telemetry agent for a node."""
        if node.is_server:
            return NullReporter()
        try:
            uplink = self.latency.delay(node.node_id, LOGSERVER_ID)
        except KeyError:
            uplink = 0.05
        return NodeReporter(
            self.engine,
            self.log,
            node_id=node.node_id,
            user_id=node.user_id,
            session_id=node.session_id,
            uplink_delay_s=uplink,
            status_period_s=self.cfg.status_report_period_s,
            address_public=node.connectivity.has_public_address,
        )

    # ------------------------------------------------------------------
    # population management
    # ------------------------------------------------------------------
    def spawn_peer(
        self,
        *,
        user_id: int,
        attempt: int = 1,
        connectivity: Optional[ConnectivityClass] = None,
        upload_bps: Optional[float] = None,
    ) -> PeerNode:
        """Create and start a new peer session."""
        rng = self.rng.stream("population")
        if connectivity is None:
            connectivity = self.mix.sample(rng)
        if upload_bps is None:
            upload_bps = self.capacity.sample_upload(connectivity, rng)
        node_id = self._next_node_id
        self._next_node_id += 1
        session_id = self._next_session_id
        self._next_session_id += 1
        node = PeerNode(
            self,
            node_id=node_id,
            user_id=user_id,
            session_id=session_id,
            attempt=attempt,
            connectivity=connectivity,
            upload_bps=upload_bps,
        )
        self._nodes[node_id] = node
        self.sessions_spawned += 1
        node.start()
        return node

    def on_node_left(self, node: PeerNode) -> None:
        """Callback from a leaving node: free its network endpoint.  The
        node object stays in the registry (marked dead) so that in-flight
        RPCs resolve and post-run analysis can inspect it."""
        self.latency.unregister(node.node_id)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def peers(self, *, alive_only: bool = True) -> List[PeerNode]:
        """All user peers (never servers or the source)."""
        out = []
        for node in self._nodes.values():
            if isinstance(node, PeerNode) and not node.is_server:
                if not alive_only or node.alive:
                    out.append(node)
        return out

    def all_streaming_nodes(self) -> List[PeerNode]:
        """Servers plus alive user peers (potential parents)."""
        return [
            n for n in self._nodes.values()
            if isinstance(n, PeerNode) and n.alive
        ]

    @property
    def concurrent_users(self) -> int:
        """Alive user peers right now."""
        return sum(
            1 for n in self._nodes.values()
            if isinstance(n, PeerNode) and not n.is_server and n.alive
        )

    def parent_child_edges(self) -> List[Tuple[int, int, int]]:
        """Current (parent, child, substream) edges, servers included."""
        edges = []
        for node in self._nodes.values():
            if isinstance(node, PeerNode) and node.alive:
                for sub, parent in enumerate(node.parents):
                    if parent is not None:
                        edges.append((parent, node.node_id, sub))
        return edges

    def run(self, until: float) -> None:
        """Advance the simulation to absolute time ``until``."""
        self.engine.run(until=until)

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        """Quick aggregate health snapshot (simulator-side, not from logs)."""
        peers = self.peers(alive_only=True)
        playing = [p for p in peers if p.state is NodeState.PLAYING]
        cont = [
            p.playback.continuity_index for p in playing if p.playback is not None
        ]
        return {
            "time": self.engine.now,
            "concurrent_users": float(len(peers)),
            "playing": float(len(playing)),
            "mean_continuity": (sum(cont) / len(cont)) if cont else float("nan"),
            "sessions_spawned": float(self.sessions_spawned),
            "log_entries": float(len(self.log)),
        }
