"""The Coolstreaming peer node.

One :class:`PeerNode` instance is one *session* (join..leave) of one user.
It wires together the three modules of Fig. 1 -- membership manager
(:class:`~repro.core.membership.MCache` + gossip), partnership manager and
stream manager -- plus playback, the adaptation rules of Section IV and
the telemetry agent of Section V.A.

Event economy (this is the hot path at scale): each node runs exactly two
periodic tasks -- a *control tick* (BM exchange, partner maintenance, join
progress, adaptation, patience; default every 2 s) and a *delivery tick*
(push to children + playback accounting; default every 1 s).  Buffer-map
and gossip payloads are applied synchronously (their ~50 ms latency is
negligible against the 2 s exchange period), while the latency-sensitive
RPCs of the join path (bootstrap, partnership establishment, subscription)
go through the engine with real propagation delays, because Fig. 6/7 are
measurements of exactly those delays.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.adaptation import (
    CooldownTimer,
    choose_parent,
    qualified_parents,
)
from repro.core.buffer import BufferMap, CacheBuffer, SyncBuffer
from repro.core.membership import MCache, MCacheEntry, ReplacementPolicy
from repro.core.partnership import Direction, PartnershipManager
from repro.core.pull import PullRequester, PullScheduler
from repro.core.stream import PlaybackState, SubscriptionConn, UploadScheduler
from repro.network.connectivity import ConnectivityClass, can_establish
from repro.obs import context as _obs_context
from repro.obs import inc as _obs_inc
from repro.sim.engine import PeriodicTask
from repro.telemetry.reports import (
    ActivityEvent,
    LeaveReason,
    PartnerOp,
    PartnerReport,
    QoSReport,
    TrafficReport,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import CoolstreamingSystem

__all__ = ["PeerNode", "NodeState", "SessionOutcome"]


class NodeState(str, enum.Enum):
    """Session lifecycle."""

    INIT = "init"
    JOINING = "joining"      # bootstrap contacted, gathering partners/BMs
    BUFFERING = "buffering"  # subscribed, waiting for the player buffer
    PLAYING = "playing"
    LEFT = "left"


class SessionOutcome(str, enum.Enum):
    """How the session ended (simulator-side ground truth)."""

    ACTIVE = "active"
    NORMAL = "normal"
    PROGRAM_END = "program_end"
    IMPATIENT = "impatient"   # never became ready, user gave up
    FAILED = "failed"         # abrupt disconnect


class PeerNode:
    """One session of one peer."""

    is_server = False
    is_source = False

    def __init__(
        self,
        system: "CoolstreamingSystem",
        *,
        node_id: int,
        user_id: int,
        session_id: int,
        attempt: int,
        connectivity: ConnectivityClass,
        upload_bps: float,
    ) -> None:
        self.system = system
        self.cfg = system.cfg
        self.geometry = system.geometry
        self.engine = system.engine
        self.node_id = node_id
        self.user_id = user_id
        self.session_id = session_id
        self.attempt = attempt
        self.connectivity = connectivity
        self.upload_bps = float(upload_bps)

        cfg = self.cfg
        self._state = NodeState.INIT
        # `alive` is a plain attribute kept in sync by the `state` setter
        # rather than a property: it is read on every RPC dispatch and
        # every push, and the descriptor call dominated those paths
        self.alive = True
        self.outcome = SessionOutcome.ACTIVE
        self.joined_at: float = float("nan")
        self.start_subscription_at: Optional[float] = None
        self.player_ready_at: Optional[float] = None
        self.left_at: Optional[float] = None

        self._rng = system.rng.stream(f"node.{node_id}")
        self.mcache = MCache(
            node_id,
            cfg.mcache_size,
            ReplacementPolicy(cfg.mcache_replacement),
        )
        self.partners = PartnershipManager(node_id, self._max_partners())
        self.cooldown = CooldownTimer(cfg.ta_seconds, cfg.cooldown_enabled)
        self.scheduler = UploadScheduler(
            self.upload_bps, cfg.substream_rate_bps, cfg.block_bits
        )
        self.cache = CacheBuffer(int(cfg.buffer_seconds))
        self.pull_mode = cfg.delivery_mode == "pull"
        self.pull_sched: Optional[PullScheduler] = None
        self.pull_req: Optional[PullRequester] = None
        if self.pull_mode:
            self.pull_sched = PullScheduler(
                self.upload_bps, cfg.substream_rate_bps, cfg.block_bits
            )
            self.pull_req = PullRequester(
                cfg.n_substreams,
                horizon_blocks=max(1, int(cfg.pull_horizon_s)),
                timeout_s=cfg.pull_timeout_s,
            )

        k = cfg.n_substreams
        self.sync: Optional[List[SyncBuffer]] = None  # created at offset choice
        self.heads: List[int] = [-1] * k
        self.parents: List[Optional[int]] = [None] * k
        self.playback: Optional[PlaybackState] = None
        self.start_index: Optional[int] = None

        self.bits_downloaded = 0.0
        self._bits_down_reported = 0.0
        self._bits_up_reported = 0.0
        self.adaptation_count = 0
        # workload-layer hook: invoked once when the session ends
        self.on_session_end: Optional[object] = None

        self._pending_partners: Dict[int, float] = {}  # target -> request time
        self._last_bootstrap_contact: float = float("-inf")
        self._last_stall_check: float = float("-inf")
        self._control_task: Optional[PeriodicTask] = None
        self._delivery_task: Optional[PeriodicTask] = None
        self._last_delivery: float = 0.0
        self._control_ticks = 0
        self._gossip_every = max(
            1, round(cfg.gossip_period_s / cfg.bm_exchange_period_s)
        )
        # hot-path caches: these are invariants of the session, hoisted out
        # of per-tick/per-push code (cfg.block_bits is a derived property)
        self._block_bits = float(cfg.block_bits)
        self._cache_window = self.cache.window
        self._stale_timeout = 3.0 * cfg.bm_exchange_period_s + 1.0
        self._node_lookup = system._nodes.get

        self.reporter = system.make_reporter(self)

    # ------------------------------------------------------------------
    # identity helpers
    # ------------------------------------------------------------------
    def _max_partners(self) -> int:
        return self.cfg.max_partners

    def self_entry(self) -> MCacheEntry:
        """This node's own mCache entry, as gossiped to others."""
        return MCacheEntry(
            node_id=self.node_id,
            connectivity=self.connectivity,
            joined_at=self.joined_at,
            last_seen=self.engine.now,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<PeerNode {self.node_id} {self.connectivity.name}"
            f" {self.state.value}>"
        )

    @property
    def state(self) -> NodeState:
        """Session state.  Assigning ``NodeState.LEFT`` (as failure-injection
        harnesses do to simulate a crash) also clears ``alive``; hot paths
        read the backing ``_state``/``alive`` attributes directly."""
        return self._state

    @state.setter
    def state(self, value: NodeState) -> None:
        self._state = value
        self.alive = value is not NodeState.LEFT

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin the session: report JOIN and contact the boot-strap node."""
        if self.state is not NodeState.INIT:
            raise RuntimeError("node already started")
        now = self.engine.now
        self.joined_at = now
        self.state = NodeState.JOINING
        self.system.latency.register(self.node_id, self.system.rng.stream("latency"))
        self.reporter.activity(ActivityEvent.JOIN, attempt=self.attempt)
        _obs_inc("core.sessions_started")
        self.system.bootstrap.register(self.self_entry())
        self._start_tasks()
        self.system.bootstrap.request_list(self)

    def _start_tasks(self) -> None:
        cfg = self.cfg
        jitter_rng = self._rng
        self._control_task = PeriodicTask(
            self.engine,
            cfg.bm_exchange_period_s,
            self._control_tick,
            first_delay=cfg.bm_exchange_period_s * float(jitter_rng.uniform(0.2, 1.0)),
        )
        self._last_delivery = self.engine.now
        self._delivery_task = PeriodicTask(
            self.engine,
            cfg.delivery_interval_s,
            self._delivery_tick,
            first_delay=cfg.delivery_interval_s * float(jitter_rng.uniform(0.2, 1.0)),
        )
        self.reporter.install_status_provider(self._status_reports)

    def leave(self, reason: LeaveReason, *, silent: bool = False) -> None:
        """End the session.

        ``silent`` models abrupt disconnection: no notifications are sent
        to partners (they discover the death via BM-silence timeouts) and
        no LEAVE report reaches the log server.
        """
        if self.state is NodeState.LEFT:
            return
        self.left_at = self.engine.now
        self.state = NodeState.LEFT  # setter clears `alive`
        self.outcome = {
            LeaveReason.NORMAL: SessionOutcome.NORMAL,
            LeaveReason.PROGRAM_END: SessionOutcome.PROGRAM_END,
            LeaveReason.IMPATIENCE: SessionOutcome.IMPATIENT,
            LeaveReason.FAILURE: SessionOutcome.FAILED,
        }[reason]
        if self._control_task:
            self._control_task.stop()
        if self._delivery_task:
            self._delivery_task.stop()
        if silent:
            self.reporter.close(silent=True)
        else:
            for pid in self.partners.ids():
                self.system.rpc(self.node_id, pid, "rpc_partner_close", self.node_id)
            self.reporter.activity(ActivityEvent.LEAVE, attempt=self.attempt,
                                   reason=reason)
        self.system.bootstrap.unregister(self.node_id)
        self.system.on_node_left(self)
        _obs_inc("core.sessions_ended")
        _obs_inc(f"core.sessions_ended.{reason.name.lower()}")
        if self.on_session_end is not None:
            self.on_session_end(self)

    # ------------------------------------------------------------------
    # bootstrap / membership
    # ------------------------------------------------------------------
    def on_bootstrap_reply(self, entries: List[MCacheEntry]) -> None:
        """Seed the mCache and start establishing partnerships."""
        if not self.alive:
            return
        self.mcache.insert_many(entries, self.engine.now, self._rng)
        self._maintain_partnerships()

    def rpc_gossip(self, from_id: int, entries: List[MCacheEntry]) -> None:
        """Receive a gossip payload of membership entries."""
        if not self.alive:
            return
        self.mcache.insert_many(entries, self.engine.now, self._rng)

    def _gossip(self) -> None:
        partner_ids = self.partners.ids()
        if not partner_ids:
            return
        target = partner_ids[int(self._rng.integers(len(partner_ids)))]
        payload = self.mcache.gossip_payload(
            self.cfg.gossip_fanout, self._rng, self_entry=self.self_entry()
        )
        peer = self.system.get_node(target)
        if peer is not None and peer.alive:
            peer.rpc_gossip(self.node_id, payload)
            ctx = _obs_context.current()
            if ctx is not None:
                ctx.registry.counter("core.gossip_messages").inc()
                ctx.registry.counter("core.gossip_entries").inc(len(payload))

    # ------------------------------------------------------------------
    # partnership establishment
    # ------------------------------------------------------------------
    def _maintain_partnerships(self) -> None:
        cfg = self.cfg
        now = self.engine.now
        # expire stale pending requests (skip the rebuild when there are none)
        if self._pending_partners:
            self._pending_partners = {
                t: ts for t, ts in self._pending_partners.items()
                if now - ts < 10.0
            }
        want = cfg.target_partners - len(self.partners) - len(self._pending_partners)
        if want <= 0:
            return
        # isolated node with an exhausted view: only the boot-strap can help
        if (
            not self.partners.ids()
            and not self._pending_partners
            and len(self.mcache) == 0
            and now - self._last_bootstrap_contact > 5.0
        ):
            self._last_bootstrap_contact = now
            self.system.bootstrap.request_list(self)
            return
        exclude = set(self.partners.ids()) | set(self._pending_partners)
        candidates = self.mcache.sample(want * 2, self._rng, exclude=exclude)
        for entry in candidates:
            if want <= 0:
                break
            if self.partners.is_full:
                break
            if not can_establish(
                self.connectivity, entry.connectivity,
                nat_traversal_prob=cfg.nat_traversal_prob, rng=self._rng,
            ):
                # unreachable (NAT/firewall target): drop it from the view so
                # we do not keep retrying a hopeless address
                self.mcache.remove(entry.node_id)
                continue
            self._pending_partners[entry.node_id] = now
            self.system.rpc(
                self.node_id, entry.node_id, "rpc_partner_request",
                self.node_id, self.self_entry(),
            )
            want -= 1

    def rpc_partner_request(self, from_id: int, entry: MCacheEntry) -> None:
        """A peer asks to become our partner.  Accept while under ``M``."""
        if not self.alive:
            return
        accept = (not self.partners.is_full) and from_id not in self.partners
        if accept:
            self.partners.add(from_id, Direction.INCOMING, self.engine.now, entry)
            self.mcache.insert(entry, self.engine.now, self._rng)
            self.reporter.record_partner_event(PartnerOp.ADD, from_id, incoming=True)
            _obs_inc("core.partnerships_formed")
        self.system.rpc(
            self.node_id, from_id, "rpc_partner_reply",
            self.node_id, accept, self._own_bm() if accept else None,
            self.self_entry() if accept else None,
        )

    def rpc_partner_reply(
        self,
        from_id: int,
        accepted: bool,
        bm: Optional[BufferMap],
        entry: Optional[MCacheEntry],
    ) -> None:
        """Handle the accept/reject reply to our partnership request."""
        if not self.alive:
            return
        self._pending_partners.pop(from_id, None)
        if not accepted:
            self.mcache.remove(from_id)
            return
        if from_id in self.partners or self.partners.is_full:
            return
        state = self.partners.add(from_id, Direction.OUTGOING, self.engine.now, entry)
        if bm is not None:
            state.update_bm(bm, self.engine.now)
        if entry is not None:
            self.mcache.insert(entry, self.engine.now, self._rng)
        self.reporter.record_partner_event(PartnerOp.ADD, from_id, incoming=False)
        _obs_inc("core.partnerships_formed")
        # answer with our own BM so both sides can select parents
        self.system.rpc(self.node_id, from_id, "rpc_bm_update",
                        self.node_id, self._own_bm())

    def rpc_partner_close(self, from_id: int) -> None:
        """Partner gracefully closed the partnership (or died and a helper
        delivers the teardown)."""
        if not self.alive:
            return
        self._drop_partner(from_id, notify=False)

    def _drop_partner(self, partner_id: int, *, notify: bool) -> None:
        state = self.partners.remove(partner_id)
        if state is None:
            return
        self.reporter.record_partner_event(
            PartnerOp.DROP, partner_id, incoming=(state.direction is Direction.INCOMING)
        )
        _obs_inc("core.partnerships_dropped")
        self.scheduler.drop_child(partner_id)
        if self.pull_sched is not None:
            self.pull_sched.drop_child(partner_id)
        self.mcache.remove(partner_id)
        if notify:
            self.system.rpc(self.node_id, partner_id, "rpc_partner_close", self.node_id)
        # orphaned sub-streams must re-select parents promptly (churn path --
        # not gated by the cool-down, the stream is already interrupted)
        for sub, parent in enumerate(self.parents):
            if parent == partner_id:
                self.parents[sub] = None
                self._reselect_parent(sub, force=True)

    # ------------------------------------------------------------------
    # buffer maps
    # ------------------------------------------------------------------
    def _own_bm(self) -> BufferMap:
        subscriptions = tuple(p is not None for p in self.parents)
        return BufferMap.from_local_heads(self.heads, self.geometry, subscriptions)

    def rpc_bm_update(self, from_id: int, bm: BufferMap) -> None:
        """Receive a partner's refreshed buffer map."""
        if not self.alive:
            return
        self.partners.record_bm(from_id, bm, self.engine.now)

    def _broadcast_bm(self) -> None:
        bm = self._own_bm()
        now = self.engine.now
        own_id = self.node_id
        lookup = self._node_lookup
        sent = 0
        # iterate the partner map directly (we never mutate our own map
        # here, only the peers') with record_bm inlined: synchronous apply,
        # BM latency << exchange period, and the alive check just happened
        for pid in self.partners._partners:
            peer = lookup(pid)
            if peer is not None and peer.alive:
                state = peer.partners._partners.get(own_id)
                if state is not None:
                    state.bm = bm
                    state.last_bm_time = now
                sent += 1
        if sent:
            _obs_inc("core.bm_exchanges", sent)

    # ------------------------------------------------------------------
    # joining: offset choice and initial subscription
    # ------------------------------------------------------------------
    def _choose_offset(self) -> bool:
        """Pick the initial block offset per Section IV.A.  Returns True
        once the sync buffers exist."""
        if self.sync is not None:
            return True
        informed = self.partners.partners_with_bm()
        if not informed:
            return False
        # wait briefly for a second opinion unless we've been waiting already
        if len(informed) < 2 and (self.engine.now - self.joined_at) < 4.0:
            return False
        cfg = self.cfg
        m_local = max(
            s.bm.head_local(sub, self.geometry)
            for s in informed
            for sub in range(cfg.n_substreams)
        )
        if m_local < 0:
            return False
        if cfg.initial_offset_mode == "tp":
            start = max(0, m_local - int(cfg.tp_seconds))
        elif cfg.initial_offset_mode == "latest":
            start = m_local
        else:  # "oldest": the naive policy the paper argues against
            n_local = min(
                max(0, s.bm.head_local(sub, self.geometry))
                for s in informed
                for sub in range(cfg.n_substreams)
            )
            start = max(0, n_local - int(cfg.buffer_seconds) + 1)
        self.start_index = start
        self.sync = [SyncBuffer(start) for _ in range(cfg.n_substreams)]
        self.heads = [start - 1] * cfg.n_substreams
        self.playback = PlaybackState(cfg.n_substreams, start)
        return True

    def _join_progress(self) -> None:
        if not self._choose_offset():
            return
        missing = [s for s, p in enumerate(self.parents) if p is None]
        for sub in missing:
            self._reselect_parent(sub, force=True, initial=True)
        if self.state is NodeState.JOINING and any(
            p is not None for p in self.parents
        ):
            self.state = NodeState.BUFFERING

    # ------------------------------------------------------------------
    # parent selection / adaptation (Section IV.B)
    # ------------------------------------------------------------------
    def _reselect_parent(self, substream: int, *, force: bool = False,
                         initial: bool = False) -> bool:
        """Select a (new) parent for ``substream`` among qualified partners.

        ``force`` bypasses the cool-down (join and churn paths).  Returns
        True when a subscription was sent.
        """
        if not self.alive or self.sync is None:
            return False
        if not force and not self.cooldown.ready(self.engine.now):
            return False
        best_head = self.partners.best_partner_head()
        best_local = -1 if best_head < 0 else self.geometry.local_index(best_head)
        current = self.parents[substream]
        candidates = qualified_parents(
            self.partners.states(),
            substream,
            self.heads[substream],
            best_local,
            self.cfg.tp_seconds,
            self.geometry,
            exclude=() if current is None else (current,),
            cache_window=self.cache.window,
        )
        chosen = choose_parent(
            candidates, substream, self.geometry, self._rng,
            policy=self.cfg.parent_choice,
        )
        if chosen is None:
            # No qualified partner: churn the weakest partner slot so the
            # next maintenance round can try fresh peers ("the node has to
            # drop some partners and re-establish partnership").
            self._shed_useless_partner()
            return False
        old = self.parents[substream]
        if old is not None and old != chosen.node_id:
            self.system.rpc(self.node_id, old, "rpc_unsubscribe",
                            self.node_id, substream)
        self.parents[substream] = chosen.node_id
        from_index = self.heads[substream] + 1
        self.system.rpc(
            self.node_id, chosen.node_id, "rpc_subscribe",
            self.node_id, substream, from_index,
        )
        _obs_inc("core.parent_switches")
        if not initial:
            self.adaptation_count += 1
            _obs_inc("core.adaptations")
            if not force:
                self.cooldown.fire(self.engine.now)
        return True

    def _shed_useless_partner(self) -> None:
        """Drop the least useful non-parent partner to make room."""
        parent_ids = {p for p in self.parents if p is not None}
        droppable = [
            s for s in self.partners.states() if s.node_id not in parent_ids
        ]
        if not droppable or len(self.partners) < self.partners.max_partners:
            return
        worst = min(
            droppable,
            key=lambda s: (-1 if s.bm is None else s.bm.max_head),
        )
        self._drop_partner(worst.node_id, notify=True)

    def _adaptation_check(self) -> None:
        """Evaluate Inequalities (1) and (2) for every subscribed sub-stream
        and re-select the worst violator (at most one per cool-down)."""
        if self.sync is None:
            return
        cfg = self.cfg
        best_head = self.partners.best_partner_head()
        k = self.geometry.n_substreams
        best_local = -1 if best_head < 0 else best_head // k
        heads = self.heads
        max_head = max(heads)
        ts = cfg.ts_seconds
        tp = cfg.tp_seconds
        get_state = self.partners.get
        worst_sub = -1
        worst_lag = -1.0
        # inlined inequality1_ok/inequality2_ok/substream_lag with
        # max(heads) hoisted: this runs every control tick on every
        # buffering/playing node
        for sub, parent in enumerate(self.parents):
            if parent is None:
                continue
            lag = max_head - heads[sub]
            violated = lag >= ts
            if not violated and best_local >= 0:
                state = get_state(parent)
                bm = None if state is None else state.bm
                if bm is not None:
                    g = bm.heads[sub]
                    if g >= 0 and best_local - g // k >= tp:
                        violated = True
            if violated and lag > worst_lag:
                worst_lag = lag
                worst_sub = sub
        if worst_sub >= 0:
            self._reselect_parent(worst_sub)

    def _pull_round(self) -> None:
        """One DONet-style scheduling round (pull mode only).

        Choose the offset on first opportunity, then request missing
        block intervals from qualified suppliers every control tick.
        """
        if not self._choose_offset():
            return
        assert self.pull_req is not None
        suppliers = [
            (s.node_id,
             [s.bm.head_local(sub, self.geometry) for sub in range(self.cfg.n_substreams)])
            for s in self.partners.partners_with_bm()
        ]
        if not suppliers:
            return
        plan = self.pull_req.plan(self.engine.now, self.heads, suppliers, self._rng)
        for pid, requests in plan.items():
            self.system.rpc(self.node_id, pid, "rpc_request_blocks",
                            self.node_id, requests)
        if plan and self.state is NodeState.JOINING:
            self.state = NodeState.BUFFERING

    # ------------------------------------------------------------------
    # subscriptions (parent side)
    # ------------------------------------------------------------------
    def rpc_subscribe(self, child_id: int, substream: int, from_index: int) -> None:
        """A child subscribes to one of our sub-streams.  Always accepted
        (Section IV.B): competition plays out in the water-filling."""
        if not self.alive:
            return
        self.scheduler.subscribe(child_id, substream, from_index, self.engine.now)

    def rpc_unsubscribe(self, child_id: int, substream: int) -> None:
        """A child stops pulling one of our sub-streams."""
        if not self.alive:
            return
        self.scheduler.unsubscribe(child_id, substream)

    def rpc_request_blocks(self, child_id: int, requests: list) -> None:
        """Pull mode: a partner requests block intervals (DONet baseline)."""
        if not self.alive or self.pull_sched is None:
            return
        self.pull_sched.enqueue(child_id, requests)

    # ------------------------------------------------------------------
    # data plane
    # ------------------------------------------------------------------
    def deliver_blocks(self, from_id: int, substream: int, first: int,
                       last: int) -> None:
        """Receive a pushed interval of blocks on ``substream``."""
        if not self.alive or self.sync is None:
            return
        buf = self.sync[substream]
        head = buf.head
        if first > head + 1:
            # blocks before `first` were evicted from the parent's cache
            # before we could fetch them: a permanent hole
            if self.playback is not None:
                self.playback.add_hole(substream, head + 1, first - 1)
            buf.receive_range(head + 1, first - 1)  # mark as "past" so the head can advance
        buf.receive_range(first, last)
        head = buf.head
        self.heads[substream] = head
        if self.pull_req is not None:
            self.pull_req.note_head(substream, head)
        n = last - first + 1
        self.bits_downloaded += n * self._block_bits
        if self.start_subscription_at is None:
            self.start_subscription_at = self.engine.now
            self.reporter.activity(
                ActivityEvent.START_SUBSCRIPTION, attempt=self.attempt
            )
        if self._state is NodeState.BUFFERING:
            self._maybe_player_ready()

    def _maybe_player_ready(self) -> None:
        if self._state is not NodeState.BUFFERING or self.playback is None:
            return
        combined = min(self.heads) + 1
        if combined - self.start_index >= self.cfg.player_buffer_s:
            self.state = NodeState.PLAYING
            self.player_ready_at = self.engine.now
            self.playback.start(self.engine.now + self.cfg.playout_delay_s)
            self.reporter.activity(ActivityEvent.PLAYER_READY, attempt=self.attempt)

    def _push(self, conn: SubscriptionConn, first: int, last: int) -> None:
        child = self._node_lookup(conn.child_id)
        if child is None or not child.alive:
            self.scheduler.drop_child(conn.child_id)
            return
        child.deliver_blocks(self.node_id, conn.substream, first, last)

    def _pull_push(self, child_id: int, substream: int, first: int,
                   last: int) -> None:
        """Deliver a served pull request to the requesting child."""
        child = self._node_lookup(child_id)
        if child is None or not child.alive:
            if self.pull_sched is not None:
                self.pull_sched.drop_child(child_id)
            return
        child.deliver_blocks(self.node_id, substream, first, last)

    def _delivery_tick(self) -> None:
        now = self.engine.now
        dt = now - self._last_delivery
        self._last_delivery = now
        if dt <= 0:
            return
        if self.scheduler._conns:  # inlined substream_degree: per-tick path
            self.scheduler.deliver(
                dt, self.heads, self._cache_window, self._push
            )
            ctx = _obs_context.current()
            if ctx is not None:
                kind = "server" if self.is_server else "peer"
                reg = ctx.registry
                reg.counter(f"core.upload_quanta.{kind}").inc()
                if self.scheduler.last_saturated:
                    reg.counter(f"core.upload_saturated_quanta.{kind}").inc()
        if self.pull_sched is not None and self.pull_sched.busy_children:
            self.pull_sched.deliver(
                dt, self.heads, self._cache_window, self._pull_push
            )
        if self.playback is not None and self.playback.playing:
            self.playback.advance(dt, self.heads)

    # ------------------------------------------------------------------
    # control tick
    # ------------------------------------------------------------------
    def _control_tick(self) -> None:
        if not self.alive:
            return
        self._control_ticks += 1
        cfg = self.cfg
        now = self.engine.now
        # churn detection: partners that went silent (inlined stale scan --
        # the common case finds nothing and must not allocate)
        stale = None
        timeout = self._stale_timeout
        for state in self.partners._partners.values():
            if now - state.established_at < timeout:
                continue
            t = state.last_bm_time
            if t < 0 or now - t > timeout:
                if stale is None:
                    stale = [state.node_id]
                else:
                    stale.append(state.node_id)
        if stale is not None:
            for pid in stale:
                self._drop_partner(pid, notify=False)
        self._maintain_partnerships()
        self._broadcast_bm()
        if self._control_ticks % self._gossip_every == 0:
            self._gossip()
        if self.pull_mode:
            self._pull_round()
        else:
            if self._state is NodeState.JOINING or (
                # `None in list` short-circuits in C (identity first)
                self.sync is not None and None in self.parents
            ):
                self._join_progress()
            if self._state in (NodeState.BUFFERING, NodeState.PLAYING):
                self._adaptation_check()
        # user patience: sessions that never start playing are abandoned
        if (
            self._state in (NodeState.JOINING, NodeState.BUFFERING)
            and now - self.joined_at > cfg.join_patience_s
        ):
            self.leave(LeaveReason.IMPATIENCE)
            return
        # stall watchdog: an unwatchable stream makes the client depart and
        # re-enter (Section V.D) -- its recent bad continuity is lost to the
        # 5-minute report cadence, which is the Fig. 8 measurement artefact
        if self._state is NodeState.PLAYING and self.playback is not None:
            if self._last_stall_check == float("-inf"):
                self._last_stall_check = now
            elif now - self._last_stall_check >= cfg.stall_window_s:
                self._last_stall_check = now
                recent = self.playback.watchdog_continuity(reset=True)
                if recent is not None and recent < cfg.stall_exit_continuity:
                    self.leave(LeaveReason.FAILURE)

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def _status_reports(self) -> tuple[QoSReport, TrafficReport, PartnerReport]:
        now = self.engine.now
        header = dict(
            time=now, node_id=self.node_id, user_id=self.user_id,
            session_id=self.session_id,
        )
        continuity = None
        buffered = 0.0
        if self.playback is not None:
            continuity = self.playback.window_continuity()
            buffered = self.playback.buffered_seconds(self.heads)
        qos = QoSReport(
            **header,
            continuity=continuity,
            buffered_seconds=buffered,
            n_parents=sum(1 for p in self.parents if p is not None),
            playing=self.state is NodeState.PLAYING,
        )
        up_total = self.scheduler.bits_uploaded
        down_total = self.bits_downloaded
        traffic = TrafficReport(
            **header,
            bytes_up=(up_total - self._bits_up_reported) / 8.0,
            bytes_down=(down_total - self._bits_down_reported) / 8.0,
            total_up=up_total / 8.0,
            total_down=down_total / 8.0,
        )
        self._bits_up_reported = up_total
        self._bits_down_reported = down_total
        partner = PartnerReport(
            **header,
            events=self.reporter.drain_partner_events(),
            n_partners=len(self.partners),
            n_incoming=self.partners.total_incoming_ever,
            n_outgoing=self.partners.total_outgoing_ever,
        )
        return qos, traffic, partner
