"""Membership manager: the mCache partial view and its gossip maintenance.

Each node keeps an *mCache* -- a bounded partial list of currently active
nodes -- seeded from the boot-strap node and refreshed by gossip.  The
deployed system replaces entries *randomly* when the cache is full
(Section V.C), which the paper identifies as the cause of long join times
during flash crowds: the cache fills with newly joined peers that cannot
yet provide stable streams.  The ``age`` replacement policy implements the
paper's suggested improvement (prefer keeping long-lived entries) and is
exercised by the mCache ablation benchmark.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.network.connectivity import ConnectivityClass

__all__ = ["MCacheEntry", "MCache", "ReplacementPolicy"]


class ReplacementPolicy(str, enum.Enum):
    """mCache replacement policy when the cache is full."""

    RANDOM = "random"  # deployed behaviour (Section V.C)
    AGE = "age"        # paper's suggested improvement: evict youngest


@dataclass(frozen=True)
class MCacheEntry:
    """One partial-view entry: who the node is and how reachable it looks."""

    node_id: int
    connectivity: ConnectivityClass
    joined_at: float          # when that node joined the overlay
    last_seen: float          # when this entry was last refreshed

    def age(self, now: float) -> float:
        """Overlay age of the referenced node as believed by this entry."""
        return max(0.0, now - self.joined_at)

    def refreshed(self, now: float) -> "MCacheEntry":
        """A copy with ``last_seen`` updated."""
        # direct construction: dataclasses.replace re-runs field discovery
        # and this is called for every stored gossip entry
        return MCacheEntry(
            node_id=self.node_id,
            connectivity=self.connectivity,
            joined_at=self.joined_at,
            last_seen=now,
        )


class MCache:
    """Bounded partial view with pluggable replacement.

    The cache never stores its owner, and an insert of an already-present
    node refreshes rather than duplicates the entry.
    """

    def __init__(
        self,
        owner_id: int,
        capacity: int,
        policy: ReplacementPolicy = ReplacementPolicy.RANDOM,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._owner = owner_id
        self._capacity = int(capacity)
        self._policy = ReplacementPolicy(policy)
        self._entries: Dict[int, MCacheEntry] = {}

    # --- introspection ------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Maximum entries held."""
        return self._capacity

    @property
    def policy(self) -> ReplacementPolicy:
        """The active replacement policy."""
        return self._policy

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._entries

    def entries(self) -> List[MCacheEntry]:
        """Snapshot of stored entries."""
        return list(self._entries.values())

    def ids(self) -> List[int]:
        """Ids currently stored, in insertion order."""
        return list(self._entries.keys())

    # --- mutation -------------------------------------------------------------
    def insert(self, entry: MCacheEntry, now: float,
               rng: Optional[np.random.Generator] = None) -> bool:
        """Insert or refresh an entry; returns True if stored.

        When full, the replacement policy decides the victim:

        * ``RANDOM``: a uniformly random resident is evicted (this is what
          makes flash crowds poison the view -- the newcomer always enters).
        * ``AGE``: the new entry is kept only if it is older (longer-lived)
          than the youngest resident, which it then evicts.
        """
        if entry.node_id == self._owner:
            return False
        existing = self._entries.get(entry.node_id)
        if existing is not None:
            # keep the earliest join time we ever learned; refresh last_seen
            merged = MCacheEntry(
                node_id=entry.node_id,
                connectivity=entry.connectivity,
                joined_at=min(existing.joined_at, entry.joined_at),
                last_seen=now,
            )
            self._entries[entry.node_id] = merged
            return True
        if len(self._entries) < self._capacity:
            self._entries[entry.node_id] = entry.refreshed(now)
            return True
        if self._policy is ReplacementPolicy.RANDOM:
            if rng is None:
                raise ValueError("RANDOM policy requires an rng")
            victim = list(self._entries.keys())[int(rng.integers(len(self._entries)))]
            del self._entries[victim]
            self._entries[entry.node_id] = entry.refreshed(now)
            return True
        # AGE policy: evict the youngest resident (largest joined_at) iff the
        # candidate is older.
        youngest_id = max(self._entries, key=lambda nid: self._entries[nid].joined_at)
        if entry.joined_at < self._entries[youngest_id].joined_at:
            del self._entries[youngest_id]
            self._entries[entry.node_id] = entry.refreshed(now)
            return True
        return False

    def remove(self, node_id: int) -> None:
        """Forget a node (e.g. a failed partnership attempt).  Idempotent."""
        self._entries.pop(node_id, None)

    def insert_many(self, entries: Iterable[MCacheEntry], now: float,
                    rng: Optional[np.random.Generator] = None) -> int:
        """Insert several entries; returns how many were stored."""
        return sum(1 for e in entries if self.insert(e, now, rng))

    # --- sampling ---------------------------------------------------------------
    def sample(self, n: int, rng: np.random.Generator,
               exclude: Iterable[int] = ()) -> List[MCacheEntry]:
        """Uniformly sample up to ``n`` distinct entries, excluding ids in
        ``exclude`` (typically current partners)."""
        excl = set(exclude)
        pool = [e for e in self._entries.values() if e.node_id not in excl]
        if not pool:
            return []
        n = min(int(n), len(pool))
        idx = rng.choice(len(pool), size=n, replace=False)
        return [pool[i] for i in idx]

    def gossip_payload(self, n: int, rng: np.random.Generator,
                       self_entry: Optional[MCacheEntry] = None) -> List[MCacheEntry]:
        """Entries to ship in one gossip message: a random subset of the
        view, plus (always) the sender's own entry so newcomers spread."""
        payload = self.sample(n, rng)
        if self_entry is not None:
            payload = [self_entry] + payload
        return payload

    def mean_entry_age(self, now: float) -> float:
        """Average overlay age of the referenced nodes.  Diagnostic used by
        the flash-crowd analysis (young views = slow joins)."""
        if not self._entries:
            return 0.0
        return float(np.mean([e.age(now) for e in self._entries.values()]))
