"""Block and sub-stream framing (Fig. 2).

The live stream is split round-robin into ``K`` sub-streams; each
sub-stream is divided into fixed-size blocks carrying one second of that
sub-stream.  Blocks carry a *global* sequence number giving playback order:
global sequence ``s`` belongs to sub-stream ``s mod K`` and is that
sub-stream's block number ``s // K`` (its *local index*).

All engine arithmetic uses local indices (differences are directly seconds);
this module is the single place converting between the two framings, and it
also provides the deadline arithmetic used by the continuity-index
computation.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["StreamGeometry"]


@dataclass(frozen=True)
class StreamGeometry:
    """Framing math for a ``K``-sub-stream block schedule.

    Parameters
    ----------
    n_substreams:
        K, the number of sub-streams.
    block_seconds:
        Play time covered by one block of one sub-stream.  The default of
        1.0 makes local indices equal seconds, which the rest of the
        library relies on for threshold arithmetic.
    """

    n_substreams: int
    block_seconds: float = 1.0

    def __post_init__(self) -> None:
        if self.n_substreams < 1:
            raise ValueError("n_substreams must be >= 1")
        if self.block_seconds <= 0:
            raise ValueError("block_seconds must be positive")

    # --- framing conversions ---------------------------------------------
    def substream_of(self, global_seq: int) -> int:
        """Sub-stream that carries global sequence number ``global_seq``."""
        if global_seq < 0:
            raise ValueError("sequence numbers are non-negative")
        return global_seq % self.n_substreams

    def local_index(self, global_seq: int) -> int:
        """Position of ``global_seq`` within its sub-stream."""
        if global_seq < 0:
            raise ValueError("sequence numbers are non-negative")
        return global_seq // self.n_substreams

    def global_seq(self, substream: int, local_index: int) -> int:
        """Inverse of (:meth:`substream_of`, :meth:`local_index`)."""
        self._check_substream(substream)
        if local_index < 0:
            raise ValueError("local index must be non-negative")
        return local_index * self.n_substreams + substream

    # --- timing ------------------------------------------------------------
    def deadline(self, global_seq: int, playout_origin_s: float,
                 playout_start_seq: int) -> float:
        """Wall-clock deadline of a block for a viewer whose playout started
        at time ``playout_origin_s`` from global sequence
        ``playout_start_seq``.
        """
        ahead = global_seq - playout_start_seq
        return playout_origin_s + ahead * self.block_seconds / self.n_substreams

    def blocks_per_second_global(self) -> float:
        """Global block consumption rate of the player."""
        return self.n_substreams / self.block_seconds

    def live_edge_local(self, elapsed_s: float) -> int:
        """Local index of the newest *complete* block the source has
        produced on every sub-stream, ``elapsed_s`` after stream start.
        Returns -1 before the first block completes."""
        return int(elapsed_s / self.block_seconds) - 1

    def _check_substream(self, substream: int) -> None:
        if not (0 <= substream < self.n_substreams):
            raise ValueError(
                f"substream {substream} out of range [0, {self.n_substreams})"
            )
