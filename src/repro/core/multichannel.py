"""Multi-channel deployments.

The measured service broadcast several programs at once: "The users
contact a web server to select the program that they intend to watch"
(Section V.A), and the Fig. 5a audience drop at ~22:00 is attributed to
"the ending of *some* programs".  A :class:`MultiChannelDeployment` runs
one complete Coolstreaming system (source, servers, bootstrap, overlay)
per channel on a single simulated clock, so cross-channel effects --
staggered program endings, zapping between channels -- can be studied.

Channels are fully isolated overlays (as deployed: each program had its
own source and swarm); what they share is the engine, the wall clock and
the audience.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.config import SystemConfig
from repro.core.system import CoolstreamingSystem
from repro.network.capacity import CapacityModel
from repro.network.connectivity import ConnectivityMix
from repro.sim.engine import Engine
from repro.sim.rng import RngHub
from repro.telemetry.server import LogServer

__all__ = ["MultiChannelDeployment"]


class MultiChannelDeployment:
    """Several per-channel Coolstreaming systems on one engine.

    Parameters
    ----------
    n_channels:
        Number of simultaneously broadcast programs.
    cfg:
        Per-channel system configuration (the server fleet in ``cfg`` is
        deployed *per channel*, as in the measured service where the 24
        servers were shared across a handful of programs -- divide
        accordingly).
    seed:
        Root seed; each channel derives an independent stream family.
    """

    def __init__(
        self,
        n_channels: int,
        cfg: Optional[SystemConfig] = None,
        *,
        seed: int = 0,
        capacity_model: Optional[CapacityModel] = None,
        connectivity_mix: Optional[ConnectivityMix] = None,
    ) -> None:
        if n_channels < 1:
            raise ValueError("need at least one channel")
        self.engine = Engine()
        self.hub = RngHub(seed)
        self.cfg = cfg or SystemConfig()
        self.channels: List[CoolstreamingSystem] = []
        for i in range(n_channels):
            self.channels.append(CoolstreamingSystem(
                self.cfg,
                engine=self.engine,
                rng=self.hub.fork(i + 1),
                capacity_model=capacity_model,
                connectivity_mix=connectivity_mix,
                # keep ids disjoint so the merged platform log analyses
                # like a single-system log
                node_id_base=1000 + i * 10_000_000,
                session_id_base=1 + i * 10_000_000,
            ))

    @property
    def n_channels(self) -> int:
        """Number of broadcast channels."""
        return len(self.channels)

    def channel(self, idx: int) -> CoolstreamingSystem:
        """The system carrying channel ``idx``."""
        return self.channels[idx]

    def run(self, until: float) -> None:
        """Advance every channel (they share the engine)."""
        self.engine.run(until=until)

    # ------------------------------------------------------------------
    # platform-level views
    # ------------------------------------------------------------------
    @property
    def concurrent_users(self) -> int:
        """Viewers across all channels."""
        return sum(ch.concurrent_users for ch in self.channels)

    def audience_by_channel(self) -> List[int]:
        """Current viewer count per channel."""
        return [ch.concurrent_users for ch in self.channels]

    def merged_log(self) -> LogServer:
        """One platform-wide log, merged by arrival time.

        Session and user ids are disjoint across channels when spawned
        through :class:`repro.workload.surfing.ChannelAudience`, so the
        merged log analyses exactly like a single-system log.
        """
        merged = self.channels[0].log
        for ch in self.channels[1:]:
            merged = merged.merged_with(ch.log)
        return merged

    def summary(self) -> Dict[str, float]:
        """Aggregate health snapshot across channels."""
        out: Dict[str, float] = {
            "time": self.engine.now,
            "concurrent_users": float(self.concurrent_users),
        }
        for i, ch in enumerate(self.channels):
            out[f"channel{i}_users"] = float(ch.concurrent_users)
        return out
