"""Node-side buffering (Fig. 2): synchronization buffer, cache buffer and
the 2K-tuple buffer map.

A received block first lands in the per-sub-stream *synchronization buffer*,
which absorbs out-of-order arrival and exposes the contiguous head.  The
*combination process* merges the K sub-streams into one playable stream: it
advances as far as global sequence numbers are continuous and stalls at the
first sub-stream whose next block is missing (Fig. 2b).  Combined blocks
move to the *cache buffer*, a sliding window of the last ``B`` seconds from
which the node serves its children.

The *buffer map* (BM) is the 2K-tuple exchanged between partners: the first
K entries are the latest received global sequence numbers per sub-stream,
the second K entries flag which sub-streams the sender subscribes to from
the receiving partner.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Optional, Sequence

from repro.core.blocks import StreamGeometry

__all__ = ["SyncBuffer", "CacheBuffer", "BufferMap", "combined_prefix_end"]


class SyncBuffer:
    """Per-sub-stream reassembly buffer.

    Tracks the contiguous head of one sub-stream and a bounded set of
    out-of-order blocks beyond it.  ``count`` is the number of blocks in
    the contiguous prefix, i.e. local indices ``start .. start+count-1``
    are all present (``start`` supports mid-stream joins, where history
    before the join offset never existed).
    """

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ValueError("start must be non-negative")
        self._start = start
        self._count = 0
        # local index of the newest contiguous block; ``start - 1`` if
        # empty.  A maintained attribute (not a property): the push data
        # plane reads it on every delivered interval.
        self.head = start - 1
        self._pending: set[int] = set()

    @property
    def start(self) -> int:
        """Start of the contiguous range."""
        return self._start

    @property
    def count(self) -> int:
        """Blocks in the contiguous prefix."""
        return self._count

    @property
    def pending(self) -> frozenset[int]:
        """Out-of-order blocks waiting for a gap to fill."""
        return frozenset(self._pending)

    def receive(self, local_index: int) -> int:
        """Insert one block; returns how far the contiguous head advanced.

        Duplicate and pre-``start`` blocks are ignored (the deployed system
        tolerates both: a re-selected parent re-pushes from the requested
        offset).
        """
        if local_index < self._start + self._count:
            return 0
        advanced = 0
        if local_index == self._start + self._count:
            self._count += 1
            advanced += 1
            # drain any now-contiguous pending blocks
            while (self._start + self._count) in self._pending:
                self._pending.remove(self._start + self._count)
                self._count += 1
                advanced += 1
            self.head += advanced
        else:
            self._pending.add(local_index)
        return advanced

    def receive_range(self, first: int, last: int) -> int:
        """Insert blocks ``first..last`` inclusive; returns head advance.

        Batch form used by the push data plane (a parent delivers an
        interval of blocks per scheduling quantum, never objects per block).
        """
        if last < first:
            raise ValueError("empty range")
        next_needed = self._start + self._count
        if first <= next_needed and not self._pending:
            # contiguous extension, no gaps to bridge: bulk advance (the
            # push data plane hits this path almost always)
            if last < next_needed:
                return 0
            advanced = last - next_needed + 1
            self._count += advanced
            self.head += advanced
            return advanced
        advanced = 0
        for idx in range(max(first, next_needed), last + 1):
            advanced += self.receive(idx)
        return advanced


class CacheBuffer:
    """Sliding availability window over combined blocks.

    A node can serve a child only blocks that are still within ``window``
    local indices of the sub-stream head -- older blocks have been pushed
    out by playout (Section IV.A's unavailability hazard for joiners that
    request too-old blocks).
    """

    def __init__(self, window: int) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self._window = int(window)

    @property
    def window(self) -> int:
        """Cache-window span in blocks."""
        return self._window

    def oldest_available(self, head: int) -> int:
        """Oldest local index still servable given a sub-stream ``head``."""
        return max(0, head - self._window + 1)

    def available(self, head: int, local_index: int) -> bool:
        """Whether block ``local_index`` is in the window for ``head``."""
        return self.oldest_available(head) <= local_index <= head


@dataclass(frozen=True)
class BufferMap:
    """The 2K-tuple of Fig. 2: latest sequence numbers + subscriptions.

    ``heads`` holds, per sub-stream, the latest received *global* sequence
    number (``-1`` when nothing received yet).  ``subscriptions`` flags the
    sub-streams the BM's sender currently pulls from the partner it sends
    the BM to.
    """

    heads: tuple[int, ...]
    subscriptions: tuple[bool, ...]

    def __post_init__(self) -> None:
        if len(self.heads) != len(self.subscriptions):
            raise ValueError("heads and subscriptions must have length K each")
        if len(self.heads) == 0:
            raise ValueError("buffer map needs at least one sub-stream")
        if any(h < -1 for h in self.heads):
            raise ValueError("heads must be >= -1")

    @property
    def k(self) -> int:
        """Number of sub-streams."""
        return len(self.heads)

    @cached_property
    def max_head(self) -> int:
        """Most advanced sub-stream head (the ``m`` of Section IV.A).

        Cached: the map is frozen, and partner-adaptation reads this once
        per partner per control tick."""
        return max(self.heads)

    @property
    def min_head(self) -> int:
        """Least advanced sub-stream head (the ``n`` of Section IV.A)."""
        return min(self.heads)

    def head_local(self, substream: int, geometry: StreamGeometry) -> int:
        """Latest received *local* index on ``substream`` (-1 if none)."""
        g = self.heads[substream]
        return -1 if g < 0 else geometry.local_index(g)

    def as_tuple(self) -> tuple[int, ...]:
        """Flat 2K-tuple wire representation."""
        return tuple(self.heads) + tuple(int(s) for s in self.subscriptions)

    @classmethod
    def from_tuple(cls, values: Sequence[int]) -> "BufferMap":
        """Parse the flat 2K-tuple representation."""
        if len(values) % 2 != 0 or len(values) == 0:
            raise ValueError("buffer map tuple must have even, positive length")
        k = len(values) // 2
        heads = tuple(int(v) for v in values[:k])
        subs = tuple(bool(v) for v in values[k:])
        return cls(heads=heads, subscriptions=subs)

    @classmethod
    def trusted(cls, heads: tuple, subscriptions: tuple) -> "BufferMap":
        """Construct without ``__post_init__`` re-validation.

        For internal builders that guarantee the invariants by construction
        (equal-length non-empty tuples, heads >= -1).  The validated
        ``BufferMap(...)`` path remains the constructor for anything parsed
        from the wire or built by user code.
        """
        bm = cls.__new__(cls)
        object.__setattr__(bm, "heads", heads)
        object.__setattr__(bm, "subscriptions", subscriptions)
        return bm

    @classmethod
    def from_local_heads(
        cls,
        local_heads: Iterable[int],
        geometry: StreamGeometry,
        subscriptions: Optional[Sequence[bool]] = None,
    ) -> "BufferMap":
        """Build from per-sub-stream local indices (-1 = nothing yet).

        This is the per-control-tick hot constructor, so the framing
        conversion is inlined (``global = local * K + sub``) and the result
        is built through :meth:`trusted` -- every invariant
        ``__post_init__`` would re-check holds by construction here, except
        the two cheap ones still validated below.
        """
        k = geometry.n_substreams
        heads = []
        append = heads.append
        sub = 0
        for h in local_heads:
            append(-1 if h < 0 else h * k + sub)
            sub += 1
        if sub == 0:
            raise ValueError("buffer map needs at least one sub-stream")
        if sub > k:
            raise ValueError(f"substream {k} out of range [0, {k})")
        if subscriptions is None:
            subs = (False,) * sub
        else:
            subs = tuple(bool(s) for s in subscriptions)
            if len(subs) != sub:
                raise ValueError("heads and subscriptions must have length K each")
        return cls.trusted(tuple(heads), subs)


def combined_prefix_end(counts: Sequence[int], k: int) -> int:
    """First missing *global* sequence number given per-sub-stream contiguous
    block counts (the combination process of Fig. 2b).

    Sub-stream ``i`` with ``counts[i]`` contiguous blocks first misses global
    sequence ``i + k * counts[i]``; the combined stream ends at the minimum
    over sub-streams.
    """
    if len(counts) != k:
        raise ValueError("need one count per sub-stream")
    if any(c < 0 for c in counts):
        raise ValueError("counts must be non-negative")
    return min(i + k * c for i, c in enumerate(counts))
