"""Pull-mode block scheduling: the DONet/Coolstreaming-v1 baseline.

The system the paper measures *pushes* sub-streams: a child subscribes
once and the parent keeps sending (Section III/IV).  Its predecessor
DONet [3] *pulled*: every scheduling round, a node scanned its partners'
buffer maps and requested the blocks it missed, supplier by supplier.
The paper's design discussion (and the literature around it) credits the
push design with lower latency and less control overhead; this module
implements the pull baseline so that trade-off can be measured instead of
cited.

Child side (:class:`PullRequester`): each round, for every sub-stream,
request the interval from the contiguous head up to a bounded horizon
from one qualified supplier (a partner whose BM covers the interval),
avoiding duplicate in-flight requests and re-requesting on timeout.

Parent side (:class:`PullScheduler`): requested intervals queue per
child; each delivery quantum the parent water-fills its upload over the
children with outstanding requests and drains queues in FIFO order.

Both modes share everything else -- membership, partnerships, BM
exchange, buffering, playback, telemetry -- so a push-vs-pull comparison
isolates the scheduling discipline.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Tuple

from repro.network.fairshare import waterfill_rates
from repro.core.stream import CATCHUP_DEMAND_FACTOR

__all__ = ["PullScheduler", "PullRequester", "PullRequest"]


@dataclass(slots=True)
class PullRequest:
    """One requested block interval of one sub-stream."""

    substream: int
    first: int
    last: int

    def __post_init__(self) -> None:
        if self.last < self.first or self.first < 0:
            raise ValueError(f"bad interval [{self.first}, {self.last}]")

    @property
    def size(self) -> int:
        """Number of blocks covered by this request."""
        return self.last - self.first + 1


class PullScheduler:
    """Parent-side request queues with water-filled service.

    The parent serves whatever is asked ("a parent node ... will always
    accept requests"), bounded only by its upload capacity; competition
    between requesting children is resolved by max-min sharing exactly as
    in push mode, so the two disciplines differ only in *who decides what
    flows*, not in the bandwidth model.
    """

    def __init__(self, upload_bps: float, substream_rate_bps: float,
                 block_bits: float) -> None:
        if upload_bps < 0:
            raise ValueError("upload capacity must be non-negative")
        if substream_rate_bps <= 0 or block_bits <= 0:
            raise ValueError("rates must be positive")
        self.upload_bps = float(upload_bps)
        self._sub_rate = float(substream_rate_bps)
        self._block_bits = float(block_bits)
        self._queues: Dict[int, Deque[PullRequest]] = {}
        self._credit: Dict[int, float] = {}
        # cached per-child queued-block totals, kept in sync with _queues so
        # outstanding() is O(1) and busy_children O(children), not O(queue)
        self._queued_blocks: Dict[int, int] = {}
        self.bits_uploaded = 0.0
        self.requests_received = 0

    # --- request intake -------------------------------------------------
    def enqueue(self, child_id: int, requests: List[PullRequest]) -> None:
        """Accept a child's request batch."""
        if not requests:
            return
        queue = self._queues.setdefault(child_id, deque())
        queue.extend(requests)
        self._credit.setdefault(child_id, 0.0)
        self._queued_blocks[child_id] = (
            self._queued_blocks.get(child_id, 0)
            + sum(r.last - r.first + 1 for r in requests)
        )
        self.requests_received += len(requests)

    def drop_child(self, child_id: int) -> None:
        """Forget a departed child's outstanding requests."""
        self._queues.pop(child_id, None)
        self._credit.pop(child_id, None)
        self._queued_blocks.pop(child_id, None)

    def outstanding(self, child_id: int) -> int:
        """Blocks currently queued for ``child_id``.  O(1)."""
        return self._queued_blocks.get(child_id, 0)

    @property
    def busy_children(self) -> int:
        """Children with a non-empty queue.  O(children), not O(blocks):
        a queued request always covers >= 1 block, so a child's queue is
        non-empty exactly when its cached block count is positive."""
        return sum(1 for n in self._queued_blocks.values() if n)

    # --- the delivery quantum ---------------------------------------------
    def deliver(
        self,
        dt: float,
        parent_heads: List[int],
        window: int,
        push: Callable[[int, int, int, int], None],
    ) -> float:
        """Serve queues for ``dt`` seconds.

        ``window`` is the parent's cache window in blocks (oldest servable
        index is ``max(0, head - window + 1)``); ``push(child_id,
        substream, first, last)`` delivers blocks.  Intervals (or their
        prefixes) the parent cannot serve -- beyond its head or already
        evicted -- are discarded; the child's timeout machinery re-requests
        elsewhere, as in DONet.  Returns bits uploaded.
        """
        busy = [c for c, q in self._queues.items() if q]
        if not busy:
            return 0.0
        window = int(window)
        queued = self._queued_blocks
        demands = [self._sub_rate * CATCHUP_DEMAND_FACTOR] * len(busy)
        if sum(demands) <= self.upload_bps:
            rates = demands
        else:
            rates = waterfill_rates(self.upload_bps, demands)
        bits = 0.0
        for child, rate in zip(busy, rates):
            budget = self._credit.get(child, 0.0) + rate * dt / self._block_bits
            queue = self._queues[child]
            served_or_dropped = 0
            while queue and budget >= 1.0:
                req = queue[0]
                head = parent_heads[req.substream]
                if head < 0:
                    queue.popleft()  # nothing servable; child will retry
                    served_or_dropped += req.last - req.first + 1
                    continue
                floor = head - window + 1
                # clamp to what we can actually serve
                first = req.first if req.first >= floor else floor
                last = req.last if req.last <= head else head
                if last < first:
                    queue.popleft()  # nothing servable; child will retry
                    served_or_dropped += req.last - req.first + 1
                    continue
                n = min(int(budget), last - first + 1)
                push(child, req.substream, first, first + n - 1)
                bits += n * self._block_bits
                budget -= n
                if first + n - 1 >= req.last:
                    queue.popleft()
                    served_or_dropped += req.last - req.first + 1
                else:
                    served_or_dropped += first + n - req.first
                    req.first = first + n
            # push() can re-enter drop_child (the child departed); a child
            # dropped mid-loop keeps outstanding == 0 rather than resurrecting
            if served_or_dropped and child in queued:
                queued[child] -= served_or_dropped
            self._credit[child] = min(budget, 2.0)
        self.bits_uploaded += bits
        return bits


class PullRequester:
    """Child-side round-based request planner.

    Parameters
    ----------
    n_substreams:
        K.
    horizon_blocks:
        How far beyond the contiguous head to request per round (the
        DONet scheduling window).
    timeout_s:
        Re-request blocks not delivered within this long.
    """

    def __init__(self, n_substreams: int, horizon_blocks: int,
                 timeout_s: float) -> None:
        if n_substreams < 1 or horizon_blocks < 1:
            raise ValueError("bad requester geometry")
        if timeout_s <= 0:
            raise ValueError("timeout must be positive")
        self.k = n_substreams
        self.horizon = int(horizon_blocks)
        self.timeout_s = float(timeout_s)
        # per sub-stream: highest block index requested, and when
        self._requested_until: List[int] = [-1] * n_substreams
        self._requested_at: List[float] = [float("-inf")] * n_substreams
        self.requests_sent = 0

    def note_head(self, substream: int, head: int) -> None:
        """Observe the contiguous head advancing (deliveries arrived)."""
        if head > self._requested_until[substream]:
            self._requested_until[substream] = head

    def plan(
        self,
        now: float,
        heads: List[int],
        suppliers: List[Tuple[int, List[int]]],
        rng,
    ) -> Dict[int, List[PullRequest]]:
        """One scheduling round.

        ``suppliers`` is ``[(partner_id, partner_local_heads), ...]`` from
        the freshest buffer maps.  Returns partner_id -> request batch.
        A sub-stream with an un-expired in-flight request is skipped;
        expired ones are re-planned from the current head (the timeout
        re-request of DONet).
        """
        if len(heads) != self.k:
            raise ValueError("heads arity mismatch")
        plan: Dict[int, List[PullRequest]] = {}
        for sub in range(self.k):
            head = heads[sub]
            in_flight = self._requested_until[sub] > head
            if in_flight and (now - self._requested_at[sub]) < self.timeout_s:
                continue
            first = head + 1
            last = first + self.horizon - 1
            # qualified suppliers hold at least the first needed block
            capable = [
                (pid, pheads) for pid, pheads in suppliers
                if pheads[sub] >= first
            ]
            if not capable:
                continue
            pid, pheads = capable[int(rng.integers(len(capable)))]
            last = min(last, pheads[sub])
            req = PullRequest(substream=sub, first=first, last=last)
            plan.setdefault(pid, []).append(req)
            self._requested_until[sub] = last
            self._requested_at[sub] = now
            self.requests_sent += 1
        return plan
