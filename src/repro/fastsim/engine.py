"""Array-state fluid engine.

One step of length ``dt``:

1. **Arrivals / retries** -- activate peers whose (re-)join time passed.
2. **Join pipeline** -- joiners sample candidate parents from the
   reachable pool; once they hold at least one parent they pick the
   ``m - T_p`` offset and start buffering.
3. **Rates** -- per-connection demand (1 sub-stream unit when caught up,
   ``catchup_factor`` when behind); each parent's upload slots are split
   max-min fairly.  With only two demand tiers the water level has a
   closed form per parent, so the whole allocation is a handful of
   ``np.add.at`` scatters -- no per-parent Python loop.
4. **Heads** -- ``H += rate * dt``, capped by the *previous* step's parent
   head (one-step lag = per-hop latency; also makes accidental cycles
   harmless).  Children fallen behind a parent's cache window are
   fast-forwarded and charged the hole as missed blocks.
5. **Playback** -- the playout pointer advances 1 block/s per sub-stream;
   time spent with a head behind the pointer accrues missed blocks
   (continuity index), in the same continuous form the paper's Eqs. 3-4
   use.
6. **Adaptation** -- vectorized Inequality (1)/(2) detection; violators
   (scalar loop, few per step) re-select parents under the ``T_a``
   cool-down.
7. **Departures** -- intended-duration leaves, program endings, patience
   and stall watchdogs (failed sessions retry with backoff).
8. **Telemetry** -- activity events immediately, status reports on each
   peer's 5-minute phase, to a standard :class:`LogServer`.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import SystemConfig
from repro.obs import context as _obs_context
from repro.network.capacity import CapacityModel
from repro.network.connectivity import ConnectivityClass, ConnectivityMix
from repro.sim.rng import RngHub
from repro.telemetry.reports import (
    ActivityEvent,
    ActivityReport,
    LeaveReason,
    PartnerReport,
    QoSReport,
    TrafficReport,
)
from repro.telemetry.server import LogServer

__all__ = ["FastSimConfig", "FastSimulation"]

# lifecycle states
_EMPTY, _JOINING, _BUFFERING, _PLAYING, _LEFT = 0, 1, 2, 3, 4

_CONTRIBUTOR = {
    int(ConnectivityClass.DIRECT),
    int(ConnectivityClass.UPNP),
    int(ConnectivityClass.SERVER),
}


@dataclass(frozen=True)
class FastSimConfig:
    """Fastsim-specific knobs on top of :class:`SystemConfig`."""

    dt: float = 1.0                 # step length, seconds
    catchup_factor: float = 16.0    # lagging-connection demand multiplier
    candidates_per_try: int = 10    # parent candidates sampled per attempt
    nat_parent_prob: float = 0.35   # chance a NAT/firewall candidate is
                                    # reachable as a parent (partnerships it
                                    # initiated earlier); calibrated so the
                                    # NAT+firewall classes carry roughly the
                                    # ~20% byte share of Fig. 3b
    join_overhead_s: float = 1.5    # bootstrap + establishment control time
    max_children_factor: int = 1    # children cap = max_partners * factor

    def __post_init__(self) -> None:
        if self.dt <= 0:
            raise ValueError("dt must be positive")
        if self.catchup_factor < 1:
            raise ValueError("catchup_factor must be >= 1")
        if self.candidates_per_try < 1:
            raise ValueError("candidates_per_try must be >= 1")
        if not (0.0 <= self.nat_parent_prob <= 1.0):
            raise ValueError("nat_parent_prob must be a probability")
        if self.join_overhead_s < 0:
            raise ValueError("join_overhead_s must be non-negative")
        if self.max_children_factor < 1:
            raise ValueError("max_children_factor must be >= 1")


class FastSimulation:
    """Vectorized Coolstreaming dynamics for large populations."""

    def __init__(
        self,
        cfg: Optional[SystemConfig] = None,
        fast: Optional[FastSimConfig] = None,
        *,
        seed: int = 0,
        capacity_model: Optional[CapacityModel] = None,
        connectivity_mix: Optional[ConnectivityMix] = None,
        capacity_hint: int = 4096,
    ) -> None:
        self.cfg = cfg or SystemConfig()
        self.fast = fast or FastSimConfig()
        self.rng = RngHub(seed)
        self._rng = self.rng.stream("fastsim")
        self.capacity_model = capacity_model or CapacityModel()
        self.mix = connectivity_mix or ConnectivityMix()
        self.log = LogServer()
        self.now = 0.0
        self.steps_run = 0

        # observability: auto-attach to an active repro.obs session; the
        # step keeps a single ``is None`` guard per instrumented block, so
        # a disabled run executes no metrics code at all
        self._obs = _obs_context.current()
        if self._obs is not None:
            self._obs.note_seed(seed)
            self._obs.note_config(self.cfg)
            self._obs.note_config(self.fast)
            if (self._obs.progress is not None
                    and self._obs.progress.live_peers_fn is None):
                self._obs.progress.live_peers_fn = lambda: self.concurrent_users
            if "run.live_peers" not in self._obs.gauge_providers:
                self._obs.register_gauge_provider(
                    "run.live_peers", lambda: self.concurrent_users)
                self._obs.register_gauge_provider(
                    "run.mean_continuity", self.mean_continuity)

        k = self.cfg.n_substreams
        n0 = max(64, int(capacity_hint))
        self._cap = n0
        self.k = k

        # --- per-slot arrays (slot 0..n_servers are infrastructure) -------
        self.state = np.full(n0, _EMPTY, dtype=np.int8)
        self.cls = np.zeros(n0, dtype=np.int8)
        self.upload_slots = np.zeros(n0, dtype=np.float64)
        self.H = np.full((n0, k), -1.0, dtype=np.float64)
        self.parent = np.full((n0, k), -1, dtype=np.int64)
        self.q = np.zeros(n0, dtype=np.float64)            # playout pointer
        self.start_idx = np.zeros(n0, dtype=np.float64)
        self.joined_at = np.zeros(n0, dtype=np.float64)
        self.ready_at = np.full(n0, np.nan, dtype=np.float64)
        self.depart_at = np.full(n0, np.inf, dtype=np.float64)
        self.user_id = np.full(n0, -1, dtype=np.int64)
        self.session_id = np.full(n0, -1, dtype=np.int64)
        self.attempt = np.zeros(n0, dtype=np.int32)
        self.children = np.zeros(n0, dtype=np.int64)       # sub-stream degree
        self.cool_until = np.zeros(n0, dtype=np.float64)
        self.due = np.zeros(n0, dtype=np.float64)          # lifetime blocks due
        self.missed = np.zeros(n0, dtype=np.float64)
        self.win_due = np.zeros(n0, dtype=np.float64)      # 5-min report window
        self.win_missed = np.zeros(n0, dtype=np.float64)
        self.watch_due = np.zeros(n0, dtype=np.float64)    # stall watchdog
        self.watch_missed = np.zeros(n0, dtype=np.float64)
        self.bits_up = np.zeros(n0, dtype=np.float64)
        self.bits_down = np.zeros(n0, dtype=np.float64)
        self.bits_up_rep = np.zeros(n0, dtype=np.float64)
        self.bits_down_rep = np.zeros(n0, dtype=np.float64)
        self.report_phase = np.zeros(n0, dtype=np.float64)
        self.ever_incoming = np.zeros(n0, dtype=bool)
        self.public_addr = np.zeros(n0, dtype=bool)
        self.next_watch = np.zeros(n0, dtype=np.float64)
        self.is_contrib = np.zeros(n0, dtype=bool)   # contributor-class slot
        self.next_try = np.zeros(n0, dtype=np.float64)  # selection back-off

        self._free: List[int] = []
        self._next_session = 1
        self.sessions_spawned = 0

        # pending (re-)joins: (time, user_id, attempt, intended_depart)
        self._pending_joins: List[Tuple[float, int, int, float]] = []
        self._program_endings: List[Tuple[float, float]] = []
        self._retries_by_user: Dict[int, int] = {}
        self._user_deadline: Dict[int, float] = {}

        # --- infrastructure slots --------------------------------------------
        self.n_servers = self.cfg.n_servers
        self._setup_servers()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def attach_obs(self, ctx) -> None:
        """Attach an observability context explicitly (double-attach guarded)."""
        if self._obs is not None:
            raise RuntimeError("fastsim is already instrumented")
        self._obs = ctx

    def detach_obs(self) -> None:
        """Remove instrumentation from this simulation."""
        self._obs = None

    # ------------------------------------------------------------------
    # setup helpers
    # ------------------------------------------------------------------
    def _setup_servers(self) -> None:
        cfg = self.cfg
        for i in range(self.n_servers):
            slot = i  # 0..n_servers-1 reserved
            self.state[slot] = _PLAYING
            self.cls[slot] = int(ConnectivityClass.SERVER)
            self.upload_slots[slot] = cfg.upload_slots(cfg.server_upload_bps)
            self.H[slot, :] = 0.0
            self.depart_at[slot] = np.inf
            self.public_addr[slot] = True
            self.is_contrib[slot] = True
        self._user_base = self.n_servers

    def _grow(self) -> None:
        new_cap = self._cap * 2
        for name in (
            "state", "cls", "upload_slots", "q", "start_idx", "joined_at",
            "ready_at", "depart_at", "user_id", "session_id", "attempt",
            "children", "cool_until", "due", "missed", "win_due",
            "win_missed", "watch_due", "watch_missed", "bits_up",
            "bits_down", "bits_up_rep", "bits_down_rep", "report_phase",
            "ever_incoming", "public_addr", "next_watch", "is_contrib",
            "next_try",
        ):
            old = getattr(self, name)
            grown = np.zeros(new_cap, dtype=old.dtype)
            if name == "depart_at":
                grown[:] = np.inf
            elif name == "ready_at":
                grown[:] = np.nan
            elif name in ("user_id", "session_id"):
                grown[:] = -1
            grown[: self._cap] = old
            setattr(self, name, grown)
        H = np.full((new_cap, self.k), -1.0)
        H[: self._cap] = self.H
        self.H = H
        parent = np.full((new_cap, self.k), -1, dtype=np.int64)
        parent[: self._cap] = self.parent
        self.parent = parent
        self._cap = new_cap

    def _alloc_slot(self) -> int:
        if self._free:
            return self._free.pop()
        # linear scan for first EMPTY beyond servers; grow when exhausted
        empties = np.nonzero(self.state[self.n_servers:] == _EMPTY)[0]
        if empties.size == 0:
            self._grow()
            empties = np.nonzero(self.state[self.n_servers:] == _EMPTY)[0]
        return int(empties[0]) + self.n_servers

    # ------------------------------------------------------------------
    # workload API
    # ------------------------------------------------------------------
    def add_arrivals(
        self,
        arrival_times: np.ndarray,
        intended_durations: np.ndarray,
        *,
        user_id_base: int = 0,
    ) -> None:
        """Register a batch of users (their first join attempts)."""
        times = np.asarray(arrival_times, dtype=float)
        durs = np.asarray(intended_durations, dtype=float)
        if times.shape != durs.shape:
            raise ValueError("arrival_times and intended_durations must align")
        for i, (t, d) in enumerate(zip(times, durs)):
            self._pending_joins.append(
                (float(t), user_id_base + i, 1, float(t + d))
            )
        self._pending_joins.sort(key=lambda x: x[0], reverse=True)  # pop() order

    def add_program_ending(self, time_s: float, leave_probability: float) -> None:
        """Schedule a program-end departure wave."""
        self._program_endings.append((float(time_s), float(leave_probability)))
        self._program_endings.sort(reverse=True)

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def _activity(self, slot: int, event: ActivityEvent,
                  reason: Optional[LeaveReason] = None) -> None:
        self.log.receive_report(self.now, ActivityReport(
            time=self.now, node_id=int(slot) + 100_000,
            user_id=int(self.user_id[slot]),
            session_id=int(self.session_id[slot]),
            event=event, attempt=int(self.attempt[slot]),
            address_public=bool(self.public_addr[slot]), reason=reason,
        ))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, user_id: int, attempt: int, depart_at: float) -> int:
        slot = self._alloc_slot()
        rng = self._rng
        cls = self.mix.sample(rng)
        up = self.capacity_model.sample_upload(cls, rng)
        self.state[slot] = _JOINING
        self.cls[slot] = int(cls)
        self.upload_slots[slot] = self.cfg.upload_slots(up)
        self.H[slot, :] = -1.0
        self.parent[slot, :] = -1
        self.q[slot] = 0.0
        self.start_idx[slot] = 0.0
        self.joined_at[slot] = self.now
        self.ready_at[slot] = np.nan
        self.depart_at[slot] = depart_at
        self.user_id[slot] = user_id
        self.session_id[slot] = self._next_session
        self.attempt[slot] = attempt
        self.children[slot] = 0
        self.cool_until[slot] = 0.0
        for arr in (self.due, self.missed, self.win_due, self.win_missed,
                    self.watch_due, self.watch_missed, self.bits_up,
                    self.bits_down, self.bits_up_rep, self.bits_down_rep):
            arr[slot] = 0.0
        self.report_phase[slot] = float(rng.uniform(0, self.cfg.status_report_period_s))
        self.ever_incoming[slot] = False
        self.public_addr[slot] = cls in (
            ConnectivityClass.DIRECT, ConnectivityClass.FIREWALL
        )
        self.next_watch[slot] = self.now + self.cfg.stall_window_s
        self.is_contrib[slot] = int(cls) in _CONTRIBUTOR
        self.next_try[slot] = 0.0
        self._next_session += 1
        self.sessions_spawned += 1
        self._activity(slot, ActivityEvent.JOIN)
        if self._obs is not None:
            self._obs.registry.counter("fastsim.joins").inc()
        return slot

    def _leave(self, slot: int, reason: LeaveReason, *, silent: bool = False,
               retry: bool = True) -> None:
        if self.state[slot] in (_EMPTY, _LEFT):
            return
        # release our own subscriptions (parents regain child capacity)
        for sub in range(self.k):
            p = self.parent[slot, sub]
            if p >= 0:
                self.children[p] -= 1
        # orphan the children: their parent pointer dies; adaptation deals
        child_mask = self.parent == slot
        self.parent[child_mask] = -1
        self.children[slot] = 0
        uid = int(self.user_id[slot])
        att = int(self.attempt[slot])
        if self._obs is not None:
            reg = self._obs.registry
            reg.counter("fastsim.leaves").inc()
            reg.counter(f"fastsim.leaves.{reason.name.lower()}").inc()
        if not silent:
            self._activity(slot, ActivityEvent.LEAVE, reason)
        self.state[slot] = _EMPTY
        self.parent[slot, :] = -1
        self.depart_at[slot] = np.inf
        self._free.append(slot)
        if retry and reason in (LeaveReason.IMPATIENCE, LeaveReason.FAILURE):
            retries = self._retries_by_user.get(uid, 0)
            if att <= self.cfg.max_join_retries:
                self._retries_by_user[uid] = retries + 1
                backoff = self.cfg.retry_backoff_s * (0.5 + self._rng.random())
                # keep the user's original departure deadline
                self._pending_joins.append(
                    (self.now + backoff, uid, att + 1, float("nan"))
                )
                self._pending_joins.sort(key=lambda x: x[0], reverse=True)

    # ------------------------------------------------------------------
    # parent selection
    # ------------------------------------------------------------------
    def _candidate_pool(self) -> np.ndarray:
        """Slots usable as parents this step."""
        return np.nonzero(
            ((self.state == _PLAYING) | (self.state == _BUFFERING))
        )[0]

    def _sample_candidates(self, slot: int, pool: np.ndarray) -> np.ndarray:
        """Sample reachable, non-full candidate parents (the joiner's
        effective partner set for this attempt)."""
        if pool.size == 0:
            return pool
        fast = self.fast
        cfg = self.cfg
        rng = self._rng
        n_cand = min(fast.candidates_per_try, pool.size)
        cand = pool[rng.integers(0, pool.size, size=n_cand)]
        # reachability: contributor classes always; NAT/firewall rarely
        reach = self.is_contrib[cand] | (rng.random(cand.size) < fast.nat_parent_prob)
        # capacity gate: parents at their children cap reject (M partners)
        max_children = cfg.max_partners * self.k * fast.max_children_factor
        server_cap = cfg.server_max_partners * self.k
        caps = np.where(
            self.cls[cand] == int(ConnectivityClass.SERVER), server_cap, max_children
        )
        ok = reach & (self.children[cand] < caps) & (cand != slot)
        return cand[ok]

    def _try_select_parents(self, slot: int, substreams: List[int],
                            pool: np.ndarray,
                            cand: Optional[np.ndarray] = None) -> int:
        """Fill the given sub-stream slots from sampled candidates; returns
        how many were filled."""
        cfg = self.cfg
        rng = self._rng
        if cand is None:
            cand = self._sample_candidates(slot, pool)
        if cand.size == 0:
            return 0
        # Inequality (2) as a selection filter: a qualified parent's head on
        # the sub-stream must be within T_p of the best head among the
        # candidate (partner) set -- this is what keeps starved peers from
        # being chosen as parents even though capacity itself is ignored
        best_head = float(self.H[cand, :].max())
        filled = 0
        for sub in substreams:
            need = self.H[slot, sub]  # next block needed - 1
            # candidate must be at least as advanced and still hold our block
            heads = self.H[cand, sub]
            window_ok = (
                (heads >= need)
                & (need + 1.0 >= heads - cfg.buffer_seconds + 1.0)
                & (best_head - heads < cfg.tp_seconds)
            )
            avail = cand[window_ok]
            if avail.size == 0:
                continue
            choice = int(avail[rng.integers(avail.size)])
            old = self.parent[slot, sub]
            if old >= 0:
                self.children[old] -= 1
            self.parent[slot, sub] = choice
            self.children[choice] += 1
            # classifier signal: a contributor-class parent got this child
            # through an *incoming* partnership (the child initiated); a
            # NAT/firewall parent could only be reached over a partnership
            # it initiated itself, so it earns no incoming credit
            if int(self.cls[choice]) in _CONTRIBUTOR:
                self.ever_incoming[choice] = True
            filled += 1
        if filled and self._obs is not None:
            self._obs.registry.counter("fastsim.parent_selections").inc(filled)
        return filled

    # ------------------------------------------------------------------
    # the step
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the simulation by one time step."""
        _obs = self._obs
        _t0 = perf_counter() if _obs is not None else 0.0  # repro: noqa[DET002] obs step-timer instrumentation only
        dt = self.fast.dt
        cfg = self.cfg
        k = self.k
        now = self.now
        rng = self._rng

        # 1. arrivals / retries -------------------------------------------------
        while self._pending_joins and self._pending_joins[-1][0] <= now:
            t, uid, att, depart = self._pending_joins.pop()
            if np.isnan(depart):
                # retry: recover the user's deadline from bookkeeping -- the
                # user watches until its original deadline; approximate with
                # a fresh draw is wrong, so store deadlines per user
                depart = self._user_deadline.get(uid, now + 600.0)
            else:
                self._user_deadline[uid] = depart
            if depart <= now:
                continue  # watch window already over
            self._spawn(uid, att, depart)

        # 2. join pipeline -----------------------------------------------------
        joining = np.nonzero(self.state == _JOINING)[0]
        pool = self._candidate_pool()
        if joining.size:
            for slot in joining:
                if now - self.joined_at[slot] < self.fast.join_overhead_s:
                    continue
                if now < self.next_try[slot]:
                    continue
                cand = self._sample_candidates(slot, pool)
                if cand.size == 0:
                    self.next_try[slot] = now + cfg.bm_exchange_period_s
                    continue
                if self.H[slot, 0] < 0:
                    # Section IV.A: offset = (max head among partners) - T_p;
                    # the effective partner set is this attempt's candidates
                    m = float(self.H[cand, :].max())
                    if m < 0:
                        continue
                    start = max(0.0, m - cfg.tp_seconds)
                    self.H[slot, :] = start - 1.0
                    self.start_idx[slot] = start
                    self.q[slot] = start
                missing = [s for s in range(k) if self.parent[slot, s] < 0]
                got = self._try_select_parents(slot, missing, pool, cand=cand)
                if got and self.state[slot] == _JOINING:
                    self.state[slot] = _BUFFERING
                    self._activity(slot, ActivityEvent.START_SUBSCRIPTION)
                if got < len(missing):
                    self.next_try[slot] = now + cfg.bm_exchange_period_s

        # 3. rates ------------------------------------------------------------------
        active = (self.state == _BUFFERING) | (self.state == _PLAYING)
        conn = self.parent >= 0  # (N, K) live connections
        conn &= active[:, None]
        if conn.any():
            rows, cols = conn.nonzero()
            pidx = self.parent[rows, cols]
            lag = self.H[pidx, cols] - self.H[rows, cols]
            c = self.fast.catchup_factor
            is_catchup = lag > 0.5
            # max-min fair share with two demand tiers (1 and c) has a
            # closed form per parent: water level L solves
            #   sum min(demand_i, L) = capacity
            n1 = np.zeros(self._cap)
            nc = np.zeros(self._cap)
            np.add.at(n1, pidx[~is_catchup], 1.0)
            np.add.at(nc, pidx[is_catchup], 1.0)
            cap_p = self.upload_slots
            n_tot = n1 + nc
            with np.errstate(divide="ignore", invalid="ignore"):
                # tier 1: everyone below demand 1 -> L = cap / n_tot
                level_low = np.where(n_tot > 0, cap_p / n_tot, 0.0)
                # tier 2: demand-1 conns saturated -> L = (cap - n1) / nc
                level_high = np.where(nc > 0, (cap_p - n1) / nc, np.inf)
            level = np.where(level_low <= 1.0, level_low, np.minimum(level_high, c))
            conn_level = level[pidx]
            rate_flat = np.where(is_catchup, np.minimum(conn_level, c),
                                 np.minimum(conn_level, 1.0))
            rate = np.zeros_like(self.H)
            rate[rows, cols] = np.maximum(0.0, rate_flat)
        else:
            rate = np.zeros_like(self.H)

        # 4. advance heads ------------------------------------------------------------
        H_prev = self.H.copy()
        if conn.any():
            rows, cols = conn.nonzero()
            pidx = self.parent[rows, cols]
            target_cap = H_prev[pidx, cols]          # one-step-lagged parent head
            floor = target_cap - cfg.buffer_seconds + 1.0  # cache window
            newH = self.H[rows, cols] + rate[rows, cols] * dt
            newH = np.minimum(newH, target_cap)
            # fast-forward over evicted blocks; charge the hole as missed,
            # but only the part the playout pointer has not already charged
            jumped = np.maximum(0.0, floor - np.maximum(newH, self.q[rows]))
            np.add.at(self.missed, rows, jumped)
            np.add.at(self.win_missed, rows, jumped)
            np.add.at(self.watch_missed, rows, jumped)
            newH = np.maximum(newH, floor)
            # account downloaded bits / uploaded bits
            delivered = np.maximum(0.0, newH - self.H[rows, cols])
            np.add.at(self.bits_down, rows, delivered * cfg.block_bits)
            np.add.at(self.bits_up, pidx, delivered * cfg.block_bits)
            self.H[rows, cols] = newH
        # servers track the live edge directly (fed by the source off-model)
        edge = max(0.0, (now + dt) - 1.0)
        self.H[: self.n_servers, :] = edge

        # 5. playback -----------------------------------------------------------------
        playing = self.state == _PLAYING
        if playing.any():
            rows = np.nonzero(playing)[0]
            q_prev = self.q[rows]
            q_new = q_prev + dt
            self.q[rows] = q_new
            # per sub-stream: time in (q_prev, q_new] not covered by the head
            heads = self.H[rows, :]
            miss = np.clip(
                q_new[:, None] - np.maximum(heads, q_prev[:, None]), 0.0, dt
            ).sum(axis=1)
            due = dt * k
            self.due[rows] += due
            self.missed[rows] += miss
            self.win_due[rows] += due
            self.win_missed[rows] += miss
            self.watch_due[rows] += due
            self.watch_missed[rows] += miss

        # 6. ready check --------------------------------------------------------------
        buffering = np.nonzero(self.state == _BUFFERING)[0]
        if buffering.size:
            combined = self.H[buffering, :].min(axis=1) + 1.0
            ready = combined - self.start_idx[buffering] >= cfg.player_buffer_s
            for slot in buffering[ready]:
                self.state[slot] = _PLAYING
                self.ready_at[slot] = now
                self.q[slot] = self.start_idx[slot]
                self._activity(slot, ActivityEvent.PLAYER_READY)

        # 7. adaptation ---------------------------------------------------------------
        act = np.nonzero(active)[0]
        if act.size:
            heads = self.H[act, :]
            best = heads.max(axis=1, keepdims=True)
            lag_bad = (best - heads) >= cfg.ts_seconds          # Inequality (1)
            parent_dead = np.zeros_like(lag_bad)
            par = self.parent[act, :]
            has_parent = par >= 0
            pstate = np.where(has_parent, self.state[np.maximum(par, 0)], _EMPTY)
            parent_dead = has_parent & ~(
                (pstate == _PLAYING) | (pstate == _BUFFERING)
            )
            # Inequality (2): parent head lags the best head among the
            # node's partners.  A node's partner set is a random sample of
            # the population, so its best head is statistically close to an
            # upper quantile of the population's heads; we use that quantile
            # (plus the node's own local view) as the vectorizable stand-in
            # for "best partner head".  Without the population term, whole
            # sub-trees under an oversubscribed parent would drift behind
            # uniformly and never trigger adaptation -- which the real
            # protocol's BM exchange does not allow.
            phead = np.where(
                has_parent,
                self.H[np.maximum(par, 0), np.arange(self.k)[None, :]],
                -np.inf,
            )
            peer_rows = act[act >= self.n_servers]
            if peer_rows.size >= 4:
                population_ref = float(
                    np.percentile(self.H[peer_rows, :].max(axis=1), 75.0)
                )
            else:
                population_ref = -np.inf
            local_best = np.maximum(phead.max(axis=1), heads.max(axis=1))
            local_best = np.maximum(local_best, population_ref)
            ineq2_bad = (local_best[:, None] - phead) >= cfg.tp_seconds
            ineq2_bad &= has_parent
            need_fix = (lag_bad & has_parent) | parent_dead | ineq2_bad | ~has_parent
            if _obs is not None:
                reg = _obs.registry
                reg.counter("fastsim.ineq1_violations").inc(
                    int((lag_bad & has_parent).sum())
                )
                reg.counter("fastsim.ineq2_violations").inc(int(ineq2_bad.sum()))
                reg.counter("fastsim.dead_parent_links").inc(int(parent_dead.sum()))
            rows_fix = np.nonzero(need_fix.any(axis=1))[0]
            if rows_fix.size:
                adaptations = 0
                for r in rows_fix:
                    slot = int(act[r])
                    forced = bool((parent_dead[r] | ~has_parent[r]).any())
                    if not forced and now < self.cool_until[slot]:
                        continue
                    if forced and now < self.next_try[slot]:
                        continue
                    subs = np.nonzero(need_fix[r])[0]
                    if not forced:
                        # voluntary adaptation: one sub-stream per cool-down
                        worst = subs[np.argmax((best[r, 0] - heads[r, subs]))]
                        subs = np.array([worst])
                        self.cool_until[slot] = now + cfg.ta_seconds
                    # release dead parents before re-selecting
                    for sub in subs:
                        p = self.parent[slot, sub]
                        if p >= 0:
                            self.children[p] -= 1
                            self.parent[slot, sub] = -1
                    got = self._try_select_parents(slot, [int(s) for s in subs], pool)
                    adaptations += 1
                    if got < len(subs):
                        self.next_try[slot] = now + cfg.bm_exchange_period_s
                if _obs is not None and adaptations:
                    _obs.registry.counter("fastsim.adaptations").inc(adaptations)

        # 8. departures ----------------------------------------------------------------
        active_or_joining = self.state != _EMPTY
        active_or_joining[: self.n_servers] = False
        # scheduled departures
        due_leave = np.nonzero(active_or_joining & (self.depart_at <= now))[0]
        for slot in due_leave:
            silent = bool(rng.random() < 0.1)
            self._leave(slot, LeaveReason.NORMAL, silent=silent, retry=False)
        # program endings
        while self._program_endings and self._program_endings[-1][0] <= now:
            _t, prob = self._program_endings.pop()
            watchers = np.nonzero(
                (self.state == _PLAYING) | (self.state == _BUFFERING)
            )[0]
            watchers = watchers[watchers >= self.n_servers]
            for slot in watchers:
                if rng.random() < prob:
                    self._user_deadline[int(self.user_id[slot])] = now
                    self._leave(slot, LeaveReason.PROGRAM_END, retry=False)
        # patience
        waiting = (self.state == _JOINING) | (self.state == _BUFFERING)
        waiting[: self.n_servers] = False
        impatient = np.nonzero(
            waiting & (now - self.joined_at > cfg.join_patience_s)
        )[0]
        for slot in impatient:
            self._leave(slot, LeaveReason.IMPATIENCE)
        # stall watchdog
        players = np.nonzero(self.state == _PLAYING)[0]
        players = players[players >= self.n_servers]
        if players.size:
            check = players[self.next_watch[players] <= now]
            for slot in check:
                self.next_watch[slot] = now + cfg.stall_window_s
                if self.watch_due[slot] > 0:
                    cont = 1.0 - self.watch_missed[slot] / self.watch_due[slot]
                    if cont < cfg.stall_exit_continuity:
                        self._leave(slot, LeaveReason.FAILURE)
                self.watch_due[slot] = 0.0
                self.watch_missed[slot] = 0.0

        # 9. status reports ---------------------------------------------------------------
        period = cfg.status_report_period_s
        alive = np.nonzero(active_or_joining & (self.state != _EMPTY))[0]
        if alive.size:
            fires = alive[
                (np.floor((now - self.joined_at[alive] + self.report_phase[alive]) / period)
                 > np.floor((now - dt - self.joined_at[alive] + self.report_phase[alive]) / period))
                & (now - self.joined_at[alive] >= dt)
            ]
            for slot in fires:
                self._send_status(int(slot))

        self.now = now + dt
        self.steps_run += 1
        if _obs is not None:
            dur = perf_counter() - _t0  # repro: noqa[DET002] obs step-timer instrumentation only
            reg = _obs.registry
            reg.counter("fastsim.steps").inc()
            reg.counter("fastsim.peers_stepped").inc(int(active.sum()))
            reg.timer("fastsim.step_s").observe(dur)
            live = self.concurrent_users
            reg.gauge("fastsim.live_peers").set(live)
            reg.gauge("fastsim.live_peers_max").max(live)
            if _obs.trace is not None:
                _obs.trace.complete("fastsim.step", _obs.trace.rel_us(_t0),
                                    dur * 1e6, cat="fastsim", sim_time=self.now)
            if _obs.progress is not None:
                _obs.progress.maybe_beat(self.now, self.steps_run, "steps")

    def _send_status(self, slot: int) -> None:
        cfg = self.cfg
        header = dict(
            time=self.now, node_id=slot + 100_000,
            user_id=int(self.user_id[slot]),
            session_id=int(self.session_id[slot]),
        )
        cont = None
        if self.win_due[slot] > 0:
            cont = float(1.0 - self.win_missed[slot] / self.win_due[slot])
            cont = max(0.0, min(1.0, cont))
        self.log.receive_report(self.now, QoSReport(
            **header, continuity=cont,
            buffered_seconds=float(self.H[slot].min() + 1.0 - self.q[slot]),
            n_parents=int((self.parent[slot] >= 0).sum()),
            playing=bool(self.state[slot] == _PLAYING),
        ))
        self.win_due[slot] = 0.0
        self.win_missed[slot] = 0.0
        self.log.receive_report(self.now, TrafficReport(
            **header,
            bytes_up=float(self.bits_up[slot] - self.bits_up_rep[slot]) / 8.0,
            bytes_down=float(self.bits_down[slot] - self.bits_down_rep[slot]) / 8.0,
            total_up=float(self.bits_up[slot]) / 8.0,
            total_down=float(self.bits_down[slot]) / 8.0,
        ))
        self.bits_up_rep[slot] = self.bits_up[slot]
        self.bits_down_rep[slot] = self.bits_down[slot]
        # partner report: fastsim tracks direction via ever_incoming (set
        # when a contributor-class node accepts a child's partnership)
        n_in = 1 if self.ever_incoming[slot] else 0
        self.log.receive_report(self.now, PartnerReport(
            **header, events=(),
            n_partners=int((self.parent[slot] >= 0).sum()) + int(self.children[slot] > 0),
            n_incoming=n_in,
            n_outgoing=int((self.parent[slot] >= 0).sum()),
        ))

    # ------------------------------------------------------------------
    def run(self, until: float) -> None:
        """Step until ``self.now >= until``."""
        while self.now < until:
            self.step()

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def concurrent_users(self) -> int:
        """Alive user peers right now."""
        mask = self.state != _EMPTY
        mask[: self.n_servers] = False
        return int(mask.sum())

    @property
    def playing_users(self) -> int:
        """User peers currently in the PLAYING state."""
        mask = self.state == _PLAYING
        mask[: self.n_servers] = False
        return int(mask.sum())

    def mean_continuity(self) -> float:
        """Mean lifetime continuity over playing peers."""
        mask = (self.state == _PLAYING) & (self.due > 0)
        mask[: self.n_servers] = False
        if not mask.any():
            return float("nan")
        return float((1.0 - self.missed[mask] / self.due[mask]).mean())

    def retry_histogram(self) -> Dict[int, int]:
        """retries -> user count, from the retry bookkeeping."""
        hist: Dict[int, int] = {}
        seen_users = set()
        for uid, retries in self._retries_by_user.items():
            hist[retries] = hist.get(retries, 0) + 1
            seen_users.add(uid)
        zero = len(self._user_deadline) - len(seen_users)
        if zero > 0:
            hist[0] = hist.get(0, 0) + zero
        return hist
