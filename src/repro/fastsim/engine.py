"""Array-state fluid engine.

One step of length ``dt``, every phase batched over the population
(struct-of-arrays state, numpy kernels, O(1) Python overhead per step):

1. **Arrivals / retries** -- activate peers whose (re-)join time passed;
   the whole due batch spawns at once (vector class/capacity draws,
   order-preserving batch slot allocation).
2. **Join pipeline** -- joiners sample a candidate-parent *matrix* from
   the reachable pool; once they hold at least one parent they pick the
   ``m - T_p`` offset and start buffering.  Parent assignment is batched:
   masked random keys pick one candidate per (peer, sub-stream) and an
   argsort group-rank pass enforces children caps across the whole batch
   at once (contenders are randomly permuted first, so intra-step
   contention resolves uniformly).
3. **Rates** -- per-connection demand (1 sub-stream unit when caught up,
   ``catchup_factor`` when behind); each parent's upload slots are split
   max-min fairly.  With only two demand tiers the water level has a
   closed form per parent, so the whole allocation is a handful of
   ``np.bincount`` scatters -- no per-parent Python loop.
4. **Heads** -- ``H += rate * dt``, capped by the *previous* step's parent
   head (one-step lag = per-hop latency; also makes accidental cycles
   harmless).  Children fallen behind a parent's cache window are
   fast-forwarded and charged the hole as missed blocks.
5. **Playback** -- the playout pointer advances 1 block/s per sub-stream;
   time spent with a head behind the pointer accrues missed blocks
   (continuity index), in the same continuous form the paper's Eqs. 3-4
   use.
6. **Adaptation** -- vectorized Inequality (1)/(2) detection; violators
   re-select parents in one batch under the ``T_a`` cool-down (voluntary
   adaptations replace their single worst sub-stream, forced ones --
   dead or missing parents -- refill every broken sub-stream).
7. **Departures** -- intended-duration leaves, program endings, patience
   and stall watchdogs, each as one batched leave (failed sessions retry
   with backoff).
8. **Telemetry** -- activity events immediately, status reports on each
   peer's 5-minute phase, to a standard :class:`LogServer`.  Per-event
   Python cost is O(events), never O(population).

Set ``REPRO_PROFILE_PHASES=1`` (or flip :attr:`FastSimulation.
phase_timing`) to accumulate per-phase wall-clock into
:data:`PHASE_TOTALS` -- ``python -m repro profile --engine fast`` uses
this for its phase breakdown table.
"""

from __future__ import annotations

import heapq
import os
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import SystemConfig
from repro.obs import context as _obs_context
from repro.network.capacity import CapacityModel
from repro.network.connectivity import ConnectivityClass, ConnectivityMix
from repro.sim.rng import RngHub
from repro.telemetry.reports import (
    ActivityEvent,
    ActivityReport,
    LeaveReason,
    PartnerReport,
    QoSReport,
    TrafficReport,
)
from repro.telemetry.server import LogServer

__all__ = [
    "FastSimConfig",
    "FastSimulation",
    "PHASE_NAMES",
    "PHASE_TOTALS",
    "reset_phase_totals",
]

# lifecycle states
_EMPTY, _JOINING, _BUFFERING, _PLAYING, _LEFT = 0, 1, 2, 3, 4

_CONTRIBUTOR = {
    int(ConnectivityClass.DIRECT),
    int(ConnectivityClass.UPNP),
    int(ConnectivityClass.SERVER),
}

#: Step phases, in execution order (keys of the timing breakdown).
PHASE_NAMES: Tuple[str, ...] = (
    "arrivals", "join", "rates", "heads", "playback", "ready",
    "adaptation", "departures", "reports",
)

#: Process-wide per-phase wall-clock accumulator (seconds), fed by every
#: :class:`FastSimulation` whose ``phase_timing`` is on.
PHASE_TOTALS: Dict[str, float] = {}

#: Environment switch for phase timing (any non-empty value enables it).
PHASE_TIMING_ENV = "REPRO_PROFILE_PHASES"


def reset_phase_totals() -> None:
    """Zero the process-wide phase-timing accumulator."""
    PHASE_TOTALS.clear()


@dataclass(frozen=True)
class FastSimConfig:
    """Fastsim-specific knobs on top of :class:`SystemConfig`."""

    dt: float = 1.0                 # step length, seconds
    catchup_factor: float = 16.0    # lagging-connection demand multiplier
    candidates_per_try: int = 10    # parent candidates sampled per attempt
    nat_parent_prob: float = 0.35   # chance a NAT/firewall candidate is
                                    # reachable as a parent (partnerships it
                                    # initiated earlier); calibrated so the
                                    # NAT+firewall classes carry roughly the
                                    # ~20% byte share of Fig. 3b
    join_overhead_s: float = 1.5    # bootstrap + establishment control time
    max_children_factor: int = 1    # children cap = max_partners * factor

    def __post_init__(self) -> None:
        if self.dt <= 0:
            raise ValueError("dt must be positive")
        if self.catchup_factor < 1:
            raise ValueError("catchup_factor must be >= 1")
        if self.candidates_per_try < 1:
            raise ValueError("candidates_per_try must be >= 1")
        if not (0.0 <= self.nat_parent_prob <= 1.0):
            raise ValueError("nat_parent_prob must be a probability")
        if self.join_overhead_s < 0:
            raise ValueError("join_overhead_s must be non-negative")
        if self.max_children_factor < 1:
            raise ValueError("max_children_factor must be >= 1")


class FastSimulation:
    """Vectorized Coolstreaming dynamics for large populations."""

    def __init__(
        self,
        cfg: Optional[SystemConfig] = None,
        fast: Optional[FastSimConfig] = None,
        *,
        seed: int = 0,
        capacity_model: Optional[CapacityModel] = None,
        connectivity_mix: Optional[ConnectivityMix] = None,
        capacity_hint: int = 4096,
    ) -> None:
        self.cfg = cfg or SystemConfig()
        self.fast = fast or FastSimConfig()
        self.rng = RngHub(seed)
        self._rng = self.rng.stream("fastsim")
        self.capacity_model = capacity_model or CapacityModel()
        self.mix = connectivity_mix or ConnectivityMix()
        self.log = LogServer()
        self.now = 0.0
        self.steps_run = 0

        # opt-in per-phase wall-clock accounting (profile CLI breakdown)
        self.phase_timing = bool(os.environ.get(PHASE_TIMING_ENV))
        self.phase_seconds: Dict[str, float] = {}

        # observability: auto-attach to an active repro.obs session; the
        # step keeps a single ``is None`` guard per instrumented block, so
        # a disabled run executes no metrics code at all
        self._obs = _obs_context.current()
        if self._obs is not None:
            self._obs.note_seed(seed)
            self._obs.note_config(self.cfg)
            self._obs.note_config(self.fast)
            if (self._obs.progress is not None
                    and self._obs.progress.live_peers_fn is None):
                self._obs.progress.live_peers_fn = lambda: self.concurrent_users
            if "run.live_peers" not in self._obs.gauge_providers:
                self._obs.register_gauge_provider(
                    "run.live_peers", lambda: self.concurrent_users)
                self._obs.register_gauge_provider(
                    "run.mean_continuity", self.mean_continuity)

        k = self.cfg.n_substreams
        n0 = max(64, int(capacity_hint))
        self._cap = n0
        self.k = k

        # --- per-slot arrays (slot 0..n_servers are infrastructure) -------
        self.state = np.full(n0, _EMPTY, dtype=np.int8)
        self.cls = np.zeros(n0, dtype=np.int8)
        self.upload_slots = np.zeros(n0, dtype=np.float64)
        self.H = np.full((n0, k), -1.0, dtype=np.float64)
        self.parent = np.full((n0, k), -1, dtype=np.int64)
        self.q = np.zeros(n0, dtype=np.float64)            # playout pointer
        self.start_idx = np.zeros(n0, dtype=np.float64)
        self.joined_at = np.zeros(n0, dtype=np.float64)
        self.ready_at = np.full(n0, np.nan, dtype=np.float64)
        self.depart_at = np.full(n0, np.inf, dtype=np.float64)
        self.user_id = np.full(n0, -1, dtype=np.int64)
        self.session_id = np.full(n0, -1, dtype=np.int64)
        self.attempt = np.zeros(n0, dtype=np.int32)
        self.children = np.zeros(n0, dtype=np.int64)       # sub-stream degree
        self.cool_until = np.zeros(n0, dtype=np.float64)
        self.due = np.zeros(n0, dtype=np.float64)          # lifetime blocks due
        self.missed = np.zeros(n0, dtype=np.float64)
        self.win_due = np.zeros(n0, dtype=np.float64)      # 5-min report window
        self.win_missed = np.zeros(n0, dtype=np.float64)
        self.watch_due = np.zeros(n0, dtype=np.float64)    # stall watchdog
        self.watch_missed = np.zeros(n0, dtype=np.float64)
        self.bits_up = np.zeros(n0, dtype=np.float64)
        self.bits_down = np.zeros(n0, dtype=np.float64)
        self.bits_up_rep = np.zeros(n0, dtype=np.float64)
        self.bits_down_rep = np.zeros(n0, dtype=np.float64)
        self.report_phase = np.zeros(n0, dtype=np.float64)
        self.ever_incoming = np.zeros(n0, dtype=bool)
        self.public_addr = np.zeros(n0, dtype=bool)
        self.next_watch = np.zeros(n0, dtype=np.float64)
        self.is_contrib = np.zeros(n0, dtype=bool)   # contributor-class slot
        self.next_try = np.zeros(n0, dtype=np.float64)  # selection back-off

        self._free: List[int] = []
        self._next_session = 1
        self.sessions_spawned = 0

        # pending (re-)joins: a (time, user_id, attempt, intended_depart)
        # min-heap -- retries trickle in every step, so O(log n) pushes
        # beat re-sorting the whole queue
        self._pending_joins: List[Tuple[float, int, int, float]] = []
        self._program_endings: List[Tuple[float, float]] = []
        self._retries_by_user: Dict[int, int] = {}
        self._user_deadline: Dict[int, float] = {}

        # --- infrastructure slots --------------------------------------------
        self.n_servers = self.cfg.n_servers
        self._setup_servers()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def attach_obs(self, ctx) -> None:
        """Attach an observability context explicitly (double-attach guarded)."""
        if self._obs is not None:
            raise RuntimeError("fastsim is already instrumented")
        self._obs = ctx

    def detach_obs(self) -> None:
        """Remove instrumentation from this simulation."""
        self._obs = None

    def _mark_phase(self, name: str, t0: float) -> float:
        """Charge the wall-clock since ``t0`` to phase ``name``."""
        t1 = perf_counter()  # repro: noqa[DET002] opt-in phase-timing instrumentation only
        span = t1 - t0
        self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + span
        PHASE_TOTALS[name] = PHASE_TOTALS.get(name, 0.0) + span
        return t1

    # ------------------------------------------------------------------
    # setup helpers
    # ------------------------------------------------------------------
    def _setup_servers(self) -> None:
        cfg = self.cfg
        for i in range(self.n_servers):
            slot = i  # 0..n_servers-1 reserved
            self.state[slot] = _PLAYING
            self.cls[slot] = int(ConnectivityClass.SERVER)
            self.upload_slots[slot] = cfg.upload_slots(cfg.server_upload_bps)
            self.H[slot, :] = 0.0
            self.depart_at[slot] = np.inf
            self.public_addr[slot] = True
            self.is_contrib[slot] = True
        self._user_base = self.n_servers

    def _grow(self) -> None:
        new_cap = self._cap * 2
        for name in (
            "state", "cls", "upload_slots", "q", "start_idx", "joined_at",
            "ready_at", "depart_at", "user_id", "session_id", "attempt",
            "children", "cool_until", "due", "missed", "win_due",
            "win_missed", "watch_due", "watch_missed", "bits_up",
            "bits_down", "bits_up_rep", "bits_down_rep", "report_phase",
            "ever_incoming", "public_addr", "next_watch", "is_contrib",
            "next_try",
        ):
            old = getattr(self, name)
            grown = np.zeros(new_cap, dtype=old.dtype)
            if name == "depart_at":
                grown[:] = np.inf
            elif name == "ready_at":
                grown[:] = np.nan
            elif name in ("user_id", "session_id"):
                grown[:] = -1
            grown[: self._cap] = old
            setattr(self, name, grown)
        H = np.full((new_cap, self.k), -1.0)
        H[: self._cap] = self.H
        self.H = H
        parent = np.full((new_cap, self.k), -1, dtype=np.int64)
        parent[: self._cap] = self.parent
        self.parent = parent
        self._cap = new_cap

    def _alloc_slots(self, n: int) -> np.ndarray:
        """Allocate ``n`` slots: free-list (LIFO) first, then the lowest
        EMPTY slots beyond the servers, growing when exhausted -- the same
        order a one-at-a-time allocation produces, so slot numbering (and
        with it every logged node_id) is independent of batch boundaries
        and of the capacity hint."""
        out: List[int] = []
        while self._free and len(out) < n:
            out.append(self._free.pop())
        need = n - len(out)
        if need:
            if out:
                # reserve the free-list slots (still EMPTY) against the scan
                self.state[np.asarray(out, dtype=np.int64)] = _LEFT
            empties = np.nonzero(self.state[self.n_servers:] == _EMPTY)[0]
            while empties.size < need:
                self._grow()
                empties = np.nonzero(self.state[self.n_servers:] == _EMPTY)[0]
            out.extend(int(e) + self.n_servers for e in empties[:need])
        return np.asarray(out, dtype=np.int64)

    # ------------------------------------------------------------------
    # workload API
    # ------------------------------------------------------------------
    def add_arrivals(
        self,
        arrival_times: np.ndarray,
        intended_durations: np.ndarray,
        *,
        user_id_base: int = 0,
    ) -> None:
        """Register a batch of users (their first join attempts)."""
        times = np.asarray(arrival_times, dtype=float)
        durs = np.asarray(intended_durations, dtype=float)
        if times.shape != durs.shape:
            raise ValueError("arrival_times and intended_durations must align")
        for i, (t, d) in enumerate(zip(times, durs)):
            self._pending_joins.append(
                (float(t), user_id_base + i, 1, float(t + d))
            )
        heapq.heapify(self._pending_joins)

    def add_program_ending(self, time_s: float, leave_probability: float) -> None:
        """Schedule a program-end departure wave."""
        self._program_endings.append((float(time_s), float(leave_probability)))
        self._program_endings.sort(reverse=True)

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def _activity(self, slot: int, event: ActivityEvent,
                  reason: Optional[LeaveReason] = None) -> None:
        self.log.receive_report(self.now, ActivityReport(
            time=self.now, node_id=int(slot) + 100_000,
            user_id=int(self.user_id[slot]),
            session_id=int(self.session_id[slot]),
            event=event, attempt=int(self.attempt[slot]),
            address_public=bool(self.public_addr[slot]), reason=reason,
        ))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _retry_deadline(self, uid: int) -> float:
        """Departure deadline for a retry attempt (the NaN sentinel in the
        pending-joins queue).  A retry can only be queued by a leave that
        happened *after* the user's first spawn recorded its deadline, so
        a missing entry means the queue and the deadline bookkeeping are
        out of sync -- fail loudly instead of inventing a deadline."""
        try:
            return self._user_deadline[uid]
        except KeyError:
            raise RuntimeError(
                f"retry for user {uid} has no recorded departure deadline; "
                "_pending_joins and _user_deadline are out of sync"
            ) from None

    def _spawn_batch(self, uids: np.ndarray, atts: np.ndarray,
                     departs: np.ndarray) -> None:
        """Activate a batch of (re-)joining users in one shot."""
        n = int(uids.size)
        if n == 0:
            return
        slots = self._alloc_slots(n)
        rng = self._rng
        cfg = self.cfg
        classes = np.fromiter(
            (int(c) for c in self.mix.sample_many(n, rng)),
            dtype=np.int64, count=n,
        )
        ups = self.capacity_model.sample_uploads(
            [ConnectivityClass(int(c)) for c in classes], rng
        )
        self.state[slots] = _JOINING
        self.cls[slots] = classes
        self.upload_slots[slots] = ups / cfg.substream_rate_bps
        self.H[slots, :] = -1.0
        self.parent[slots, :] = -1
        self.q[slots] = 0.0
        self.start_idx[slots] = 0.0
        self.joined_at[slots] = self.now
        self.ready_at[slots] = np.nan
        self.depart_at[slots] = departs
        self.user_id[slots] = uids
        self.session_id[slots] = np.arange(
            self._next_session, self._next_session + n, dtype=np.int64
        )
        self.attempt[slots] = atts
        self.children[slots] = 0
        self.cool_until[slots] = 0.0
        for arr in (self.due, self.missed, self.win_due, self.win_missed,
                    self.watch_due, self.watch_missed, self.bits_up,
                    self.bits_down, self.bits_up_rep, self.bits_down_rep):
            arr[slots] = 0.0
        self.report_phase[slots] = rng.uniform(
            0, cfg.status_report_period_s, n
        )
        self.ever_incoming[slots] = False
        self.public_addr[slots] = np.isin(classes, (
            int(ConnectivityClass.DIRECT), int(ConnectivityClass.FIREWALL),
        ))
        self.next_watch[slots] = self.now + cfg.stall_window_s
        self.is_contrib[slots] = np.isin(classes, list(_CONTRIBUTOR))
        self.next_try[slots] = 0.0
        self._next_session += n
        self.sessions_spawned += n
        for slot in slots:
            self._activity(int(slot), ActivityEvent.JOIN)
        if self._obs is not None:
            self._obs.registry.counter("fastsim.joins").inc(n)

    def _leave_batch(self, slots: np.ndarray, reason: LeaveReason, *,
                     silent: Optional[np.ndarray] = None,
                     retry: bool = True) -> None:
        """Remove a batch of peers; one scatter per bookkeeping array."""
        live = (self.state[slots] != _EMPTY) & (self.state[slots] != _LEFT)
        slots = slots[live]
        if silent is not None:
            silent = silent[live]
        if slots.size == 0:
            return
        # release our own subscriptions (parents regain child capacity)
        par = self.parent[slots, :]
        held = par[par >= 0]
        if held.size:
            self.children -= np.bincount(held, minlength=self._cap)
        # orphan the children: their parent pointer dies; adaptation deals
        leaving = np.zeros(self._cap, dtype=bool)
        leaving[slots] = True
        orphan = (self.parent >= 0) & leaving[np.maximum(self.parent, 0)]
        self.parent[orphan] = -1
        self.children[slots] = 0
        uids = self.user_id[slots]
        atts = self.attempt[slots]
        if self._obs is not None:
            reg = self._obs.registry
            reg.counter("fastsim.leaves").inc(int(slots.size))
            reg.counter(f"fastsim.leaves.{reason.name.lower()}").inc(
                int(slots.size))
        if silent is None:
            loud = slots
        else:
            loud = slots[~silent]
        for slot in loud:
            self._activity(int(slot), ActivityEvent.LEAVE, reason)
        self.state[slots] = _EMPTY
        self.parent[slots, :] = -1
        self.depart_at[slots] = np.inf
        self._free.extend(int(s) for s in slots)
        if retry and reason in (LeaveReason.IMPATIENCE, LeaveReason.FAILURE):
            draws = self._rng.random(slots.size)
            for i in range(slots.size):
                att = int(atts[i])
                if att > self.cfg.max_join_retries:
                    continue
                uid = int(uids[i])
                self._retries_by_user[uid] = (
                    self._retries_by_user.get(uid, 0) + 1
                )
                backoff = self.cfg.retry_backoff_s * (0.5 + float(draws[i]))
                # keep the user's original departure deadline
                heapq.heappush(
                    self._pending_joins,
                    (self.now + backoff, uid, att + 1, float("nan")),
                )

    # ------------------------------------------------------------------
    # parent selection
    # ------------------------------------------------------------------
    def _candidate_pool(self) -> np.ndarray:
        """Slots usable as parents this step."""
        return np.nonzero(
            ((self.state == _PLAYING) | (self.state == _BUFFERING))
        )[0]

    def _sample_candidate_matrix(
        self, slots: np.ndarray, pool: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sample a ``(len(slots), candidates_per_try)`` candidate-parent
        matrix plus its validity mask (the per-peer effective partner set
        for this attempt): reachable, below the children cap, not self."""
        fast = self.fast
        cfg = self.cfg
        rng = self._rng
        n_cand = min(fast.candidates_per_try, pool.size)
        cand = pool[rng.integers(0, pool.size, size=(slots.size, n_cand))]
        # reachability: contributor classes always; NAT/firewall rarely
        reach = self.is_contrib[cand] | (
            rng.random(cand.shape) < fast.nat_parent_prob
        )
        # capacity gate: parents at their children cap reject (M partners)
        max_children = cfg.max_partners * self.k * fast.max_children_factor
        server_cap = cfg.server_max_partners * self.k
        caps = np.where(
            self.cls[cand] == int(ConnectivityClass.SERVER),
            server_cap, max_children,
        )
        valid = reach & (self.children[cand] < caps) & (cand != slots[:, None])
        return cand, valid

    def _select_parents_batch(
        self,
        slots: np.ndarray,
        want: np.ndarray,
        cand: np.ndarray,
        valid: np.ndarray,
        best_head: np.ndarray,
    ) -> np.ndarray:
        """Fill the wanted ``(peer, sub-stream)`` pairs from the sampled
        candidate matrix in one batch; returns per-peer filled counts.

        Each pair draws a random key per candidate, masks out candidates
        failing the buffer-window and Inequality-(2) filters, and takes
        the argmax key (= uniform choice among the survivors).  Children
        caps are then enforced across the whole batch: contenders are
        randomly permuted, argsort-grouped by chosen parent, ranked
        within their group, and accepted while the parent has capacity
        left -- so no parent ever exceeds its cap, and which contenders
        win under contention is uniform."""
        cfg = self.cfg
        n, n_cand = cand.shape
        k = self.k
        heads = self.H[cand, :]                        # (n, C, k)
        need = self.H[slots, :]                        # (n, k)
        # Inequality (2) as a selection filter: a qualified parent's head
        # on the sub-stream must be within T_p of the best head among the
        # candidate (partner) set -- this is what keeps starved peers from
        # being chosen as parents even though capacity itself is ignored
        ok = (
            valid[:, :, None]
            & want[:, None, :]
            & (heads >= need[:, None, :])
            & (need[:, None, :] + 1.0 >= heads - cfg.buffer_seconds + 1.0)
            & (best_head[:, None, None] - heads < cfg.tp_seconds)
        )
        keys = np.where(ok, self._rng.random((n, n_cand, k)), -1.0)
        ci = keys.argmax(axis=1)                       # (n, k) winning column
        got = np.take_along_axis(keys, ci[:, None, :], axis=1)[:, 0, :] > -0.5
        rows, subs = np.nonzero(got)
        if rows.size == 0:
            return np.zeros(n, dtype=np.int64)
        par = cand[rows, ci[rows, subs]]
        caps = np.where(
            self.cls[par] == int(ConnectivityClass.SERVER),
            cfg.server_max_partners * k,
            cfg.max_partners * k * self.fast.max_children_factor,
        )
        contend = self._rng.permutation(rows.size)
        order = np.argsort(par[contend], kind="stable")
        picked = contend[order]                        # grouped by parent
        par_g = par[picked]
        idx = np.arange(par_g.size)
        group_first = np.ones(par_g.size, dtype=bool)
        group_first[1:] = par_g[1:] != par_g[:-1]
        rank = idx - np.maximum.accumulate(np.where(group_first, idx, 0))
        accepted = picked[self.children[par_g] + rank < caps[picked]]
        if accepted.size == 0:
            return np.zeros(n, dtype=np.int64)
        a_rows = rows[accepted]
        a_subs = subs[accepted]
        a_par = par[accepted]
        a_slots = slots[a_rows]
        old = self.parent[a_slots, a_subs]
        has_old = old >= 0
        if has_old.any():
            self.children -= np.bincount(old[has_old], minlength=self._cap)
        self.parent[a_slots, a_subs] = a_par
        self.children += np.bincount(a_par, minlength=self._cap)
        # classifier signal: a contributor-class parent got this child
        # through an *incoming* partnership (the child initiated); a
        # NAT/firewall parent could only be reached over a partnership
        # it initiated itself, so it earns no incoming credit
        contrib = self.is_contrib[a_par]
        if contrib.any():
            self.ever_incoming[a_par[contrib]] = True
        if self._obs is not None:
            self._obs.registry.counter("fastsim.parent_selections").inc(
                int(accepted.size))
        return np.bincount(a_rows, minlength=n)

    # ------------------------------------------------------------------
    # the step
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the simulation by one time step."""
        _obs = self._obs
        _t0 = perf_counter() if _obs is not None else 0.0  # repro: noqa[DET002] obs step-timer instrumentation only
        timing = self.phase_timing
        _pt = perf_counter() if timing else 0.0  # repro: noqa[DET002] opt-in phase-timing instrumentation only
        dt = self.fast.dt
        cfg = self.cfg
        k = self.k
        now = self.now
        rng = self._rng

        # 1. arrivals / retries -------------------------------------------------
        if self._pending_joins and self._pending_joins[0][0] <= now:
            uids: List[int] = []
            atts: List[int] = []
            deps: List[float] = []
            while self._pending_joins and self._pending_joins[0][0] <= now:
                _t, uid, att, depart = heapq.heappop(self._pending_joins)
                if np.isnan(depart):
                    depart = self._retry_deadline(uid)
                else:
                    self._user_deadline[uid] = depart
                if depart <= now:
                    continue  # watch window already over
                uids.append(uid)
                atts.append(att)
                deps.append(depart)
            if uids:
                self._spawn_batch(
                    np.asarray(uids, dtype=np.int64),
                    np.asarray(atts, dtype=np.int64),
                    np.asarray(deps, dtype=np.float64),
                )
        if timing:
            _pt = self._mark_phase("arrivals", _pt)

        # 2. join pipeline -----------------------------------------------------
        joining = np.nonzero(self.state == _JOINING)[0]
        pool = self._candidate_pool()
        if joining.size:
            eligible = joining[
                (now - self.joined_at[joining] >= self.fast.join_overhead_s)
                & (now >= self.next_try[joining])
            ]
            if eligible.size and pool.size == 0:
                self.next_try[eligible] = now + cfg.bm_exchange_period_s
            elif eligible.size:
                cand, valid = self._sample_candidate_matrix(eligible, pool)
                has_cand = valid.any(axis=1)
                self.next_try[eligible[~has_cand]] = (
                    now + cfg.bm_exchange_period_s
                )
                sel = eligible[has_cand]
                if sel.size:
                    cand = cand[has_cand]
                    valid = valid[has_cand]
                    # best head among this attempt's candidate set
                    headmax = np.where(
                        valid, self.H[cand, :].max(axis=2), -np.inf
                    ).max(axis=1)
                    # Section IV.A: offset = (max head among partners) - T_p;
                    # peers whose candidates hold no data yet wait for a
                    # better sample (no back-off: the pool is still warming)
                    need_offset = self.H[sel, 0] < 0.0
                    usable = ~(need_offset & (headmax < 0.0))
                    sel = sel[usable]
                    cand = cand[usable]
                    valid = valid[usable]
                    headmax = headmax[usable]
                    need_offset = need_offset[usable]
                if sel.size:
                    if need_offset.any():
                        off_rows = sel[need_offset]
                        start = np.maximum(
                            0.0, headmax[need_offset] - cfg.tp_seconds
                        )
                        self.H[off_rows, :] = (start - 1.0)[:, None]
                        self.start_idx[off_rows] = start
                        self.q[off_rows] = start
                    want = self.parent[sel, :] < 0
                    filled = self._select_parents_batch(
                        sel, want, cand, valid, headmax
                    )
                    hooked = sel[filled > 0]
                    if hooked.size:
                        self.state[hooked] = _BUFFERING
                        for slot in hooked:
                            self._activity(
                                int(slot), ActivityEvent.START_SUBSCRIPTION)
                    short = sel[filled < want.sum(axis=1)]
                    self.next_try[short] = now + cfg.bm_exchange_period_s
        if timing:
            _pt = self._mark_phase("join", _pt)

        # 3. rates ------------------------------------------------------------------
        active = (self.state == _BUFFERING) | (self.state == _PLAYING)
        conn = self.parent >= 0  # (N, K) live connections
        conn &= active[:, None]
        any_conn = bool(conn.any())
        if any_conn:
            rows, cols = conn.nonzero()
            pidx = self.parent[rows, cols]
            lag = self.H[pidx, cols] - self.H[rows, cols]
            c = self.fast.catchup_factor
            is_catchup = lag > 0.5
            # max-min fair share with two demand tiers (1 and c) has a
            # closed form per parent: water level L solves
            #   sum min(demand_i, L) = capacity
            n1 = np.bincount(pidx[~is_catchup], minlength=self._cap)
            nc = np.bincount(pidx[is_catchup], minlength=self._cap)
            cap_p = self.upload_slots
            n_tot = n1 + nc
            with np.errstate(divide="ignore", invalid="ignore"):
                # tier 1: everyone below demand 1 -> L = cap / n_tot
                level_low = np.where(n_tot > 0, cap_p / n_tot, 0.0)
                # tier 2: demand-1 conns saturated -> L = (cap - n1) / nc
                level_high = np.where(nc > 0, (cap_p - n1) / nc, np.inf)
            level = np.where(level_low <= 1.0, level_low,
                             np.minimum(level_high, c))
            conn_level = level[pidx]
            rate_flat = np.where(is_catchup, np.minimum(conn_level, c),
                                 np.minimum(conn_level, 1.0))
            rate_flat = np.maximum(0.0, rate_flat)
        if timing:
            _pt = self._mark_phase("rates", _pt)

        # 4. advance heads ------------------------------------------------------------
        H_prev = self.H.copy()
        if any_conn:
            target_cap = H_prev[pidx, cols]          # one-step-lagged parent head
            floor = target_cap - cfg.buffer_seconds + 1.0  # cache window
            newH = self.H[rows, cols] + rate_flat * dt
            newH = np.minimum(newH, target_cap)
            # fast-forward over evicted blocks; charge the hole as missed,
            # but only the part the playout pointer has not already charged
            jumped = np.maximum(0.0, floor - np.maximum(newH, self.q[rows]))
            hole = np.bincount(rows, weights=jumped, minlength=self._cap)
            self.missed += hole
            self.win_missed += hole
            self.watch_missed += hole
            newH = np.maximum(newH, floor)
            # account downloaded bits / uploaded bits
            delivered = np.maximum(0.0, newH - self.H[rows, cols])
            self.bits_down += cfg.block_bits * np.bincount(
                rows, weights=delivered, minlength=self._cap)
            self.bits_up += cfg.block_bits * np.bincount(
                pidx, weights=delivered, minlength=self._cap)
            self.H[rows, cols] = newH
        # servers track the live edge directly (fed by the source off-model)
        edge = max(0.0, (now + dt) - 1.0)
        self.H[: self.n_servers, :] = edge
        if timing:
            _pt = self._mark_phase("heads", _pt)

        # 5. playback -----------------------------------------------------------------
        playing = self.state == _PLAYING
        if playing.any():
            prows = np.nonzero(playing)[0]
            q_prev = self.q[prows]
            q_new = q_prev + dt
            self.q[prows] = q_new
            # per sub-stream: time in (q_prev, q_new] not covered by the head
            heads = self.H[prows, :]
            miss = np.clip(
                q_new[:, None] - np.maximum(heads, q_prev[:, None]), 0.0, dt
            ).sum(axis=1)
            due = dt * k
            self.due[prows] += due
            self.missed[prows] += miss
            self.win_due[prows] += due
            self.win_missed[prows] += miss
            self.watch_due[prows] += due
            self.watch_missed[prows] += miss
        if timing:
            _pt = self._mark_phase("playback", _pt)

        # 6. ready check --------------------------------------------------------------
        buffering = np.nonzero(self.state == _BUFFERING)[0]
        if buffering.size:
            combined = self.H[buffering, :].min(axis=1) + 1.0
            ready = combined - self.start_idx[buffering] >= cfg.player_buffer_s
            ready_rows = buffering[ready]
            if ready_rows.size:
                self.state[ready_rows] = _PLAYING
                self.ready_at[ready_rows] = now
                self.q[ready_rows] = self.start_idx[ready_rows]
                for slot in ready_rows:
                    self._activity(int(slot), ActivityEvent.PLAYER_READY)
        if timing:
            _pt = self._mark_phase("ready", _pt)

        # 7. adaptation ---------------------------------------------------------------
        # each peer re-evaluates Inequalities (1)/(2) once per buffer-map
        # exchange period (the event that carries partner heads in the
        # detailed engine), phase-staggered by slot -- not on every dt
        act = np.nonzero(active)[0]
        adapt_every = max(1, int(round(cfg.bm_exchange_period_s / dt)))
        if adapt_every > 1 and act.size:
            act = act[(act + self.steps_run) % adapt_every == 0]
        if act.size:
            heads = self.H[act, :]
            best = heads.max(axis=1, keepdims=True)
            lag_bad = (best - heads) >= cfg.ts_seconds          # Inequality (1)
            par = self.parent[act, :]
            has_parent = par >= 0
            par_safe = np.maximum(par, 0)
            pstate = np.where(has_parent, self.state[par_safe], _EMPTY)
            parent_dead = has_parent & ~(
                (pstate == _PLAYING) | (pstate == _BUFFERING)
            )
            # Inequality (2): parent head lags the best head among the
            # node's partners.  A node's partner set is a random sample of
            # the population, so its best head is statistically close to an
            # upper quantile of the population's heads; we use that quantile
            # (plus the node's own local view) as the vectorizable stand-in
            # for "best partner head".  Without the population term, whole
            # sub-trees under an oversubscribed parent would drift behind
            # uniformly and never trigger adaptation -- which the real
            # protocol's BM exchange does not allow.
            phead = np.where(
                has_parent,
                self.H[par_safe, np.arange(self.k)[None, :]],
                -np.inf,
            )
            peer_best = best[act >= self.n_servers, 0]
            if peer_best.size >= 4:
                # 75th-percentile stand-in via O(n) partition (nearest-rank;
                # the threshold is a heuristic, interpolation adds nothing)
                q = int(0.75 * (peer_best.size - 1))
                population_ref = float(np.partition(peer_best, q)[q])
            else:
                population_ref = -np.inf
            local_best = np.maximum(phead.max(axis=1), best[:, 0])
            local_best = np.maximum(local_best, population_ref)
            ineq2_bad = (local_best[:, None] - phead) >= cfg.tp_seconds
            ineq2_bad &= has_parent
            need_fix = (lag_bad & has_parent) | parent_dead | ineq2_bad | ~has_parent
            if _obs is not None:
                reg = _obs.registry
                reg.counter("fastsim.ineq1_violations").inc(
                    int((lag_bad & has_parent).sum())
                )
                reg.counter("fastsim.ineq2_violations").inc(int(ineq2_bad.sum()))
                reg.counter("fastsim.dead_parent_links").inc(int(parent_dead.sum()))
            rows_fix = np.nonzero(need_fix.any(axis=1))[0]
            if rows_fix.size:
                slots_fix = act[rows_fix]
                forced = (
                    parent_dead[rows_fix] | ~has_parent[rows_fix]
                ).any(axis=1)
                # forced re-selection honours the bm-exchange back-off,
                # voluntary adaptation the T_a cool-down
                open_now = np.where(
                    forced,
                    now >= self.next_try[slots_fix],
                    now >= self.cool_until[slots_fix],
                )
                rows_fix = rows_fix[open_now]
                slots_fix = slots_fix[open_now]
                forced = forced[open_now]
            if rows_fix.size:
                want = need_fix[rows_fix]
                vol = np.nonzero(~forced)[0]
                if vol.size:
                    # voluntary adaptation: one sub-stream per cool-down --
                    # the one lagging its row's best head the most
                    gap = np.where(
                        want[vol],
                        best[rows_fix[vol], 0][:, None] - heads[rows_fix[vol], :],
                        -np.inf,
                    )
                    worst = gap.argmax(axis=1)
                    single = np.zeros_like(want[vol])
                    single[np.arange(vol.size), worst] = True
                    want[vol] = single
                    self.cool_until[slots_fix[vol]] = now + cfg.ta_seconds
                # release the parents being replaced before re-selecting
                wr, wc = np.nonzero(want)
                rel = self.parent[slots_fix[wr], wc]
                rel = rel[rel >= 0]
                if rel.size:
                    self.children -= np.bincount(rel, minlength=self._cap)
                self.parent[slots_fix[wr], wc] = -1
                if pool.size:
                    cand, valid = self._sample_candidate_matrix(
                        slots_fix, pool)
                    headmax = np.where(
                        valid, self.H[cand, :].max(axis=2), -np.inf
                    ).max(axis=1)
                    filled = self._select_parents_batch(
                        slots_fix, want, cand, valid, headmax)
                else:
                    filled = np.zeros(slots_fix.size, dtype=np.int64)
                short = slots_fix[filled < want.sum(axis=1)]
                self.next_try[short] = now + cfg.bm_exchange_period_s
                if _obs is not None:
                    _obs.registry.counter("fastsim.adaptations").inc(
                        int(rows_fix.size))
        if timing:
            _pt = self._mark_phase("adaptation", _pt)

        # 8. departures ----------------------------------------------------------------
        active_or_joining = self.state != _EMPTY
        active_or_joining[: self.n_servers] = False
        # scheduled departures
        due_leave = np.nonzero(active_or_joining & (self.depart_at <= now))[0]
        if due_leave.size:
            silent = rng.random(due_leave.size) < 0.1
            self._leave_batch(due_leave, LeaveReason.NORMAL,
                              silent=silent, retry=False)
        # program endings
        while self._program_endings and self._program_endings[-1][0] <= now:
            _t, prob = self._program_endings.pop()
            watchers = np.nonzero(
                (self.state == _PLAYING) | (self.state == _BUFFERING)
            )[0]
            watchers = watchers[watchers >= self.n_servers]
            if watchers.size:
                going = watchers[rng.random(watchers.size) < prob]
                for uid in self.user_id[going]:
                    self._user_deadline[int(uid)] = now
                self._leave_batch(going, LeaveReason.PROGRAM_END, retry=False)
        # patience
        waiting = (self.state == _JOINING) | (self.state == _BUFFERING)
        waiting[: self.n_servers] = False
        impatient = np.nonzero(
            waiting & (now - self.joined_at > cfg.join_patience_s)
        )[0]
        if impatient.size:
            self._leave_batch(impatient, LeaveReason.IMPATIENCE)
        # stall watchdog
        players = np.nonzero(self.state == _PLAYING)[0]
        players = players[players >= self.n_servers]
        if players.size:
            check = players[self.next_watch[players] <= now]
            if check.size:
                self.next_watch[check] = now + cfg.stall_window_s
                wdue = self.watch_due[check]
                wmiss = self.watch_missed[check]
                with np.errstate(divide="ignore", invalid="ignore"):
                    cont = np.where(wdue > 0, 1.0 - wmiss / wdue, 1.0)
                stalled = check[(wdue > 0) & (cont < cfg.stall_exit_continuity)]
                self.watch_due[check] = 0.0
                self.watch_missed[check] = 0.0
                if stalled.size:
                    self._leave_batch(stalled, LeaveReason.FAILURE)
        if timing:
            _pt = self._mark_phase("departures", _pt)

        # 9. status reports ---------------------------------------------------------------
        period = cfg.status_report_period_s
        alive = np.nonzero(active_or_joining & (self.state != _EMPTY))[0]
        if alive.size:
            fires = alive[
                (np.floor((now - self.joined_at[alive] + self.report_phase[alive]) / period)
                 > np.floor((now - dt - self.joined_at[alive] + self.report_phase[alive]) / period))
                & (now - self.joined_at[alive] >= dt)
            ]
            for slot in fires:
                self._send_status(int(slot))
        if timing:
            self._mark_phase("reports", _pt)

        self.now = now + dt
        self.steps_run += 1
        if _obs is not None:
            dur = perf_counter() - _t0  # repro: noqa[DET002] obs step-timer instrumentation only
            reg = _obs.registry
            reg.counter("fastsim.steps").inc()
            reg.counter("fastsim.peers_stepped").inc(int(active.sum()))
            reg.timer("fastsim.step_s").observe(dur)
            live = self.concurrent_users
            reg.gauge("fastsim.live_peers").set(live)
            reg.gauge("fastsim.live_peers_max").max(live)
            if _obs.trace is not None:
                _obs.trace.complete("fastsim.step", _obs.trace.rel_us(_t0),
                                    dur * 1e6, cat="fastsim", sim_time=self.now)
            if _obs.progress is not None:
                _obs.progress.maybe_beat(self.now, self.steps_run, "steps")

    def _send_status(self, slot: int) -> None:
        cfg = self.cfg
        header = dict(
            time=self.now, node_id=slot + 100_000,
            user_id=int(self.user_id[slot]),
            session_id=int(self.session_id[slot]),
        )
        cont = None
        if self.win_due[slot] > 0:
            cont = float(1.0 - self.win_missed[slot] / self.win_due[slot])
            cont = max(0.0, min(1.0, cont))
        self.log.receive_report(self.now, QoSReport(
            **header, continuity=cont,
            buffered_seconds=float(self.H[slot].min() + 1.0 - self.q[slot]),
            n_parents=int((self.parent[slot] >= 0).sum()),
            playing=bool(self.state[slot] == _PLAYING),
        ))
        self.win_due[slot] = 0.0
        self.win_missed[slot] = 0.0
        self.log.receive_report(self.now, TrafficReport(
            **header,
            bytes_up=float(self.bits_up[slot] - self.bits_up_rep[slot]) / 8.0,
            bytes_down=float(self.bits_down[slot] - self.bits_down_rep[slot]) / 8.0,
            total_up=float(self.bits_up[slot]) / 8.0,
            total_down=float(self.bits_down[slot]) / 8.0,
        ))
        self.bits_up_rep[slot] = self.bits_up[slot]
        self.bits_down_rep[slot] = self.bits_down[slot]
        # partner report: fastsim tracks direction via ever_incoming (set
        # when a contributor-class node accepts a child's partnership)
        n_in = 1 if self.ever_incoming[slot] else 0
        self.log.receive_report(self.now, PartnerReport(
            **header, events=(),
            n_partners=int((self.parent[slot] >= 0).sum()) + int(self.children[slot] > 0),
            n_incoming=n_in,
            n_outgoing=int((self.parent[slot] >= 0).sum()),
        ))

    # ------------------------------------------------------------------
    def run(self, until: float) -> None:
        """Step until ``self.now >= until``."""
        while self.now < until:
            self.step()

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def concurrent_users(self) -> int:
        """Alive user peers right now."""
        mask = self.state != _EMPTY
        mask[: self.n_servers] = False
        return int(mask.sum())

    @property
    def playing_users(self) -> int:
        """User peers currently in the PLAYING state."""
        mask = self.state == _PLAYING
        mask[: self.n_servers] = False
        return int(mask.sum())

    def mean_continuity(self) -> float:
        """Mean lifetime continuity over playing peers."""
        mask = (self.state == _PLAYING) & (self.due > 0)
        mask[: self.n_servers] = False
        if not mask.any():
            return float("nan")
        return float((1.0 - self.missed[mask] / self.due[mask]).mean())

    def retry_histogram(self) -> Dict[int, int]:
        """retries -> user count, from the retry bookkeeping."""
        hist: Dict[int, int] = {}
        seen_users = set()
        for uid, retries in self._retries_by_user.items():
            hist[retries] = hist.get(retries, 0) + 1
            seen_users.add(uid)
        zero = len(self._user_deadline) - len(seen_users)
        if zero > 0:
            hist[0] = hist.get(0, 0) + zero
        return hist
