"""Vectorized large-scale engine.

The reference engine (:mod:`repro.core`) simulates the protocol
faithfully but spends Python-level work per node per tick; it tops out
around a few thousand concurrent peers.  :class:`FastSimulation` trades
message-level fidelity for NumPy-vectorized state -- every per-peer,
per-sub-stream quantity lives in a flat array and one time step is a
handful of O(N*K) array operations (see the HPC guide's vectorization
rules) -- and scales to tens of thousands of concurrent peers, enough to
reproduce the day-long Fig. 5 curves and the Fig. 9 sweeps at meaningful
sizes.

Fidelity contract (checked by the cross-validation tests): both engines
implement the same protocol semantics -- sub-stream heads capped by the
parent's previous-step head, demand-proportional upload sharing,
Inequality-(1)/(2) adaptation with cool-down, the ``m - T_p`` join offset,
patience/stall departures with retries, and 5-minute telemetry to the
same :class:`~repro.telemetry.server.LogServer` format.
"""

from repro.fastsim.engine import FastSimulation, FastSimConfig

__all__ = ["FastSimulation", "FastSimConfig"]
