"""Report dataclasses: the payloads peers send to the log server.

Section V.A defines two classes of report.  *Activity reports* (join,
start-subscription, media-player-ready, leave) are sent immediately when
the event occurs.  *Status reports* are sent every five minutes and come in
three types: QoS (perceived quality, e.g. fraction of video missing at the
playback deadline), traffic (bytes up/down) and partner (a compact series
of partner add/drop activities, batched to reduce log-server load).

Every report can serialize itself to the flat ``name=value`` dictionary
used by the log-string codec, and be parsed back.  ``session_id`` ties the
four activity events of one session together; ``user_id`` ties a user's
retry sessions together (Fig. 10b).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import ClassVar, Dict, Optional, Type
from urllib.parse import quote

from .logstring import LOG_PATH, encode_log_string

__all__ = [
    "ActivityEvent",
    "LeaveReason",
    "Report",
    "ActivityReport",
    "QoSReport",
    "TrafficReport",
    "PartnerOp",
    "PartnerEvent",
    "PartnerReport",
    "parse_report",
]


class ActivityEvent(str, enum.Enum):
    """The four session events of Section V.C."""

    JOIN = "join"
    START_SUBSCRIPTION = "sub"
    PLAYER_READY = "ready"
    LEAVE = "leave"


class LeaveReason(str, enum.Enum):
    """Why a session ended (ours; the paper infers this from durations)."""

    NORMAL = "normal"          # user chose to stop watching
    PROGRAM_END = "prog_end"   # broadcast ended (the 22:00 drop of Fig. 5b)
    IMPATIENCE = "impatience"  # gave up before the player became ready
    FAILURE = "failure"        # abrupt disconnect (no leave report reaches
                               # the server in this case -- see NodeReporter)


@dataclass(frozen=True)
class Report:
    """Common report header."""

    time: float
    node_id: int
    user_id: int
    session_id: int

    TYPE: ClassVar[str] = "?"

    def _header(self) -> Dict[str, str]:
        return {
            "type": self.TYPE,
            "t": f"{self.time:.3f}",
            "node": str(self.node_id),
            "user": str(self.user_id),
            "sess": str(self.session_id),
        }

    def to_params(self) -> Dict[str, str]:
        """Serialize to the flat ``name=value`` parameter dict."""
        raise NotImplementedError

    def to_log_string(self) -> str:
        """Encode straight to the wire log string.

        Always equals ``encode_log_string(self.to_params())``; subclasses
        whose fields are unreserved-only override this with a direct
        f-string build -- reports are emitted millions of times at
        paper scale, and skipping the dict round-trip is a measurable
        win on the simulation hot path.
        """
        return encode_log_string(self.to_params())

    def _header_str(self) -> str:
        # the f-string twin of _header() -- keep the two in sync
        return (f"{LOG_PATH}?type={self.TYPE}&t={self.time:.3f}"
                f"&node={self.node_id}&user={self.user_id}"
                f"&sess={self.session_id}")


@dataclass(frozen=True)
class ActivityReport(Report):
    """Immediate join / start-subscription / player-ready / leave report."""

    event: ActivityEvent = ActivityEvent.JOIN
    attempt: int = 1                      # 1-based join attempt (retries)
    address_public: bool = True           # what the client can see locally
    reason: Optional[LeaveReason] = None  # only for LEAVE

    TYPE: ClassVar[str] = "act"

    def to_params(self) -> Dict[str, str]:
        """Serialize to the flat ``name=value`` parameter dict."""
        params = self._header()
        params["ev"] = self.event.value
        params["try"] = str(self.attempt)
        params["pub"] = "1" if self.address_public else "0"
        if self.reason is not None:
            params["why"] = self.reason.value
        return params

    def to_log_string(self) -> str:
        """Direct wire encoding (== ``encode_log_string(to_params())``)."""
        s = (f"{self._header_str()}&ev={self.event.value}"
             f"&try={self.attempt}&pub={'1' if self.address_public else '0'}")
        if self.reason is not None:
            s = f"{s}&why={self.reason.value}"
        return s

    @classmethod
    def from_params(cls, p: Dict[str, str]) -> "ActivityReport":
        """Parse back from a decoded parameter dict."""
        return cls(
            time=float(p["t"]), node_id=int(p["node"]), user_id=int(p["user"]),
            session_id=int(p["sess"]), event=ActivityEvent(p["ev"]),
            attempt=int(p.get("try", "1")),
            address_public=p.get("pub", "1") == "1",
            reason=LeaveReason(p["why"]) if "why" in p else None,
        )


@dataclass(frozen=True)
class QoSReport(Report):
    """Perceived quality over the last report window.

    ``continuity`` is the window continuity index (``None`` when no blocks
    came due yet -- the client omits the field, as a player that has not
    started has no playback quality to report).
    """

    continuity: Optional[float] = None
    buffered_seconds: float = 0.0
    n_parents: int = 0
    playing: bool = False

    TYPE: ClassVar[str] = "qos"

    def to_params(self) -> Dict[str, str]:
        """Serialize to the flat ``name=value`` parameter dict."""
        params = self._header()
        if self.continuity is not None:
            params["ci"] = f"{self.continuity:.5f}"
        params["buf"] = f"{self.buffered_seconds:.2f}"
        params["par"] = str(self.n_parents)
        params["play"] = "1" if self.playing else "0"
        return params

    def to_log_string(self) -> str:
        """Direct wire encoding (== ``encode_log_string(to_params())``)."""
        ci = "" if self.continuity is None else f"&ci={self.continuity:.5f}"
        return (f"{self._header_str()}{ci}"
                f"&buf={self.buffered_seconds:.2f}&par={self.n_parents}"
                f"&play={'1' if self.playing else '0'}")

    @classmethod
    def from_params(cls, p: Dict[str, str]) -> "QoSReport":
        """Parse back from a decoded parameter dict."""
        return cls(
            time=float(p["t"]), node_id=int(p["node"]), user_id=int(p["user"]),
            session_id=int(p["sess"]),
            continuity=float(p["ci"]) if "ci" in p else None,
            buffered_seconds=float(p.get("buf", "0")),
            n_parents=int(p.get("par", "0")),
            playing=p.get("play", "0") == "1",
        )


@dataclass(frozen=True)
class TrafficReport(Report):
    """Bytes moved since the previous traffic report (plus totals)."""

    bytes_up: float = 0.0
    bytes_down: float = 0.0
    total_up: float = 0.0
    total_down: float = 0.0

    TYPE: ClassVar[str] = "traf"

    def to_params(self) -> Dict[str, str]:
        """Serialize to the flat ``name=value`` parameter dict."""
        params = self._header()
        params["up"] = f"{self.bytes_up:.0f}"
        params["down"] = f"{self.bytes_down:.0f}"
        params["tup"] = f"{self.total_up:.0f}"
        params["tdown"] = f"{self.total_down:.0f}"
        return params

    def to_log_string(self) -> str:
        """Direct wire encoding (== ``encode_log_string(to_params())``)."""
        return (f"{self._header_str()}&up={self.bytes_up:.0f}"
                f"&down={self.bytes_down:.0f}&tup={self.total_up:.0f}"
                f"&tdown={self.total_down:.0f}")

    @classmethod
    def from_params(cls, p: Dict[str, str]) -> "TrafficReport":
        """Parse back from a decoded parameter dict."""
        return cls(
            time=float(p["t"]), node_id=int(p["node"]), user_id=int(p["user"]),
            session_id=int(p["sess"]),
            bytes_up=float(p["up"]), bytes_down=float(p["down"]),
            total_up=float(p.get("tup", "0")), total_down=float(p.get("tdown", "0")),
        )


class PartnerOp(str, enum.Enum):
    """Partner activity kind in the compact event series."""

    ADD = "a"
    DROP = "d"


@dataclass(frozen=True)
class PartnerEvent:
    """One partner add/drop, with direction seen from the reporting node."""

    time: float
    op: PartnerOp
    partner_id: int
    incoming: bool  # True when the partner initiated the partnership

    def encode(self) -> str:
        """Encode to the compact wire token."""
        d = "i" if self.incoming else "o"
        return f"{self.time:.1f}:{self.op.value}:{self.partner_id}:{d}"

    @classmethod
    def decode(cls, token: str) -> "PartnerEvent":
        """Parse a compact wire token."""
        t, op, pid, d = token.split(":")
        return cls(time=float(t), op=PartnerOp(op), partner_id=int(pid),
                   incoming=(d == "i"))


@dataclass(frozen=True)
class PartnerReport(Report):
    """Compact series of partner activities since the last status report.

    "Since the nodes might change partners frequently, we use a compact
    report that records a series of activities to reduce log server's
    load." (Section V.A)
    """

    events: tuple[PartnerEvent, ...] = field(default_factory=tuple)
    n_partners: int = 0
    n_incoming: int = 0
    n_outgoing: int = 0

    TYPE: ClassVar[str] = "part"

    def to_params(self) -> Dict[str, str]:
        """Serialize to the flat ``name=value`` parameter dict."""
        params = self._header()
        params["np"] = str(self.n_partners)
        params["nin"] = str(self.n_incoming)
        params["nout"] = str(self.n_outgoing)
        if self.events:
            params["pev"] = "|".join(e.encode() for e in self.events)
        return params

    def to_log_string(self) -> str:
        """Direct wire encoding (== ``encode_log_string(to_params())``)."""
        s = (f"{self._header_str()}&np={self.n_partners}"
             f"&nin={self.n_incoming}&nout={self.n_outgoing}")
        if self.events:
            # the event tokens carry ":" / "|" separators, which the
            # codec percent-encodes -- mirror it exactly
            pev = quote("|".join(e.encode() for e in self.events), safe="")
            s = f"{s}&pev={pev}"
        return s

    @classmethod
    def from_params(cls, p: Dict[str, str]) -> "PartnerReport":
        """Parse back from a decoded parameter dict."""
        events: tuple[PartnerEvent, ...] = ()
        if "pev" in p and p["pev"]:
            events = tuple(PartnerEvent.decode(tok) for tok in p["pev"].split("|"))
        return cls(
            time=float(p["t"]), node_id=int(p["node"]), user_id=int(p["user"]),
            session_id=int(p["sess"]), events=events,
            n_partners=int(p.get("np", "0")),
            n_incoming=int(p.get("nin", "0")),
            n_outgoing=int(p.get("nout", "0")),
        )


_REGISTRY: Dict[str, Type[Report]] = {
    ActivityReport.TYPE: ActivityReport,
    QoSReport.TYPE: QoSReport,
    TrafficReport.TYPE: TrafficReport,
    PartnerReport.TYPE: PartnerReport,
}


def parse_report(params: Dict[str, str]) -> Report:
    """Dispatch a decoded parameter dict to the right report class."""
    try:
        cls = _REGISTRY[params["type"]]
    except KeyError:
        raise ValueError(f"unknown report type {params.get('type')!r}") from None
    return cls.from_params(params)  # type: ignore[attr-defined]
