"""Client-side reporting agent.

Each peer owns a :class:`NodeReporter` that (a) ships activity reports the
instant the event occurs, and (b) ships the three status reports (QoS,
traffic, partner) every five minutes, phase-shifted by join time as in the
deployed ActiveX collector.

Two behaviours of the deployed pipeline are reproduced deliberately
because Section V.D leans on them:

* **report latency**: a report reaches the server one uplink delay after
  being sent;
* **loss on abrupt departure**: when a session ends in ``FAILURE`` nothing
  more is sent -- in particular, the low continuity a failing NAT user
  experienced during its last minutes never reaches the server, inflating
  NAT users' measured continuity (the Fig. 8 inversion).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.sim.engine import Engine, PeriodicTask
from repro.telemetry.reports import (
    ActivityEvent,
    ActivityReport,
    LeaveReason,
    PartnerEvent,
    PartnerOp,
    PartnerReport,
    QoSReport,
    Report,
    TrafficReport,
)
from repro.telemetry.server import LogServer

__all__ = ["NodeReporter"]


class NodeReporter:
    """Reporting agent for one session of one node.

    Parameters
    ----------
    engine, server:
        Simulation kernel and the destination log server.
    node_id, user_id, session_id:
        Identity of the session being reported.
    uplink_delay_s:
        One-way latency from this client to the log server.
    status_period_s:
        Cadence of status reports (300 s in the deployed system).
    status_provider:
        Callback returning the current ``(qos, traffic, partner)`` report
        triple; installed by the peer node.
    """

    def __init__(
        self,
        engine: Engine,
        server: LogServer,
        *,
        node_id: int,
        user_id: int,
        session_id: int,
        uplink_delay_s: float = 0.05,
        status_period_s: float = 300.0,
        address_public: bool = True,
    ) -> None:
        self._engine = engine
        self._server = server
        self.node_id = node_id
        self.user_id = user_id
        self.session_id = session_id
        self._delay = float(uplink_delay_s)
        self._period = float(status_period_s)
        self._public = bool(address_public)
        self._status_provider: Optional[
            Callable[[], tuple[QoSReport, TrafficReport, PartnerReport]]
        ] = None
        self._task: Optional[PeriodicTask] = None
        self._closed = False
        self._partner_events: List[PartnerEvent] = []
        self.reports_sent = 0

    # --- wiring -------------------------------------------------------------
    def install_status_provider(
        self,
        provider: Callable[[], tuple[QoSReport, TrafficReport, PartnerReport]],
    ) -> None:
        """Set the status callback and start the 5-minute cadence."""
        self._status_provider = provider
        if self._task is None:
            self._task = PeriodicTask(
                self._engine, self._period, self._send_status
            )

    # --- event capture -----------------------------------------------------
    def record_partner_event(self, op: PartnerOp, partner_id: int,
                             incoming: bool) -> None:
        """Buffer a partner add/drop for the next compact partner report."""
        if not self._closed:
            self._partner_events.append(
                PartnerEvent(time=self._engine.now, op=op,
                             partner_id=partner_id, incoming=incoming)
            )

    def drain_partner_events(self) -> tuple[PartnerEvent, ...]:
        """Return and clear buffered partner events."""
        events = tuple(self._partner_events)
        self._partner_events.clear()
        return events

    # --- sending ---------------------------------------------------------------
    def activity(self, event: ActivityEvent, *, attempt: int = 1,
                 reason: Optional[LeaveReason] = None) -> None:
        """Ship an activity report immediately (plus uplink delay)."""
        if self._closed:
            return
        if event is ActivityEvent.LEAVE:
            # Graceful shutdown flushes the partial status window first so
            # the server sees the session's last minutes (an abrupt FAILURE
            # still loses them -- see the module docstring).
            self._send_status()
        report = ActivityReport(
            time=self._engine.now, node_id=self.node_id, user_id=self.user_id,
            session_id=self.session_id, event=event, attempt=attempt,
            address_public=self._public, reason=reason,
        )
        self._ship(report)
        if event is ActivityEvent.LEAVE:
            self.close(silent=False)

    def _send_status(self) -> None:
        if self._closed or self._status_provider is None:
            return
        qos, traffic, partner = self._status_provider()
        for report in (qos, traffic, partner):
            self._ship(report)

    def _ship(self, report: Report) -> None:
        self.reports_sent += 1
        arrival = self._engine.now + self._delay
        self._engine.schedule(
            self._delay, lambda r=report, t=arrival: self._server.receive_report(t, r)
        )

    # --- teardown -----------------------------------------------------------------
    def close(self, silent: bool) -> None:
        """Stop reporting.  ``silent=True`` models abrupt failure: pending
        status cadence stops and nothing further is sent, so whatever the
        node experienced since the last 5-minute report is lost to the
        measurement -- by design."""
        self._closed = True
        if self._task is not None:
            self._task.stop()
            self._task = None
