"""The dedicated log server.

Stores every received log string (with its arrival timestamp) into an
in-memory log file, exactly one line per HTTP request, and offers parsed
views for the analysis package.  A real deployment wrote these lines to
disk; :meth:`LogServer.dump` / :meth:`LogServer.load` replicate that so the
analysis toolkit can also be exercised on files.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Iterator, List, TextIO

from repro.telemetry.logstring import decode_log_string, encode_log_string
from repro.telemetry.reports import Report, parse_report

__all__ = ["LogEntry", "LogServer"]


@dataclass(frozen=True)
class LogEntry:
    """One line of the log file: arrival time + raw log string."""

    arrival_time: float
    log_string: str

    def parse(self) -> Report:
        """Decode and parse the stored log string into a report."""
        return parse_report(decode_log_string(self.log_string))

    def to_line(self) -> str:
        """Render as one log-file line."""
        return f"{self.arrival_time:.3f} {self.log_string}"

    @classmethod
    def from_line(cls, line: str) -> "LogEntry":
        """Parse one log-file line."""
        ts, _, rest = line.strip().partition(" ")
        return cls(arrival_time=float(ts), log_string=rest)


class LogServer:
    """Collects log strings from peers.

    ``receive`` is the HTTP endpoint: it accepts the raw string and the
    (simulated) arrival time.  Malformed requests are counted and dropped,
    not raised -- a log server must survive garbage.
    """

    def __init__(self) -> None:
        self._entries: List[LogEntry] = []
        self.malformed_count = 0

    # --- ingestion -------------------------------------------------------
    def receive(self, arrival_time: float, log_string: str) -> bool:
        """Store one log string; returns False (and counts) if malformed."""
        try:
            decode_log_string(log_string)
        except ValueError:
            self.malformed_count += 1
            return False
        self._entries.append(LogEntry(arrival_time, log_string))
        return True

    def receive_report(self, arrival_time: float, report: Report) -> None:
        """Convenience: encode and store a report object."""
        self._entries.append(
            LogEntry(arrival_time, encode_log_string(report.to_params()))
        )

    # --- access ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> List[LogEntry]:
        """Snapshot of stored entries."""
        return list(self._entries)

    def reports(self) -> Iterator[Report]:
        """Parse every stored entry, in arrival order."""
        for entry in self._entries:
            yield entry.parse()

    def reports_of(self, report_type: type) -> Iterator[Report]:
        """Parsed reports filtered to one report class."""
        for report in self.reports():
            if isinstance(report, report_type):
                yield report

    # --- persistence ----------------------------------------------------------
    def dump(self, fp: TextIO) -> int:
        """Write the log file; one entry per line.  Returns lines written."""
        n = 0
        for entry in self._entries:
            fp.write(entry.to_line() + "\n")
            n += 1
        return n

    def dumps(self) -> str:
        """The log file contents as a string."""
        buf = io.StringIO()
        self.dump(buf)
        return buf.getvalue()

    @classmethod
    def load(cls, fp: TextIO) -> "LogServer":
        """Rebuild a server from a dumped log file."""
        server = cls()
        for line in fp:
            line = line.strip()
            if line:
                server._entries.append(LogEntry.from_line(line))
        return server

    @classmethod
    def loads(cls, text: str) -> "LogServer":
        """Rebuild a server from dumped log-file text."""
        return cls.load(io.StringIO(text))

    def merged_with(self, other: "LogServer") -> "LogServer":
        """Union of two logs, re-sorted by arrival time (multi-server
        deployments merged their files the same way)."""
        merged = LogServer()
        merged._entries = sorted(
            self._entries + other._entries, key=lambda e: e.arrival_time
        )
        merged.malformed_count = self.malformed_count + other.malformed_count
        return merged
