"""The dedicated log server.

Stores every received log string (with its arrival timestamp) into a log
file -- one line per HTTP request -- and offers parsed views for the
analysis package.  Storage is pluggable (:mod:`repro.telemetry.sink`):
the default is the original in-memory list, or a chunked gzip spill to
disk when a spill root is configured (``REPRO_LOG_SPILL`` /
``--log-spill``), so production-volume traces no longer grow the
resident set per entry.  A real deployment wrote these lines to disk;
:meth:`LogServer.dump` / :meth:`LogServer.load` replicate that so the
analysis toolkit can also be exercised on files.
"""

from __future__ import annotations

import heapq
import io
from dataclasses import dataclass
from operator import attrgetter
from typing import Iterable, Iterator, List, Optional, TextIO

from repro.telemetry.logstring import decode_log_string
from repro.telemetry.reports import Report, parse_report
from repro.telemetry.sink import LogSink, MemorySink, default_sink

__all__ = ["LogEntry", "LogServer"]


@dataclass(frozen=True)
class LogEntry:
    """One line of the log file: arrival time + raw log string."""

    arrival_time: float
    log_string: str

    def parse(self) -> Report:
        """Decode and parse the stored log string into a report."""
        return parse_report(decode_log_string(self.log_string))

    def to_line(self) -> str:
        """Render as one log-file line."""
        return f"{self.arrival_time:.3f} {self.log_string}"

    @classmethod
    def from_line(cls, line: str) -> "LogEntry":
        """Parse one log-file line."""
        ts, _, rest = line.strip().partition(" ")
        return cls(arrival_time=float(ts), log_string=rest)


class LogServer:
    """Collects log strings from peers.

    ``receive`` is the HTTP endpoint: it accepts the raw string and the
    (simulated) arrival time.  Malformed requests are counted and dropped,
    not raised -- a log server must survive garbage.

    ``sink`` selects the storage backend; omitted, it resolves through
    :func:`repro.telemetry.sink.default_sink` (in-memory unless a spill
    root is configured for the process).
    """

    def __init__(self, sink: Optional[LogSink] = None) -> None:
        self.sink: LogSink = sink if sink is not None else default_sink()
        self.malformed_count = 0

    # --- ingestion -------------------------------------------------------
    def receive(self, arrival_time: float, log_string: str) -> bool:
        """Store one log string; returns False (and counts) if malformed."""
        try:
            decode_log_string(log_string)
        except ValueError:
            self.malformed_count += 1
            return False
        self.sink.append(LogEntry(arrival_time, log_string))
        return True

    def receive_report(self, arrival_time: float, report: Report) -> None:
        """Convenience: encode and store a report object."""
        self.sink.append(LogEntry(arrival_time, report.to_log_string()))

    def flush(self) -> None:
        """Persist buffered lines (rotates a spill sink's current tail to
        disk); the server keeps accepting reports."""
        self.sink.flush()

    def close(self) -> None:
        """Flush the sink (rotates a spill sink's tail chunk to disk)."""
        self.sink.close()

    # --- access ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.sink)

    def entries(self) -> List[LogEntry]:
        """Materialised snapshot of stored entries (compat accessor --
        prefer :meth:`iter_entries` at production volume)."""
        return list(self.sink.iter_entries())

    def iter_entries(self) -> Iterator[LogEntry]:
        """Stream stored entries in arrival order without materialising."""
        return iter(self.sink.iter_entries())

    def reports(self) -> Iterator[Report]:
        """Parse every stored entry, in arrival order."""
        for entry in self.sink.iter_entries():
            yield entry.parse()

    def reports_of(self, report_type: type) -> Iterator[Report]:
        """Parsed reports filtered to one report class."""
        for report in self.reports():
            if isinstance(report, report_type):
                yield report

    # --- persistence ----------------------------------------------------------
    def dump(self, fp: TextIO) -> int:
        """Write the log file; one entry per line.  Returns lines written."""
        n = 0
        for entry in self.sink.iter_entries():
            fp.write(entry.to_line() + "\n")
            n += 1
        return n

    def dumps(self) -> str:
        """The log file contents as a string."""
        buf = io.StringIO()
        self.dump(buf)
        return buf.getvalue()

    @classmethod
    def load(cls, fp: TextIO, *, sink: Optional[LogSink] = None) -> "LogServer":
        """Rebuild a server from a dumped log file.

        Lines pass the same validation as :meth:`receive`: truncated or
        garbage lines are counted in ``malformed_count`` and skipped, not
        raised -- a recovered log file must survive partial writes.
        """
        server = cls(sink=sink)
        for line in fp:
            line = line.strip()
            if not line:
                continue
            try:
                entry = LogEntry.from_line(line)
                decode_log_string(entry.log_string)
            except ValueError:
                server.malformed_count += 1
                continue
            server.sink.append(entry)
        return server

    @classmethod
    def loads(cls, text: str, *, sink: Optional[LogSink] = None) -> "LogServer":
        """Rebuild a server from dumped log-file text."""
        return cls.load(io.StringIO(text), sink=sink)

    # --- merging ---------------------------------------------------------
    @classmethod
    def merged(cls, servers: Iterable["LogServer"], *,
               sink: Optional[LogSink] = None) -> "LogServer":
        """Streaming k-way merge of logs by arrival time.

        Each input is consumed through its streaming iterator and the
        output goes straight to the target sink, so merging spilled logs
        is O(1) memory.  Ties keep input order (earlier server first),
        matching what a stable sort of the concatenated lists produced.

        Logs received through an engine are arrival-ordered by
        construction; in-memory logs populated out of order (manual
        ``receive_report`` calls) are detected and sorted first, while a
        spilled log is assumed ordered (checking would cost a full extra
        pass over disk).
        """
        servers = list(servers)
        merged = cls(sink=sink)
        append = merged.sink.append
        for entry in heapq.merge(
            *(_ordered_entries(s) for s in servers), key=_BY_ARRIVAL
        ):
            append(entry)
        merged.malformed_count = sum(s.malformed_count for s in servers)
        return merged

    def merged_with(self, other: "LogServer", *,
                    sink: Optional[LogSink] = None) -> "LogServer":
        """Union of two logs, re-sorted by arrival time (multi-server
        deployments merged their files the same way)."""
        return LogServer.merged((self, other), sink=sink)


_BY_ARRIVAL = attrgetter("arrival_time")


def _ordered_entries(server: LogServer) -> Iterator[LogEntry]:
    """Arrival-ordered entry stream for merging.

    In-memory sinks are checked (O(n), no copy) and stable-sorted only
    when actually out of order, which reproduces the pre-streaming
    ``sorted(a + b)`` semantics exactly; other sinks stream as stored.
    """
    sink = server.sink
    if isinstance(sink, MemorySink):
        entries = sink._entries
        if any(entries[i].arrival_time > entries[i + 1].arrival_time
               for i in range(len(entries) - 1)):
            return iter(sorted(entries, key=_BY_ARRIVAL))
        return iter(entries)
    return iter(sink.iter_entries())
