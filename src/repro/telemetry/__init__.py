"""The paper's internal logging system (Section V.A), reproduced.

Clients report to a log server over HTTP; each log entry is a URL query
string of ``name=value`` pairs.  Reports come in two classes:

* **activity reports** -- join, start-subscription, media-player-ready and
  leave events, sent immediately;
* **status reports** -- QoS, traffic and partner reports, sent every five
  minutes.

The measurement artefacts discussed in the paper (Section V.D: NAT users'
low continuity never reaching the server because they depart between
5-minute reports; re-entering users being counted as fresh joins) are
consequences of this design, so reproducing the figures requires
reproducing the pipeline: nodes encode reports to log strings, the
:class:`LogServer` stores raw strings, and :mod:`repro.analysis` works
only from the parsed strings -- never from simulator-internal state.
"""

from repro.telemetry.reports import (
    ActivityEvent,
    ActivityReport,
    LeaveReason,
    PartnerEvent,
    PartnerOp,
    PartnerReport,
    QoSReport,
    Report,
    TrafficReport,
)
from repro.telemetry.logstring import decode_log_string, encode_log_string
from repro.telemetry.server import LogEntry, LogServer
from repro.telemetry.reporter import NodeReporter

__all__ = [
    "ActivityEvent",
    "ActivityReport",
    "LeaveReason",
    "PartnerEvent",
    "PartnerOp",
    "PartnerReport",
    "QoSReport",
    "Report",
    "TrafficReport",
    "decode_log_string",
    "encode_log_string",
    "LogEntry",
    "LogServer",
    "NodeReporter",
]
