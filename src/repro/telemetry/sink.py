"""Log storage sinks: where a :class:`~repro.telemetry.server.LogServer`
keeps its lines.

The deployed system's log server was a disk-backed HTTP endpoint
ingesting millions of log strings per broadcast (Section V.A); our
original ``LogServer`` buffered every :class:`LogEntry` in a Python list,
which at ROADMAP scale is the first hard memory wall.  This module
factors the storage decision out behind a tiny protocol:

* :class:`MemorySink` -- the original in-RAM list (default; zero change
  in behaviour or byte format).
* :class:`SpillSink` -- a chunked, optionally gzip-compressed on-disk
  store with rotation by line count and an fsync'd JSON manifest per
  rotation, so the resident set stays bounded by one chunk regardless of
  trace length and a crash loses at most the unrotated tail.
* :class:`LogReader` -- streams the entries of a spill directory back
  without materialising them (the input side of out-of-core analysis).

Chunks store exactly the ``LogEntry.to_line()`` text, one line per entry,
so a spilled log dumps byte-identically to an in-memory one.  Gzip
members are written with ``mtime=0`` so identical logs produce identical
chunk bytes.

Spilling is opt-in per process: ``REPRO_LOG_SPILL=<dir>`` (or
:func:`set_spill_root`) makes every subsequently created ``LogServer``
spill into a unique subdirectory of ``<dir>``.  The spill location never
changes simulation outputs, so it is deliberately *not* part of any
content-addressed run key.
"""

from __future__ import annotations

import gzip
import itertools
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, List, Optional, Protocol

__all__ = [
    "LogSink",
    "MemorySink",
    "SpillSink",
    "LogReader",
    "default_sink",
    "set_spill_root",
    "spill_root",
    "SPILL_ENV_VAR",
]

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (server imports us)
    from repro.telemetry.server import LogEntry

#: Environment variable naming the spill root directory (unset = in-memory).
SPILL_ENV_VAR = "REPRO_LOG_SPILL"

#: Default rotation threshold: ~50k lines is a few MB of text, so the
#: in-memory tail of a spilled log stays small while chunks stay large
#: enough that per-chunk overhead (open/fsync/manifest rewrite) is noise.
DEFAULT_LINES_PER_CHUNK = 50_000

_MANIFEST_NAME = "manifest.json"


class LogSink(Protocol):
    """Storage backend for a log server's entries.

    Append-only and order-preserving: ``iter_entries`` must yield exactly
    the appended entries in append order, so analysis over a spilled log
    is bit-identical to analysis over an in-memory one.
    """

    def append(self, entry: "LogEntry") -> None:
        """Store one entry."""
        ...

    def __len__(self) -> int:
        """Number of stored entries."""
        ...

    def iter_entries(self) -> Iterator["LogEntry"]:
        """Stream the stored entries in append order."""
        ...

    def flush(self) -> None:
        """Persist any buffered state; appends may continue."""
        ...

    def close(self) -> None:
        """Flush any buffered state; further appends are errors."""
        ...


class MemorySink:
    """The original storage: a plain in-RAM list of entries."""

    def __init__(self) -> None:
        self._entries: List["LogEntry"] = []

    def append(self, entry: "LogEntry") -> None:
        """Store one entry."""
        self._entries.append(entry)

    def __len__(self) -> int:
        return len(self._entries)

    def iter_entries(self) -> Iterator["LogEntry"]:
        """Stream the stored entries in append order."""
        return iter(self._entries)

    def flush(self) -> None:
        """Nothing buffered: entries live in the list already."""

    def close(self) -> None:
        """No buffered state; a closed memory sink just refuses appends."""
        self.append = self._append_closed  # type: ignore[method-assign]

    def _append_closed(self, entry: "LogEntry") -> None:
        raise ValueError("sink is closed")


def _fsync_dir(path: Path) -> None:
    """fsync a directory so a rename/create inside it is durable."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class SpillSink:
    """Chunked on-disk log store with bounded resident memory.

    Entries accumulate in an in-memory tail; every ``lines_per_chunk``
    appends the tail is rotated out as one (gzip) chunk file and recorded
    in the directory's ``manifest.json``.  Both the chunk file and the
    manifest are fsync'd per rotation, so the durability unit is the
    chunk: a crash loses at most the unrotated tail.

    ``iter_entries`` streams rotated chunks from disk and then the live
    tail, preserving exact append order.
    """

    def __init__(self, directory, *, lines_per_chunk: int = DEFAULT_LINES_PER_CHUNK,
                 compress: bool = True) -> None:
        if lines_per_chunk < 1:
            raise ValueError("lines_per_chunk must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        if (self.directory / _MANIFEST_NAME).exists():
            raise ValueError(
                f"{self.directory} already holds a spilled log; "
                f"use LogReader to read it or pick a fresh directory"
            )
        self.lines_per_chunk = int(lines_per_chunk)
        self.compress = bool(compress)
        self._tail: List["LogEntry"] = []
        self._chunks: List[dict] = []
        self._count = 0
        self._closed = False

    # --- ingestion ---------------------------------------------------------
    def append(self, entry: "LogEntry") -> None:
        """Store one entry, rotating a chunk out when the tail fills."""
        if self._closed:
            raise ValueError("sink is closed")
        self._tail.append(entry)
        self._count += 1
        if len(self._tail) >= self.lines_per_chunk:
            self._rotate()

    def _rotate(self) -> None:
        """Write the tail as one chunk file and record it in the manifest."""
        if not self._tail:
            return
        suffix = ".log.gz" if self.compress else ".log"
        name = f"chunk-{len(self._chunks):06d}{suffix}"
        path = self.directory / name
        text = "".join(e.to_line() + "\n" for e in self._tail)
        raw = text.encode("utf-8")
        if self.compress:
            # mtime=0 keeps chunk bytes a pure function of their contents
            with open(path, "wb") as fh:
                with gzip.GzipFile(fileobj=fh, mode="wb", mtime=0) as gz:
                    gz.write(raw)
                fh.flush()
                os.fsync(fh.fileno())
        else:
            with open(path, "wb") as fh:
                fh.write(raw)
                fh.flush()
                os.fsync(fh.fileno())
        self._chunks.append({"file": name, "lines": len(self._tail)})
        self._tail = []
        self._write_manifest()

    def _write_manifest(self) -> None:
        """Atomically replace the manifest (write-fsync-rename-fsync)."""
        payload = {
            "format": "repro-log-spill-v1",
            "compress": self.compress,
            "lines_per_chunk": self.lines_per_chunk,
            "total_lines": sum(c["lines"] for c in self._chunks),
            "chunks": self._chunks,
        }
        tmp = self.directory / (_MANIFEST_NAME + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.directory / _MANIFEST_NAME)
        _fsync_dir(self.directory)

    def flush(self) -> None:
        """Rotate the current tail out so the directory is complete so
        far; appends may continue (the next rotation opens a new chunk)."""
        self._rotate()

    def close(self) -> None:
        """Rotate the remaining tail out so the directory is complete."""
        if self._closed:
            return
        self._rotate()
        self._closed = True

    # --- access ------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    def iter_entries(self) -> Iterator["LogEntry"]:
        """Stream rotated chunks from disk, then the in-memory tail."""
        for chunk in list(self._chunks):
            yield from _read_chunk(self.directory / chunk["file"])
        # snapshot: appends during iteration must not shift the view
        for entry in list(self._tail):
            yield entry


def _read_chunk(path: Path) -> Iterator["LogEntry"]:
    """Stream the entries of one chunk file (gzip or plain)."""
    from repro.telemetry.server import LogEntry

    opener = gzip.open if path.suffix == ".gz" else open
    with opener(path, "rt", encoding="utf-8") as fh:  # type: ignore[operator]
        for line in fh:
            line = line.strip()
            if line:
                yield LogEntry.from_line(line)


class LogReader:
    """Read-only streaming view of a completed spill directory.

    Presents the same ``iter_entries`` / ``reports`` face as a live sink
    so analysis folds can consume either without materialising the log.
    """

    def __init__(self, directory) -> None:
        self.directory = Path(directory)
        manifest = self.directory / _MANIFEST_NAME
        try:
            with open(manifest, "r", encoding="utf-8") as fh:
                self.manifest = json.load(fh)
        except OSError as exc:
            raise ValueError(f"no spilled log at {self.directory}: {exc}") from exc
        if self.manifest.get("format") != "repro-log-spill-v1":
            raise ValueError(
                f"{manifest} is not a repro log-spill manifest"
            )

    def __len__(self) -> int:
        return int(self.manifest.get("total_lines", 0))

    def iter_entries(self) -> Iterator["LogEntry"]:
        """Stream every entry of every manifest-listed chunk, in order."""
        for chunk in self.manifest.get("chunks", ()):
            yield from _read_chunk(self.directory / chunk["file"])

    def reports(self) -> Iterator[object]:
        """Parsed reports, in arrival (append) order."""
        for entry in self.iter_entries():
            yield entry.parse()


# ---------------------------------------------------------------------------
# default-sink resolution
# ---------------------------------------------------------------------------
_SPILL_ROOT: Optional[Path] = None
_SINK_SEQ = itertools.count()


def set_spill_root(path) -> None:
    """Process-wide override of the spill root (None = back to in-memory
    unless :data:`SPILL_ENV_VAR` is set)."""
    global _SPILL_ROOT
    _SPILL_ROOT = Path(path) if path is not None else None


def spill_root() -> Optional[Path]:
    """The active spill root: :func:`set_spill_root` wins over the
    environment; None means log servers default to memory."""
    if _SPILL_ROOT is not None:
        return _SPILL_ROOT
    env = os.environ.get(SPILL_ENV_VAR)
    return Path(env) if env else None


def default_sink() -> LogSink:
    """The sink a ``LogServer()`` gets when none is passed.

    In-memory unless a spill root is configured, in which case each call
    returns a :class:`SpillSink` on a fresh subdirectory (pid + counter),
    so concurrent servers -- multi-channel deployments, campaign workers
    -- never interleave chunks.
    """
    root = spill_root()
    if root is None:
        return MemorySink()
    sub = root / f"log-{os.getpid()}-{next(_SINK_SEQ):04d}"
    return SpillSink(sub)
