"""The log-string codec.

"Each log entry in the log file is a normal HTTP request URL string
referred as a *log string*.  The information from a peer is compacted into
several parameter parts of the URL string ... formed in 'name=value' pairs
and separated by '&'." (Section V.A)

We reproduce that format: a log string is ``/log?k1=v1&k2=v2&...`` with
percent-encoding of reserved characters, so arbitrary values round-trip.
"""

from __future__ import annotations

from typing import Dict
from urllib.parse import parse_qsl, quote

__all__ = ["encode_log_string", "decode_log_string", "LOG_PATH"]

LOG_PATH = "/log"

# ``quote(s, safe="")`` is the identity on strings made of these RFC 3986
# unreserved characters -- which covers almost every report field (numeric
# ids, timestamps, enum names).  Checking set membership is far cheaper
# than running the quoter, and bit-identical by definition of quote().
_UNRESERVED = frozenset(
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789_.-~"
)
#: what a joined ``k1=v1&k2=v2`` string is allowed to contain when every
#: key and value is purely unreserved (the separators are structural)
_JOINED_SAFE = frozenset(_UNRESERVED | {"=", "&"})


def encode_log_string(params: Dict[str, str]) -> str:
    """Encode a parameter dict as an HTTP request URL string.

    Keys are emitted in insertion order (clients build them
    deterministically), values are percent-encoded.  Output is identical
    to ``urlencode(params, quote_via=quote)``; unreserved-only strings
    skip the quoter.
    """
    if not params:
        raise ValueError("a log string needs at least one parameter")
    # fast path: if the naive join contains only unreserved characters
    # plus exactly the structural separators, no key or value needed
    # quoting and the naive string IS the encoding.  Report fields are
    # numeric ids / enum names, so this is the overwhelmingly common case
    # and turns a per-pair python loop into a few C-level string scans.
    try:
        naive = "&".join(map("=".join, params.items()))
    except TypeError:
        naive = None  # non-str value somewhere: take the general path
    if (
        naive is not None
        and _JOINED_SAFE.issuperset(naive)
        and naive.count("=") == len(params)     # no "=" in any key/value
        and naive.count("&") == len(params) - 1  # no "&" in any key/value
        and naive[0] != "="                      # no empty first key
        and "&=" not in naive                    # no empty later key
    ):
        return LOG_PATH + "?" + naive
    unreserved = _UNRESERVED.issuperset
    parts = []
    append = parts.append
    for key, value in params.items():
        if not key or "=" in key or "&" in key:
            raise ValueError(f"invalid parameter name {key!r}")
        if not unreserved(key):
            key = quote(key, safe="")
        if not isinstance(value, str):
            value = str(value)
        if not unreserved(value):
            value = quote(value, safe="")
        append(key + "=" + value)
    return LOG_PATH + "?" + "&".join(parts)


def decode_log_string(log_string: str) -> Dict[str, str]:
    """Parse a log string back to its parameter dict.

    Raises ``ValueError`` for strings that are not ``/log?...`` requests --
    the log server discards malformed lines the same way an HTTP server
    404s unknown paths.
    """
    path, sep, query = log_string.partition("?")
    if path != LOG_PATH or not sep:
        raise ValueError(f"not a log request: {log_string[:40]!r}")
    pairs = parse_qsl(query, keep_blank_values=True, strict_parsing=False)
    if not pairs:
        raise ValueError("empty log string")
    return dict(pairs)
