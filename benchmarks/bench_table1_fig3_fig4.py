"""Table I + Fig. 3 + Fig. 4 regeneration benchmarks.

Paper shapes asserted:

* Table I -- parameters render with the deployed values (R = 768 kbps).
* Fig. 3 -- a ~30% contributor-class minority carries > 80% of upload bytes.
* Fig. 4 -- peers clog under contributor parents; NAT<->NAT links rare.
"""

from conftest import run_once

from repro.experiments import (
    fig3_user_types_and_contribution,
    fig4_overlay_structure,
    table1,
)


def test_table1(benchmark):
    result = run_once(benchmark, table1)
    assert result.metrics["R_kbps"] == 768


def test_fig3_contribution_imbalance(benchmark):
    result = run_once(
        benchmark, fig3_user_types_and_contribution,
        seed=0, rate_per_s=0.35, horizon_s=1100.0,
    )
    # paper: ~30% of peers contribute >80% of bytes
    assert result.metrics["contributor_population_share"] < 0.45
    assert result.metrics["contributor_upload_share"] > 0.80
    assert result.metrics["top30pct_upload_share"] > 0.80


def test_fig4_overlay_structure(benchmark):
    result = run_once(
        benchmark, fig4_overlay_structure,
        seed=0, rate_per_s=0.35, horizon_s=1100.0, snapshot_every_s=275.0,
    )
    # paper: "large amount of peers tends to clog under direct/UPnP peers"
    assert result.metrics["final_contributor_parent_fraction"] > 0.7
    # paper: "connections among NAT/Firewall peers ... are relatively rare"
    assert result.metrics["final_random_link_fraction"] < 0.25
