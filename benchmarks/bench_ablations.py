"""Ablation benchmarks for the design choices DESIGN.md section 5 lists.

These do not correspond to paper figures; they quantify the design
decisions the paper argues for qualitatively (offset rule, random
selection, mCache policy, cool-down, sub-stream count).
"""

import math

from conftest import run_once

from repro.experiments.ablations import (
    ablate_cooldown,
    ablate_mcache_policy,
    ablate_offset_mode,
    ablate_parent_choice,
    ablate_substreams,
)


def test_offset_mode(benchmark):
    result = run_once(benchmark, ablate_offset_mode, seed=10)
    # Section IV.A: starting from the *latest* block risks buffer underflow
    # before enough follow-up arrives -> the paper's m - T_p rule should
    # not be slower to readiness than 'latest' is reliable: compare success
    paper = result.metrics["tp (paper).success_fraction"]
    assert paper > 0.7
    # 'oldest' incurs a longer startup (catching up through old blocks)
    # whenever it differs at all
    assert result.metrics["oldest.ready_median_s"] >= (
        result.metrics["tp (paper).ready_median_s"] - 2.0
    )


def test_parent_choice(benchmark):
    result = run_once(benchmark, ablate_parent_choice, seed=10)
    # random selection must be competitive: the paper's claim is that the
    # *simple random* algorithm suffices to scale
    rnd = result.metrics["random (paper).continuity"]
    best = result.metrics["best.continuity"]
    assert rnd > 0.85
    assert rnd > best - 0.08


def test_mcache_policy(benchmark):
    result = run_once(benchmark, ablate_mcache_policy, seed=10)
    # both policies must work; the age policy must not be worse at joining
    for name in ("random (paper)", "age (suggested)"):
        assert result.metrics[f"{name}.success_fraction"] > 0.6


def test_cooldown(benchmark):
    result = run_once(benchmark, ablate_cooldown, seed=10)
    on = result.metrics["cooldown on (paper).adaptations"]
    off = result.metrics["cooldown off.adaptations"]
    # without T_a, adaptations multiply (the chain-reaction the paper
    # introduces the cool-down to damp)
    assert off > on
    assert result.metrics["cooldown on (paper).continuity"] > 0.85


def test_substreams(benchmark):
    result = run_once(benchmark, ablate_substreams, seed=10,
                      k_values=(1, 4))
    # multi-sub-stream delivery must hold up at least as well as single
    k1 = result.metrics["K=1.continuity"]
    k4 = result.metrics["K=4.continuity"]
    assert not math.isnan(k4)
    assert k4 > 0.85


def test_delivery_mode(benchmark):
    from repro.experiments.ablations import ablate_delivery_mode

    result = run_once(benchmark, ablate_delivery_mode, seed=10)
    push_cont = result.metrics["push (paper).continuity"]
    pull_cont = result.metrics["pull (DONet).continuity"]
    # both disciplines must stream acceptably...
    assert push_cont > 0.9
    assert pull_cont > 0.85
    # ...and pull pays a visibly larger control-message bill, the economy
    # argument behind the paper's sub-stream push design
    assert result.metrics["pull (DONet).data_control_msgs"] > (
        3.0 * result.metrics["push (paper).data_control_msgs"]
    )
