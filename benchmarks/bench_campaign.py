"""Campaign orchestrator benchmarks: jobs-vs-wall-clock speedup + cache.

An 8-run seed sweep of a Fig. 9a micro-point is executed at ``jobs=1``
(the in-process reference) and ``jobs=4`` (worker pool); the acceptance
target is a >=2x wall-clock speedup at 4 workers, which requires >=4
usable CPUs — on smaller hosts the measured ratio is still recorded but
not asserted.  A second invocation against the same store must complete
entirely from the content-addressed cache (0 runs executed).

Key figures are written to ``benchmarks/BENCH_campaign.json`` so CI and
regression tooling can diff them across revisions.
"""

import json
import os
import platform
from pathlib import Path
from time import perf_counter

import pytest

from repro.campaign import ResultStore, run_campaign, sweep

BENCH_JSON = Path(__file__).resolve().parent / "BENCH_campaign.json"

N_RUNS = 8
PARALLEL_JOBS = 4
SWEEP_KWARGS = dict(n_users=400, horizon_s=400.0)

_RESULTS = {}


@pytest.fixture(scope="module", autouse=True)
def _emit_bench_json():
    yield
    if _RESULTS:
        payload = {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
            "results": dict(sorted(_RESULTS.items())),
        }
        BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")


def _seed_sweep():
    return sweep("fig9_size", seeds=list(range(N_RUNS)),
                 overrides=SWEEP_KWARGS, name="bench-seed-sweep",
                 code_version=None)


def test_jobs4_speedup_over_jobs1(tmp_path):
    """8-run seed sweep: jobs=4 vs jobs=1 wall clock (>=2x on >=4 CPUs)."""
    t0 = perf_counter()
    seq = run_campaign(_seed_sweep(), ResultStore(tmp_path / "seq"), jobs=1)
    t_seq = perf_counter() - t0
    assert seq.ok and seq.executed == N_RUNS

    t0 = perf_counter()
    par = run_campaign(_seed_sweep(), ResultStore(tmp_path / "par"),
                       jobs=PARALLEL_JOBS)
    t_par = perf_counter() - t0
    assert par.ok and par.executed == N_RUNS

    # parallelism must never change results
    assert [r.metrics for r in seq.results] == [r.metrics for r in par.results]

    speedup = t_seq / t_par if t_par > 0 else float("inf")
    cpus = os.cpu_count() or 1
    _RESULTS["seed_sweep_runs"] = N_RUNS
    _RESULTS["jobs1_wall_s"] = round(t_seq, 3)
    _RESULTS[f"jobs{PARALLEL_JOBS}_wall_s"] = round(t_par, 3)
    _RESULTS["speedup"] = round(speedup, 3)
    _RESULTS["speedup_asserted"] = cpus >= PARALLEL_JOBS
    print(f"\n[bench_campaign] jobs=1: {t_seq:.2f}s  "
          f"jobs={PARALLEL_JOBS}: {t_par:.2f}s  speedup={speedup:.2f}x  "
          f"(cpus={cpus})")
    if cpus >= PARALLEL_JOBS:
        assert speedup >= 2.0, (
            f"jobs={PARALLEL_JOBS} only {speedup:.2f}x faster than jobs=1"
        )


def test_rerun_completes_entirely_from_cache(tmp_path):
    """Immediate re-run of a completed campaign executes 0 runs."""
    store = ResultStore(tmp_path / "store")
    spec = sweep("fig9_size", seeds=[0, 1, 2, 3],
                 overrides=dict(n_users=150, horizon_s=200.0),
                 name="bench-cache", code_version=None)
    first = run_campaign(spec, store, jobs=2)
    assert first.ok and first.executed == 4

    t0 = perf_counter()
    second = run_campaign(spec, store, jobs=2)
    t_cached = perf_counter() - t0
    assert second.executed == 0 and second.cached == 4
    assert [r.metrics for r in first.results] == \
        [r.metrics for r in second.results]
    _RESULTS["cache_rerun_executed"] = second.executed
    _RESULTS["cache_rerun_wall_s"] = round(t_cached, 3)
    print(f"\n[bench_campaign] cached re-run: {t_cached:.3f}s, "
          f"{second.cached} served from store")
