"""Engine performance micro-benchmarks (the only multi-round benches).

These quantify the cost structure the repro=3 hint warns about (simpy-
style simulation is slow at large peer counts) and the speedup the
vectorized engine buys:

* event throughput of the discrete-event kernel;
* overhead of the observability layer (disabled path must stay <5%);
* reference-engine cost per simulated peer-minute;
* fastsim cost per simulated peer-minute (should be >= 10x cheaper).

Key figures are also written to ``benchmarks/BENCH_engine.json`` so CI
and regression tooling can diff them across revisions.
"""

import gc
import heapq
import json
import platform
from pathlib import Path
from time import perf_counter

import numpy as np
import pytest

import repro.obs as obs
from repro.core.config import SystemConfig
from repro.core.system import CoolstreamingSystem
from repro.fastsim import FastSimulation
from repro.sim.engine import Engine

BENCH_JSON = Path(__file__).resolve().parent / "BENCH_engine.json"

# figures accumulated by the tests below; flushed to BENCH_engine.json
# once the module's tests finish
_RESULTS = {}


@pytest.fixture(scope="module", autouse=True)
def _emit_bench_json():
    yield
    if _RESULTS:
        payload = {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "results": dict(sorted(_RESULTS.items())),
        }
        BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")


def _build_noop_engine(count):
    eng = Engine()

    def noop():
        pass

    for i in range(count):
        eng.schedule(float(i % 100), noop)
    return eng


def _seed_loop_run(self, until=None, max_events=None):
    """Verbatim replica of the seed kernel's ``run()`` loop, before the
    observability dispatch existed.  This is the reference cost that the
    disabled-path overhead measurement compares against."""
    self._running = True
    self._stopped = False
    fired = 0
    try:
        while self._heap:
            entry = self._heap[0]
            ev = entry[2]
            if ev.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and entry[0] > until:
                break
            if max_events is not None and fired >= max_events:
                break
            heapq.heappop(self._heap)
            self._live -= 1
            ev._engine = None
            self.now = entry[0]
            ev.fn()
            fired += 1
            self.events_processed += 1
            if self._stopped:
                break
    finally:
        self._running = False
    if until is not None and not self._stopped and self.now < until:
        self.now = until


def test_event_kernel_throughput(benchmark):
    def run():
        eng = _build_noop_engine(200_000)
        t0 = perf_counter()
        eng.run()
        elapsed = perf_counter() - t0
        rate = eng.events_processed / elapsed
        _RESULTS["kernel_events_per_s"] = max(
            _RESULTS.get("kernel_events_per_s", 0.0), rate
        )
        return eng.events_processed

    processed = benchmark.pedantic(run, rounds=3, iterations=1)
    assert processed == 200_000


def test_disabled_obs_overhead_under_5_percent():
    """With no obs session active, the kernel must cost (nearly) exactly
    what the seed kernel cost: the only addition is one ``is None`` check
    per ``run()`` call, not per event.  Gate at 5%.

    Methodology: per-round pairwise ratios (both loops timed back to back
    within a round, order alternating), gc off, gate on the *minimum*
    pairwise ratio.  A genuine per-event regression lifts every round's
    ratio, so the min tracks it; symmetric scheduler/frequency noise
    (measured at ~5% in CI containers) cannot push the min above the gate.
    """
    count, rounds = 40_000, 12
    # warm-up (heap allocation, bytecode caches)
    _seed_loop_run(_build_noop_engine(count))
    _build_noop_engine(count).run()
    ratios = []
    gc.disable()
    try:
        for r in range(rounds):
            eng_a, eng_b = _build_noop_engine(count), _build_noop_engine(count)
            assert eng_a._obs is None  # the disabled path is exercised
            if r % 2 == 0:
                t0 = perf_counter()
                _seed_loop_run(eng_a)
                t_base = perf_counter() - t0
                t0 = perf_counter()
                eng_b.run()
                t_inst = perf_counter() - t0
            else:
                t0 = perf_counter()
                eng_a.run()
                t_inst = perf_counter() - t0
                t0 = perf_counter()
                _seed_loop_run(eng_b)
                t_base = perf_counter() - t0
            ratios.append(t_inst / t_base)
    finally:
        gc.enable()
    ratio = min(ratios)
    _RESULTS["disabled_obs_overhead_ratio"] = ratio
    assert ratio < 1.05, f"disabled-path overhead {ratio:.3f}x exceeds 1.05x"


def test_enabled_obs_overhead_recorded(tmp_path):
    """Informative: per-event cost with metrics + tracing enabled.  Not
    gated tightly (wall-clock timers and trace spans have a real price);
    the figure lands in BENCH_engine.json for trend tracking."""
    count = 60_000
    eng = _build_noop_engine(count)
    t0 = perf_counter()
    eng.run()
    t_plain = perf_counter() - t0
    with obs.session(metrics_path=str(tmp_path / "m.jsonl"),
                     trace_path=str(tmp_path / "t.json")):
        eng = _build_noop_engine(count)
        t0 = perf_counter()
        eng.run()
        t_obs = perf_counter() - t0
    ratio = t_obs / t_plain
    _RESULTS["enabled_obs_overhead_ratio"] = ratio
    # sanity ceiling only: catches a pathological regression, not noise
    assert ratio < 50.0


def test_reference_engine_peer_minutes(benchmark):
    """100 peers x 5 simulated minutes on the message-level engine."""

    def run():
        cfg = SystemConfig(n_servers=2)
        system = CoolstreamingSystem(cfg, seed=0)
        for u in range(100):
            system.engine.schedule(
                u * 0.5, lambda u=u: system.spawn_peer(user_id=u)
            )
        system.run(until=300.0)
        return system.summary()

    summary = benchmark.pedantic(run, rounds=1, iterations=1)
    assert summary["playing"] >= 90


def test_fastsim_peer_minutes(benchmark):
    """1000 peers x 5 simulated minutes on the vectorized engine."""

    def run():
        cfg = SystemConfig(n_servers=4)
        sim = FastSimulation(cfg, seed=0, capacity_hint=2048)
        sim.add_arrivals(np.linspace(0, 60, 1000), np.full(1000, 600.0))
        sim.run(until=300.0)
        return sim

    sim = benchmark.pedantic(run, rounds=1, iterations=1)
    assert sim.playing_users >= 900
    # lifetime continuity includes the brutal 1000-arrivals-in-60s warm-up
    assert sim.mean_continuity() > 0.7
