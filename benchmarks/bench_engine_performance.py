"""Engine performance micro-benchmarks (the only multi-round benches).

These quantify the cost structure the repro=3 hint warns about (simpy-
style simulation is slow at large peer counts) and the speedup the
vectorized engine buys:

* event throughput of the discrete-event kernel;
* reference-engine cost per simulated peer-minute;
* fastsim cost per simulated peer-minute (should be >= 10x cheaper).
"""

import numpy as np

from repro.core.config import SystemConfig
from repro.core.system import CoolstreamingSystem
from repro.fastsim import FastSimulation
from repro.sim.engine import Engine


def test_event_kernel_throughput(benchmark):
    def run():
        eng = Engine()
        count = 200_000

        def noop():
            pass

        for i in range(count):
            eng.schedule(float(i % 100), noop)
        eng.run()
        return eng.events_processed

    processed = benchmark.pedantic(run, rounds=3, iterations=1)
    assert processed == 200_000


def test_reference_engine_peer_minutes(benchmark):
    """100 peers x 5 simulated minutes on the message-level engine."""

    def run():
        cfg = SystemConfig(n_servers=2)
        system = CoolstreamingSystem(cfg, seed=0)
        for u in range(100):
            system.engine.schedule(
                u * 0.5, lambda u=u: system.spawn_peer(user_id=u)
            )
        system.run(until=300.0)
        return system.summary()

    summary = benchmark.pedantic(run, rounds=1, iterations=1)
    assert summary["playing"] >= 90


def test_fastsim_peer_minutes(benchmark):
    """1000 peers x 5 simulated minutes on the vectorized engine."""

    def run():
        cfg = SystemConfig(n_servers=4)
        sim = FastSimulation(cfg, seed=0, capacity_hint=2048)
        sim.add_arrivals(np.linspace(0, 60, 1000), np.full(1000, 600.0))
        sim.run(until=300.0)
        return sim

    sim = benchmark.pedantic(run, rounds=1, iterations=1)
    assert sim.playing_users >= 900
    # lifetime continuity includes the brutal 1000-arrivals-in-60s warm-up
    assert sim.mean_continuity() > 0.7
