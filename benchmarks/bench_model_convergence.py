"""Section IV analytical model validation benchmarks.

* Eqs. 3-6 against micro-simulations of the push scheduler.
* The topology-convergence claim against the two-state Markov model.
"""

from conftest import run_once

from repro.experiments import (
    validate_convergence_model,
    validate_dynamics_equations,
)


def test_dynamics_equations(benchmark):
    result = run_once(benchmark, validate_dynamics_equations, seed=4)
    assert result.metrics["eq3_max_rel_error"] < 0.15
    assert result.metrics["eq6_max_abs_error"] < 0.02


def test_convergence_model(benchmark):
    result = run_once(
        benchmark, validate_convergence_model,
        seed=4, rate_per_s=0.35, horizon_s=1200.0, snapshot_every_s=120.0,
    )
    # both the measurement and the model put the long-run fraction of
    # contributor-parented subscriptions high
    assert result.metrics["measured_final_fraction"] > 0.7
    assert result.metrics["model_stationary_fraction"] > 0.7
    assert result.metrics["abs_gap"] < 0.25
