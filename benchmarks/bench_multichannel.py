"""Multi-channel benchmark: the Fig. 5a partial-collapse mechanism.

The measured audience drop at ~22:00 came from "the ending of *some*
programs" -- i.e. it was a per-channel event visible in the platform
total.  This bench runs three channels with a zapping audience, ends one
program mid-run, and asserts the platform curve shows a partial (not
total) collapse while the surviving channels keep their audiences.
"""

import numpy as np

from repro.analysis import SessionTable
from repro.core.config import SystemConfig
from repro.core.multichannel import MultiChannelDeployment
from repro.telemetry.reports import LeaveReason
from repro.workload.surfing import ChannelAudience


def test_partial_collapse_at_program_end(benchmark):
    def run():
        horizon = 700.0
        cfg = SystemConfig(n_servers=2)
        deployment = MultiChannelDeployment(3, cfg, seed=11)
        rng = np.random.default_rng(3)
        times = np.sort(rng.uniform(0.0, 0.3 * horizon, 120))
        audience = ChannelAudience(
            deployment, arrival_times=times,
            popularity_skew=0.8, zap_probability=0.2, zap_after_s=90.0,
        )
        before = {}
        after = {}

        def snapshot(store):
            store.update({
                "by_channel": list(deployment.audience_by_channel()),
                "total": deployment.concurrent_users,
            })

        def end_program():
            for peer in deployment.channel(1).peers(alive_only=True):
                peer.leave(LeaveReason.PROGRAM_END)

        deployment.engine.schedule_at(0.6 * horizon - 1.0,
                                      lambda: snapshot(before))
        deployment.engine.schedule_at(0.6 * horizon, end_program)
        deployment.engine.schedule_at(0.6 * horizon + 30.0,
                                      lambda: snapshot(after))
        deployment.run(until=horizon)
        return deployment, audience, before, after

    deployment, audience, before, after = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print()
    print("audience before ending:", before["by_channel"],
          "total", before["total"])
    print("audience after ending: ", after["by_channel"],
          "total", after["total"])
    print("zaps:", audience.zap_count)

    # the ended channel lost its audience...
    assert after["by_channel"][1] <= 0.2 * max(1, before["by_channel"][1])
    # ...the others kept most of theirs (partial collapse, as in Fig. 5a)
    assert after["by_channel"][0] >= 0.7 * before["by_channel"][0]
    assert after["total"] >= 0.4 * before["total"]
    # the platform log still analyses coherently
    table = SessionTable.from_log(deployment.merged_log())
    assert len(table) >= 120
