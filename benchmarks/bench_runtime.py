"""Runtime-layer benchmarks: engine throughput on one shared scenario.

The engine-agnostic runtime makes the two engines directly comparable:
both consume the byte-identical workload realization for the same
(scenario, seed), so the wall-clock gap is purely the cost of protocol
fidelity.  We drive one steady-audience scenario through
``run_scenario`` on each engine and record the natural throughput unit
of each -- events/s for the event-driven reference engine, peer-steps/s
for the vectorized fluid engine -- plus the end-to-end speedup.

Key figures are written to ``benchmarks/BENCH_runtime.json`` so CI and
regression tooling can diff them across revisions.
"""

import json
import os
import platform
from pathlib import Path
from time import perf_counter

import pytest

from repro.runtime import run_scenario, sample_workload
from repro.workload.scenarios import steady_audience

BENCH_JSON = Path(__file__).resolve().parent / "BENCH_runtime.json"

SEED = 0
HORIZON_S = 600.0

_RESULTS = {}


@pytest.fixture(scope="module", autouse=True)
def _emit_bench_json():
    yield
    if _RESULTS:
        payload = {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
            "results": dict(sorted(_RESULTS.items())),
        }
        BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")


def _scenario():
    return steady_audience(rate_per_s=0.5, horizon_s=HORIZON_S, n_servers=3)


def test_detailed_engine_throughput(benchmark):
    """Reference engine: events/s over the shared scenario."""
    scenario = _scenario()
    t0 = perf_counter()
    res = benchmark.pedantic(
        run_scenario, args=(scenario,),
        kwargs=dict(seed=SEED, engine="detailed"),
        rounds=1, iterations=1,
    )
    wall = perf_counter() - t0
    events = res.system.engine.events_processed
    assert events > 0
    _RESULTS["scenario_users"] = res.workload.n_users
    _RESULTS["detailed_wall_s"] = round(wall, 3)
    _RESULTS["detailed_events"] = events
    _RESULTS["detailed_events_per_s"] = round(events / wall, 1)
    print(f"\n[bench_runtime] detailed: {events} events in {wall:.2f}s "
          f"({events / wall:,.0f} events/s)")


def test_fluid_engine_throughput(benchmark):
    """Fluid engine: peer-steps/s over the same scenario, and speedup."""
    scenario = _scenario()
    workload = sample_workload(scenario, SEED)
    t0 = perf_counter()
    res = benchmark.pedantic(
        run_scenario, args=(scenario,),
        kwargs=dict(seed=SEED, engine="fast"),
        rounds=1, iterations=1,
    )
    wall = perf_counter() - t0
    # one vectorized step per dt touches every live peer; integrating the
    # audience over the horizon gives total peer-steps
    dt = res.sim.fast.dt
    n_steps = int(HORIZON_S / dt)
    mean_alive = max(1.0, float(res.metrics()["concurrent_users"]) / 2.0)
    peer_steps = int(n_steps * mean_alive)
    _RESULTS["fluid_wall_s"] = round(wall, 3)
    _RESULTS["fluid_steps"] = n_steps
    _RESULTS["fluid_peer_steps_per_s"] = round(peer_steps / wall, 1)
    detailed_wall = _RESULTS.get("detailed_wall_s")
    if detailed_wall:
        _RESULTS["fluid_speedup_over_detailed"] = round(detailed_wall / wall, 2)
    print(f"\n[bench_runtime] fluid: {n_steps} steps over "
          f"{workload.n_users} users in {wall:.2f}s"
          + (f", {detailed_wall / wall:.1f}x faster than detailed"
             if detailed_wall else ""))
    # the fluid engine exists to be cheap: it must beat the reference
    # engine end-to-end on the identical scenario
    if detailed_wall:
        assert wall < detailed_wall
