"""Observability overhead + out-of-core telemetry benchmark.

Two questions, answered with fresh-subprocess measurements (so
``ru_maxrss`` is the truth for each point and allocator state never
leaks between points):

1. **What does an enabled metrics session cost the event kernel?**
   A no-op event micro-bench runs with observability off and with a
   metrics session active; the ratio of the two walls is the enabled-
   mode overhead.  Counters are batched and the wall-clock/heap probes
   sampled 1-in-64, so this should sit well under the ~2.8x the
   per-event instrumentation used to cost.

2. **What does spilling the telemetry log buy at production volume?**
   A synthetic ingest pushes N log lines (the line volume of a
   paper-scale detailed run; 10k users over 300s produce ~1.1M log
   lines) through a :class:`~repro.telemetry.server.LogServer` backed
   by the in-memory sink vs the gzip spill sink, recording peak RSS for
   each.  Full mode adds real 4k-user detailed runs (memory vs spill)
   and the 10k-user spill run whose in-memory twin is the committed
   ``BENCH_scale.json`` point.

Usage::

    python benchmarks/bench_obs.py            # full sweep -> BENCH_obs.json
    python benchmarks/bench_obs.py --smoke    # CI: micro points + tripwires

``--smoke`` measures the cheap points only, does NOT rewrite
``BENCH_obs.json``, and fails (exit 1) when either tripwire fires:

* enabled-mode kernel overhead above ``--max-overhead`` (default 2.0x —
  the committed full-mode figure is the trend signal; the smoke gate
  only catches a return of per-event instrumentation), or
* spilled ingest peak RSS not below in-memory ingest peak RSS.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import resource
import subprocess
import sys
import tempfile
from pathlib import Path
from time import perf_counter  # repro: noqa[DET002] benchmark stopwatch

BENCH_DIR = Path(__file__).resolve().parent
BENCH_JSON = BENCH_DIR / "BENCH_obs.json"
REPO_SRC = BENCH_DIR.parent / "src"

SEED = 0
#: no-op events for the kernel overhead points
KERNEL_EVENTS_FULL = 1_000_000
KERNEL_EVENTS_SMOKE = 200_000
#: synthetic ingest volume: ~the log-line count of the 10k-user detailed
#: scale point (BENCH_scale.json) -- production volume for this repo
INGEST_LINES_FULL = 1_200_000
INGEST_LINES_SMOKE = 300_000


def _peak_rss_mb() -> float:
    """This process's peak RSS in MiB (``ru_maxrss`` is KiB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


# --------------------------------------------------------------------------
# child-process measurement points
# --------------------------------------------------------------------------

def measure_kernel(mode: str, count: int) -> dict:
    """No-op event throughput with obs off or a metrics session active."""
    import contextlib

    import repro.obs as obs
    from repro.sim.engine import Engine

    def build() -> Engine:
        eng = Engine()

        def noop():
            pass

        for i in range(count):
            eng.schedule(float(i % 100), noop)
        return eng

    # warm-up outside the timed region (heap allocation, bytecode caches)
    build().run()

    if mode == "metrics":
        tmp = tempfile.NamedTemporaryFile(suffix=".jsonl", delete=False)
        session = obs.session(metrics_path=tmp.name)
    else:
        session = contextlib.nullcontext()
    with session:
        eng = build()
        t0 = perf_counter()  # repro: noqa[DET002] benchmark stopwatch
        eng.run()
        wall = perf_counter() - t0  # repro: noqa[DET002] benchmark stopwatch
    return {
        "point": "kernel",
        "mode": mode,
        "events": count,
        "wall_s": round(wall, 4),
        "events_per_s": round(count / wall, 1),
        "peak_rss_mb": round(_peak_rss_mb(), 1),
    }


def measure_ingest(mode: str, n_lines: int) -> dict:
    """Peak RSS of ingesting ``n_lines`` synthetic reports, memory vs spill."""
    from repro.telemetry.reports import QoSReport
    from repro.telemetry.server import LogServer
    from repro.telemetry.sink import MemorySink, SpillSink

    tmpdir = None
    if mode == "spill":
        tmpdir = tempfile.mkdtemp(prefix="bench-obs-spill-")
        server = LogServer(sink=SpillSink(Path(tmpdir) / "log"))
    else:
        server = LogServer(sink=MemorySink())

    t0 = perf_counter()  # repro: noqa[DET002] benchmark stopwatch
    receive_report = server.receive_report
    for i in range(n_lines):
        # distinct float fields per line: no small-object interning bonus
        receive_report(i * 0.25, QoSReport(
            time=i * 0.25, node_id=1000 + i % 10_000,
            user_id=i % 10_000, session_id=i % 40_000,
            continuity=(i % 101) / 100.0,
            buffered_seconds=(i % 240) / 10.0,
            n_parents=i % 6, playing=bool(i % 7),
        ))
    server.close()
    wall = perf_counter() - t0  # repro: noqa[DET002] benchmark stopwatch

    row = {
        "point": "ingest",
        "mode": mode,
        "lines": n_lines,
        "wall_s": round(wall, 3),
        "lines_per_s": round(n_lines / wall, 1),
        "peak_rss_mb": round(_peak_rss_mb(), 1),
    }
    if mode == "spill":
        spill_dir = Path(tmpdir) / "log"
        chunks = sorted(spill_dir.glob("chunk-*"))
        row["chunks"] = len(chunks)
        row["spill_bytes"] = sum(c.stat().st_size for c in chunks)
    return row


def measure_run(engine: str, n_users: int, mode: str) -> dict:
    """A real uniform_ramp run with the log in memory vs spilled."""
    from repro.runtime import run_scenario
    from repro.telemetry.sink import SPILL_ENV_VAR, set_spill_root
    from repro.workload.scenarios import uniform_ramp

    tmpdir = None
    if mode == "spill":
        tmpdir = tempfile.mkdtemp(prefix="bench-obs-run-")
        os.environ[SPILL_ENV_VAR] = tmpdir
        set_spill_root(tmpdir)

    scenario = uniform_ramp(
        n_users=n_users, horizon_s=300.0, ramp_frac=0.5,
        n_servers=max(3, n_users // 500),
    )
    t0 = perf_counter()  # repro: noqa[DET002] benchmark stopwatch
    res = run_scenario(scenario, seed=SEED, engine=engine)
    wall = perf_counter() - t0  # repro: noqa[DET002] benchmark stopwatch

    log = res.system.log
    n_lines = len(log)
    log.close()
    row = {
        "point": "run",
        "mode": mode,
        "engine": engine,
        "n_users": n_users,
        "log_lines": n_lines,
        "wall_s": round(wall, 3),
        "peak_rss_mb": round(_peak_rss_mb(), 1),
    }
    if tmpdir is not None:
        chunks = list(Path(tmpdir).rglob("chunk-*"))
        row["chunks"] = len(chunks)
        row["spill_bytes"] = sum(c.stat().st_size for c in chunks)
    return row


def _child_main(spec: str) -> int:
    kind, _, rest = spec.partition(":")
    if kind == "kernel":
        mode, _, count = rest.partition(":")
        row = measure_kernel(mode, int(count))
    elif kind == "ingest":
        mode, _, n = rest.partition(":")
        row = measure_ingest(mode, int(n))
    elif kind == "run":
        engine, n, mode = rest.split(":")
        row = measure_run(engine, int(n), mode)
    else:
        raise SystemExit(f"unknown child spec {spec!r}")
    print(json.dumps(row))
    return 0


def _run_child(spec: str) -> dict:
    env = dict(os.environ)
    env.pop("REPRO_LOG_SPILL", None)  # each child opts in explicitly
    env["PYTHONPATH"] = str(REPO_SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()), "--child", spec],
        env=env, capture_output=True, text=True,
    )
    if proc.returncode != 0:
        raise RuntimeError(f"bench point {spec} failed:\n{proc.stderr}")
    return json.loads(proc.stdout.strip().splitlines()[-1])


def _print_row(row: dict) -> None:
    extras = ""
    if "events_per_s" in row:
        extras = f"  {row['events_per_s']:>12,.0f} events/s"
    elif "lines_per_s" in row:
        extras = f"  {row['lines_per_s']:>12,.0f} lines/s"
    if "chunks" in row:
        extras += (f"  {row['chunks']} chunks"
                   f" ({row['spill_bytes'] / 1e6:.1f} MB gz)")
    print(f"[bench_obs] {row['point']:>6}/{row['mode']:<7} "
          f"{row['wall_s']:>8.2f}s  rss {row['peak_rss_mb']:>6.0f} MiB"
          + extras)


def _load_baseline(path: Path) -> dict:
    if not path.exists():
        return {}
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return {}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Observability overhead + log-spill RSS benchmark "
                    "(see BENCH_obs.json).",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="cheap points + tripwires only; does not "
                             "rewrite BENCH_obs.json")
    parser.add_argument("--max-overhead", type=float, default=2.0,
                        help="max tolerated enabled/disabled kernel wall "
                             "ratio in --smoke mode (default 2.0)")
    parser.add_argument("--out", type=Path, default=BENCH_JSON,
                        help="output path for the full-sweep JSON")
    parser.add_argument("--child", metavar="SPEC", default=None,
                        help=argparse.SUPPRESS)  # internal: one point
    args = parser.parse_args(argv)

    if args.child:
        sys.path.insert(0, str(REPO_SRC))
        return _child_main(args.child)

    kernel_events = KERNEL_EVENTS_SMOKE if args.smoke else KERNEL_EVENTS_FULL
    ingest_lines = INGEST_LINES_SMOKE if args.smoke else INGEST_LINES_FULL

    off = _run_child(f"kernel:off:{kernel_events}")
    on = _run_child(f"kernel:metrics:{kernel_events}")
    overhead = on["wall_s"] / off["wall_s"]
    for row in (off, on):
        _print_row(row)
    print(f"[bench_obs] enabled-mode kernel overhead: {overhead:.2f}x")

    mem = _run_child(f"ingest:memory:{ingest_lines}")
    spill = _run_child(f"ingest:spill:{ingest_lines}")
    for row in (mem, spill):
        _print_row(row)
    rss_saved = mem["peak_rss_mb"] - spill["peak_rss_mb"]
    print(f"[bench_obs] ingest rss: memory {mem['peak_rss_mb']:.0f} MiB vs "
          f"spill {spill['peak_rss_mb']:.0f} MiB ({rss_saved:+.0f} MiB)")

    if args.smoke:
        failures = []
        if overhead > args.max_overhead:
            failures.append(
                f"kernel overhead {overhead:.2f}x exceeds "
                f"{args.max_overhead:.2f}x")
        if spill["peak_rss_mb"] >= mem["peak_rss_mb"]:
            failures.append(
                f"spilled ingest rss {spill['peak_rss_mb']:.0f} MiB not "
                f"below in-memory {mem['peak_rss_mb']:.0f} MiB")
        if failures:
            for f in failures:
                print(f"[bench_obs] TRIPWIRE: {f}")
            return 1
        print("[bench_obs] tripwires OK")
        return 0

    # full mode: real runs -- 4k users memory vs spill, plus the 10k spill
    # point whose in-memory twin is the committed BENCH_scale.json row
    runs = []
    for spec in ("run:detailed:4000:memory", "run:detailed:4000:spill",
                 "run:detailed:10000:spill"):
        row = _run_child(spec)
        runs.append(row)
        _print_row(row)

    scale = _load_baseline(BENCH_DIR / "BENCH_scale.json")
    scale_10k_mem = next(
        (r.get("peak_rss_mb") for r in scale.get("scale_points", ())
         if r.get("engine") == "detailed" and r.get("n_users") == 10_000),
        None,
    )

    payload = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpus": os.cpu_count(),
        "seed": SEED,
        "kernel_overhead": {
            "events": kernel_events,
            "off": off,
            "metrics": on,
            "enabled_overhead_ratio": round(overhead, 3),
        },
        "synthetic_ingest": {
            "lines": ingest_lines,
            "memory": mem,
            "spill": spill,
            "rss_saved_mb": round(rss_saved, 1),
        },
        "runs": runs,
        "scale_baseline_10k_memory_rss_mb": scale_10k_mem,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[bench_obs] wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
