"""Resource-bottleneck benchmark (Section VI open problem, made concrete).

Sweeps peer upload capacity and shows how the system reacts to crossing
the supply/demand critical ratio of [23].  The instructive subtlety --
which the paper's own Section V.E warns about -- is *survivor bias*: an
under-provisioned system does not show low continuity; it sheds users
(failed joins, stall departures) until the survivors are well served.
The bottleneck is therefore visible in the admission metrics (success
fraction, sessions per user), not in the survivors' continuity.
"""

import numpy as np

from repro.analysis import SessionTable
from repro.analysis.continuity import mean_continuity
from repro.analysis.resources import supply_demand_snapshot
from repro.core.config import SystemConfig
from repro.core.system import CoolstreamingSystem
from repro.network.capacity import CapacityModel
from repro.workload.users import UserPopulation

N_USERS = 80
HORIZON = 700.0


def run_at_capacity_scale(scale: float, seed: int = 0):
    cfg = SystemConfig(n_servers=1, server_max_partners=12)
    system = CoolstreamingSystem(
        cfg, seed=seed, capacity_model=CapacityModel().scaled(scale)
    )
    population = UserPopulation(
        system,
        arrival_times=np.linspace(1.0, 80.0, N_USERS),
        silent_leave_prob=0.0,
    )
    for user in population.users:
        user.departure_deadline = HORIZON + 100.0  # everyone wants to stay
    population.attach()
    # capacity balance at the height of the join wave
    system.run(until=120.0)
    sd_peak = supply_demand_snapshot(system)
    system.run(until=HORIZON)
    cont = mean_continuity(system.log, after=350.0)
    table = SessionTable.from_log(system.log)
    return {
        "offered_ratio": sd_peak.supply_bps / (N_USERS * cfg.stream_rate_bps),
        "success": population.success_fraction(),
        "kept": system.concurrent_users / N_USERS,
        "sessions_per_user": len(table) / N_USERS,
        "survivor_continuity": cont,
    }


def test_bottleneck_shedding(benchmark):
    def run():
        return {
            scale: run_at_capacity_scale(scale, seed=20 + i)
            for i, scale in enumerate((0.25, 1.0, 2.0))
        }

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("scale | offered supply/demand | success | kept | sess/user | "
          "survivor continuity")
    for scale, m in rows.items():
        print(f"{scale:5g} | {m['offered_ratio']:21.2f} | "
              f"{m['success']:.3f} | {m['kept']:.3f} | "
              f"{m['sessions_per_user']:9.2f} | "
              f"{m['survivor_continuity']:.4f}")
    starved, provisioned = rows[0.25], rows[2.0]
    # the starved system sheds users: fewer kept, more retry sessions
    assert starved["kept"] < provisioned["kept"]
    assert starved["sessions_per_user"] > provisioned["sessions_per_user"]
    # survivor bias: the starved survivors still see decent continuity
    assert starved["survivor_continuity"] > 0.75
    # the provisioned system serves nearly everyone well
    assert provisioned["success"] > 0.85
    assert provisioned["survivor_continuity"] > 0.9
