"""Net-backend benchmark: a real 16-node localhost deployment.

Deploys the socket backend's full stack -- coordinator, dedicated
servers, user peers exchanging length-prefixed frames over TCP -- on a
small audience, and records the deployment-scale figures: nodes, blocks
delivered, control-plane message throughput, and the mean continuity
against a detailed-engine reference run of the *same* workload
realization (the parity harness's comparison, reduced to one number).

Key figures are written to ``benchmarks/BENCH_net.json`` so CI and
regression tooling can diff them across revisions.
"""

import json
import os
import platform
from pathlib import Path
from time import perf_counter

import pytest

from repro.core.config import SystemConfig
from repro.net.backend import NetBackend
from repro.net.config import NetConfig
from repro.runtime import run_scenario, sample_workload
from repro.workload.scenarios import uniform_ramp

BENCH_JSON = Path(__file__).resolve().parent / "BENCH_net.json"

SEED = 0
HORIZON_S = 240.0
N_USERS = 14          # + 2 servers = 16 nodes
TIME_SCALE = 40.0     # 240 virtual seconds in ~6s of wall time

_RESULTS = {}


@pytest.fixture(scope="module", autouse=True)
def _emit_bench_json():
    yield
    if _RESULTS:
        payload = {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
            "results": dict(sorted(_RESULTS.items())),
        }
        BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")


def _scenario():
    cfg = SystemConfig().with_overrides(status_report_period_s=30.0)
    return uniform_ramp(n_users=N_USERS, horizon_s=HORIZON_S,
                        n_servers=2, cfg=cfg)


def _blocks_delivered(system) -> int:
    """Contiguously received blocks summed over all user peers."""
    total = 0
    for peer in system.peers(alive_only=False):
        if peer.start_index is None:
            continue
        total += sum(h - peer.start_index + 1 for h in peer.heads)
    return total


def _run_net(scenario):
    backend = NetBackend(scenario, seed=SEED,
                         net=NetConfig(time_scale=TIME_SCALE))
    workload = sample_workload(scenario, SEED)
    backend.apply_workload(workload.times, workload.durations)
    for time_s, prob in workload.endings:
        backend.add_program_ending(time_s, prob)
    backend.run(scenario.horizon_s)
    return backend


def test_net_deployment_throughput(benchmark):
    """16-node localhost deployment: blocks, messages/s, continuity."""
    scenario = _scenario()
    t0 = perf_counter()
    backend = benchmark.pedantic(_run_net, args=(scenario,),
                                 rounds=1, iterations=1)
    wall = perf_counter() - t0
    metrics = backend.snapshot_metrics()
    messages = int(metrics["net.messages_sent"])
    blocks = _blocks_delivered(backend.system)
    assert messages > 0
    assert blocks > 0
    assert metrics["net.frames_rejected"] == 0

    # detailed reference on the byte-identical workload realization
    detailed = run_scenario(scenario, seed=SEED, engine="detailed")
    ref_continuity = detailed.metrics()["mean_continuity"]
    net_continuity = metrics["mean_continuity"]

    _RESULTS["peers"] = N_USERS + 2
    _RESULTS["horizon_virtual_s"] = HORIZON_S
    _RESULTS["wall_s"] = round(wall, 3)
    _RESULTS["blocks_delivered"] = blocks
    _RESULTS["messages_total"] = messages
    _RESULTS["messages_per_s"] = round(messages / wall, 1)
    _RESULTS["bytes_sent"] = int(metrics["net.bytes_sent"])
    _RESULTS["mean_continuity_net"] = round(net_continuity, 4)
    _RESULTS["mean_continuity_detailed"] = round(ref_continuity, 4)
    _RESULTS["continuity_gap"] = round(abs(net_continuity - ref_continuity), 4)
    print(f"\n[bench_net] {N_USERS + 2} nodes, {blocks} blocks, "
          f"{messages} messages in {wall:.2f}s "
          f"({messages / wall:,.0f} msg/s); continuity net "
          f"{net_continuity:.4f} vs detailed {ref_continuity:.4f}")
