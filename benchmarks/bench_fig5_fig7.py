"""Fig. 5 + Fig. 7 regeneration benchmarks (diurnal day, fastsim engine).

Paper shapes asserted:

* Fig. 5 -- audience ramps steeply into the evening peak and collapses at
  the ~22:00 program ending.
* Fig. 7 -- media-player-ready times are longest in the period with the
  highest join rate (the paper's period (iii), 17:30-20:29).
"""

from conftest import run_once

from repro.experiments import fig5_user_evolution, fig7_ready_time_by_period

DAY = 10_800.0  # a 3-hour "scaled day" (1 paper-hour ~ 7.5 min)


def test_fig5_user_evolution(benchmark):
    result = run_once(
        benchmark, fig5_user_evolution,
        seed=1, day_seconds=DAY, peak_rate=1.6, n_servers=5,
    )
    # the peak lands in the "evening" (after 70% of the day) ...
    assert result.metrics["peak_time_frac_of_day"] > 0.70
    # ... and the 22:00 ending wipes out most of the audience
    assert result.metrics["drop_after_program_end"] > 0.4
    assert result.metrics["peak_concurrent"] > 100


def test_fig7_ready_time_by_period(benchmark):
    result = run_once(
        benchmark, fig7_ready_time_by_period,
        seed=1, day_seconds=DAY, peak_rate=1.6, n_servers=5,
    )
    # paper: ready time "considerably longer during period (iii) when the
    # join rate is higher"
    assert result.metrics["peak_period_median_s"] >= (
        result.metrics["offpeak_median_s"]
    )
