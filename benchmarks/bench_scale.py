"""Scaling benchmark: events/s, wall time and peak RSS vs population size.

Paper context: the measured broadcast peaks at ~40,000 concurrent users
(Fig. 5), so engine throughput at four-digit-to-five-digit populations is
what decides whether paper-scale studies are reproducible here.  This
benchmark drives the ``uniform_ramp`` scenario (exactly ``N`` arrivals,
everyone stays -- the Fig. 9 sweep workload) through every engine in its
applicable range -- the detailed engine at N in {250, 1k, 4k, 10k}, the
fluid engine additionally at {50k, 100k}, the mean-field ODE backend at
{100k, 1M} -- and records:

* ``events_per_s`` / ``wall_s`` / ``peak_rss_mb`` for the detailed engine,
* ``peer_steps_per_s`` / ``wall_s`` / ``peak_rss_mb`` for the fluid and
  ODE engines (for the ODE backend the rate is *effective*: its step is
  O(1) in N, so the number is what a peer-level engine would have had to
  sustain),
* one extra row for the *shared runtime scenario* of ``bench_runtime.py``
  (288-user steady audience), so the detailed-engine figure is directly
  comparable with the committed ``BENCH_runtime.json`` baseline.

Every point runs in a fresh subprocess so ``ru_maxrss`` is the true peak
RSS of that point alone (not the max over earlier, larger runs) and so
allocator state cannot leak between points.

Usage::

    python benchmarks/bench_scale.py               # full sweep -> BENCH_scale.json
    python benchmarks/bench_scale.py --smoke       # N=250 only + perf tripwire
    python benchmarks/bench_scale.py --points 250 1000   # custom subset

``--smoke`` is the CI mode: it measures the smallest point only, does NOT
rewrite ``BENCH_scale.json``, and fails (exit 1) when detailed-engine
events/s regressed more than ``--tripwire-frac`` (default 0.30) below the
committed baseline -- a coarse gate that survives noisy CI machines while
still catching order-of-magnitude regressions.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import resource
import subprocess
import sys
from pathlib import Path
from time import perf_counter  # repro: noqa[DET002] benchmark stopwatch

BENCH_DIR = Path(__file__).resolve().parent
BENCH_JSON = BENCH_DIR / "BENCH_scale.json"
REPO_SRC = BENCH_DIR.parent / "src"

SEED = 0
SCALE_POINTS = (250, 1_000, 4_000, 10_000)
#: extra fluid-only points (the detailed engine is event-bound well below
#: these) and mean-field-only points (the ODE backend is O(1) in N, so it
#: is benchmarked where the fluid engine gives up)
FLUID_POINTS = (50_000, 100_000)
ODE_POINTS = (100_000, 1_000_000)
#: engine applicability thresholds for arbitrary --points values
DETAILED_MAX = 10_000
FLUID_MAX = 100_000
ODE_MIN = 100_000


def _engines_for(n_users: int):
    engines = []
    if n_users <= DETAILED_MAX:
        engines.append("detailed")
    if n_users <= FLUID_MAX:
        engines.append("fast")
    if n_users >= ODE_MIN:
        engines.append("ode")
    return tuple(engines)
#: scale_scenario geometry: N arrivals over the first half of the horizon,
#: then a steady fully-joined tail; servers provisioned with the audience.
HORIZON_S = 300.0
RAMP_FRAC = 0.5


def scale_scenario(n_users: int):
    """The N-user scaling workload (import deferred: child processes only
    pay for repro once)."""
    from repro.workload.scenarios import uniform_ramp

    return uniform_ramp(
        n_users=n_users,
        horizon_s=HORIZON_S,
        ramp_frac=RAMP_FRAC,
        n_servers=max(3, n_users // 500),
    )


def runtime_scenario():
    """The shared scenario of ``bench_runtime.py`` (288 users at seed 0)."""
    from repro.workload.scenarios import steady_audience

    return steady_audience(rate_per_s=0.5, horizon_s=600.0, n_servers=3)


def _peak_rss_mb() -> float:
    """This process's peak RSS in MiB (``ru_maxrss`` is KiB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def measure_point(engine: str, n_users: int) -> dict:
    """Run one (engine, N) point in-process and return its row."""
    from repro.runtime import run_scenario

    shared = n_users == 0  # sentinel: the bench_runtime shared scenario
    scenario = runtime_scenario() if shared else scale_scenario(n_users)
    t0 = perf_counter()  # repro: noqa[DET002] benchmark stopwatch
    res = run_scenario(scenario, seed=SEED, engine=engine)
    wall = perf_counter() - t0  # repro: noqa[DET002] benchmark stopwatch
    row: dict = {
        "engine": engine,
        "n_users": res.workload.n_users,
        "horizon_s": scenario.horizon_s,
        "n_servers": scenario.cfg.n_servers,
        "wall_s": round(wall, 3),
        "peak_rss_mb": round(_peak_rss_mb(), 1),
    }
    if shared:
        row["scenario"] = "steady_audience(rate=0.5/s, 600s)"
    if engine == "detailed":
        events = res.system.engine.events_processed
        row["events"] = events
        row["events_per_s"] = round(events / wall, 1)
    else:
        dt = res.sim.fast.dt if engine == "fast" else res.backend.ode.dt
        n_steps = int(scenario.horizon_s / dt)
        peak = float(res.metrics()["concurrent_users"])
        # audience integral: ramp to peak over RAMP_FRAC, then flat (the
        # steady shared scenario keeps bench_runtime's peak/2 convention)
        mean_alive = max(1.0, peak / 2.0 if shared
                         else peak * (1.0 - RAMP_FRAC / 2.0))
        row["steps"] = n_steps
        # for the ODE backend this is the *effective* rate: the step cost
        # is O(panel), not O(N), so the number states what the peer-level
        # engines would have had to sustain to match its wall time
        row["peer_steps_per_s"] = round(n_steps * mean_alive / wall, 1)
    return row


def _run_child(engine: str, n_users: int) -> dict:
    """Measure one point in a fresh interpreter; returns its JSON row."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()),
         "--child", f"{engine}:{n_users}"],
        env=env, capture_output=True, text=True,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"bench point {engine} N={n_users} failed:\n{proc.stderr}"
        )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def _load_baseline(path: Path) -> dict:
    if not path.exists():
        return {}
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return {}


def _baseline_smoke_rate(baseline: dict) -> float:
    """Committed detailed events/s at the smallest scale point (0 if absent)."""
    for row in baseline.get("scale_points", ()):
        if row.get("engine") == "detailed" and row.get("n_users") == SCALE_POINTS[0]:
            return float(row.get("events_per_s", 0.0))
    return 0.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Scaling benchmark: both engines at N in "
                    f"{list(SCALE_POINTS)} users (see BENCH_scale.json).",
    )
    parser.add_argument("--smoke", action="store_true",
                        help=f"measure only N={SCALE_POINTS[0]} and run the "
                             "perf tripwire against the committed baseline "
                             "(does not rewrite BENCH_scale.json)")
    parser.add_argument("--points", type=int, nargs="+", default=None,
                        metavar="N", help="explicit population sizes to run")
    parser.add_argument("--baseline", type=Path, default=BENCH_JSON,
                        help="baseline JSON for the tripwire "
                             "(default: committed BENCH_scale.json)")
    parser.add_argument("--tripwire-frac", type=float, default=0.30,
                        help="max tolerated fractional events/s regression "
                             "in --smoke mode (default 0.30)")
    parser.add_argument("--out", type=Path, default=BENCH_JSON,
                        help="output path for the full-sweep JSON")
    parser.add_argument("--child", metavar="ENGINE:N", default=None,
                        help=argparse.SUPPRESS)  # internal: one point
    args = parser.parse_args(argv)

    if args.child:
        engine, _, n = args.child.partition(":")
        sys.path.insert(0, str(REPO_SRC))
        print(json.dumps(measure_point(engine, int(n))))
        return 0

    if args.points:
        points = tuple(sorted(args.points))
    elif args.smoke:
        points = SCALE_POINTS[:1]
    else:
        points = tuple(sorted({*SCALE_POINTS, *FLUID_POINTS, *ODE_POINTS}))
    rows = []
    for n in points:
        for engine in _engines_for(n):
            row = _run_child(engine, n)
            rows.append(row)
            rate = row.get("events_per_s", row.get("peer_steps_per_s"))
            unit = "events/s" if engine == "detailed" else "peer-steps/s"
            print(f"[bench_scale] {engine:>8} N={n:>7}: "
                  f"{row['wall_s']:>8.2f}s  {rate:>13,.0f} {unit}  "
                  f"rss {row['peak_rss_mb']:.0f} MiB")

    if args.smoke:
        baseline_rate = _baseline_smoke_rate(_load_baseline(args.baseline))
        current = next(r["events_per_s"] for r in rows
                       if r["engine"] == "detailed")
        if baseline_rate <= 0:
            print("[bench_scale] no committed baseline; tripwire skipped")
            return 0
        floor = baseline_rate * (1.0 - args.tripwire_frac)
        verdict = "OK" if current >= floor else "REGRESSION"
        print(f"[bench_scale] tripwire: {current:,.0f} events/s vs baseline "
              f"{baseline_rate:,.0f} (floor {floor:,.0f}) -> {verdict}")
        return 0 if current >= floor else 1

    # full sweep: add the shared bench_runtime scenario row + the headline
    # improvement factor over the committed BENCH_runtime.json baseline
    shared = _run_child("detailed", 0)
    print(f"[bench_scale] detailed shared-runtime scenario "
          f"({shared['n_users']} users): {shared['wall_s']:.2f}s "
          f"{shared['events_per_s']:,.0f} events/s")
    runtime_baseline = _load_baseline(BENCH_DIR / "BENCH_runtime.json")
    base_rate = float(
        runtime_baseline.get("results", {}).get("detailed_events_per_s", 0.0)
    )
    payload = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpus": os.cpu_count(),
        "seed": SEED,
        "scale_points": rows,
        "runtime_scenario": {
            **{k: shared[k] for k in
               ("scenario", "n_users", "wall_s", "events", "events_per_s",
                "peak_rss_mb")},
            "baseline_events_per_s": base_rate,
            "improvement_factor": (
                round(shared["events_per_s"] / base_rate, 2) if base_rate else None
            ),
        },
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[bench_scale] wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
