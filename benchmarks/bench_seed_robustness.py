"""Seed-robustness benchmark.

Every other benchmark asserts a paper shape at one seed; this one checks
that the two headline claims are not seed-lucky by replicating across
three seeds and asserting the claim on the *worst* replicate:

* Fig. 3's contribution imbalance (a minority carries >80% of bytes);
* the Eq. 6 closed form's Monte Carlo agreement.
"""


from repro.experiments import (
    fig3_user_types_and_contribution,
    replicate,
    validate_dynamics_equations,
)


def test_fig3_claim_holds_across_seeds(benchmark):
    def run():
        return replicate(
            fig3_user_types_and_contribution,
            seeds=(0, 1, 2),
            name="fig3",
            rate_per_s=0.3,
            horizon_s=800.0,
        )

    rep = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(rep.render())
    share = rep.get("contributor_upload_share")
    assert share.n == 3
    # the >80% byte share holds for EVERY seed, not just the mean
    assert share.min > 0.80
    pop = rep.get("contributor_population_share")
    assert pop.max < 0.45


def test_eq6_agreement_across_seeds(benchmark):
    def run():
        return replicate(
            validate_dynamics_equations, seeds=(0, 1, 2, 3), name="eqs"
        )

    rep = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(rep.render())
    assert rep.get("eq6_max_abs_error").max < 0.02
    assert rep.get("eq3_max_rel_error").max < 0.15
