"""Fig. 9 + Fig. 10 regeneration benchmarks.

Paper shapes asserted:

* Fig. 9 -- continuity stays high and roughly flat as system size and
  join rate grow (the self-scaling claim), with a fixed server fleet.
* Fig. 10 -- session durations are heavy-tailed with a spike of
  sub-minute sessions; a noticeable fraction of users needs 1-2 retries.
"""

from conftest import run_once

from repro.experiments import fig9_scalability, fig10_sessions_and_retries


def test_fig9_scalability(benchmark):
    result = run_once(
        benchmark, fig9_scalability,
        seed=3, sizes=(150, 300, 600, 1200), join_rates=(0.5, 1.0, 2.0, 4.0),
        horizon_s=900.0,
    )
    # continuity stays high at every size and rate...
    assert result.metrics["size_sweep_min"] > 0.85
    assert result.metrics["rate_sweep_min"] > 0.85
    # ...and roughly flat across an 8x size range
    assert result.metrics["size_sweep_spread"] < 0.12


def test_fig10_sessions_and_retries(benchmark):
    result = run_once(
        benchmark, fig10_sessions_and_retries,
        seed=3, burst_users_per_s=3.5, horizon_s=1500.0, n_servers=3,
    )
    # a visible spike of short (<1 min) sessions from failed joins
    assert result.metrics["short_session_fraction"] > 0.03
    # the body is heavy-tailed: median well below the horizon
    assert result.metrics["median_duration_s"] < 0.5 * 1500.0
    # a noticeable share of users retried at least once
    assert result.metrics["retried_user_fraction"] > 0.02
