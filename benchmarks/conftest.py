"""Benchmark harness configuration.

Every benchmark runs its figure exactly once (``rounds=1``): these are
experiment regenerations, not micro-benchmarks, and a single run already
takes seconds.  The rendered figure is printed so that
``pytest benchmarks/ --benchmark-only -s`` reproduces the paper's tables
and series on stdout; EXPERIMENTS.md records the paper-vs-measured
comparison.
"""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer, print the
    rendered figure and return the result for assertions."""
    result = benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                rounds=1, iterations=1)
    if hasattr(result, "render"):
        print()
        print(result.render())
    return result
