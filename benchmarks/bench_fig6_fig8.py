"""Fig. 6 + Fig. 8 regeneration benchmarks (reference engine).

Paper shapes asserted:

* Fig. 6 -- start-subscription happens within seconds; the buffering wait
  (ready - subscription) sits in the 10-20 s band on average; the ready
  distribution is heavy-tailed.
* Fig. 8 -- every user type holds a high continuity index, and the
  *measured* NAT/firewall curves sit at or above direct-connect (the
  5-minute report-loss artefact), with only a marginal difference.
"""

from conftest import run_once

from repro.experiments import fig6_join_time_cdfs, fig8_continuity_by_type


def test_fig6_join_time_cdfs(benchmark):
    result = run_once(
        benchmark, fig6_join_time_cdfs,
        seed=2, burst_users_per_s=1.2, horizon_s=800.0,
    )
    # subscription is fast...
    assert result.metrics["median_start_subscription_s"] < 10.0
    # ...the buffer wait dominates, seconds-to-tens-of-seconds
    assert 2.0 < result.metrics["median_buffering_s"] < 25.0
    # heavy tail: p90 well beyond the median
    assert result.metrics["p90_ready_s"] > 1.5 * result.metrics["median_ready_s"]


def test_fig8_continuity_by_type(benchmark):
    result = run_once(
        benchmark, fig8_continuity_by_type,
        seed=2, rate_per_s=0.45, horizon_s=1800.0,
    )
    # paper: "all type of users experience very high continuity index"
    for key in ("mean_continuity_direct", "mean_continuity_nat"):
        assert result.metrics[key] > 0.9
    # paper: the difference between types is marginal...
    assert abs(result.metrics["nat_minus_direct"]) < 0.05
    # ...and the measured NAT curve does not fall below direct by more
    # than noise (the report-loss artefact pushes it up)
    assert result.metrics["nat_minus_direct"] > -0.02
