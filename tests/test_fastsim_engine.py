"""Tests for the vectorized engine."""

import numpy as np
import pytest

from repro.core.config import SystemConfig
from repro.fastsim import FastSimConfig, FastSimulation
from repro.fastsim.engine import _BUFFERING, _EMPTY, _PLAYING
from repro.telemetry.reports import (
    ActivityEvent,
    ActivityReport,
    QoSReport,
    TrafficReport,
)


def make_sim(n_servers=2, seed=0, **fast_kwargs):
    cfg = SystemConfig(n_servers=n_servers)
    fast = FastSimConfig(**fast_kwargs) if fast_kwargs else None
    return FastSimulation(cfg, fast, seed=seed, capacity_hint=256)


class TestSetup:
    def test_servers_occupy_low_slots(self):
        sim = make_sim(n_servers=3)
        assert (sim.state[:3] == _PLAYING).all()
        assert (sim.state[3:] == _EMPTY).all()

    def test_server_heads_track_edge(self):
        sim = make_sim()
        sim.run(until=50.0)
        assert sim.H[0, 0] == pytest.approx(49.0, abs=1.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FastSimConfig(dt=0.0)
        with pytest.raises(ValueError):
            FastSimConfig(catchup_factor=0.5)
        with pytest.raises(ValueError):
            FastSimConfig(nat_parent_prob=2.0)
        with pytest.raises(ValueError):
            FastSimConfig(join_overhead_s=-0.1)
        with pytest.raises(ValueError):
            FastSimConfig(max_children_factor=0)

    def test_misaligned_arrivals_rejected(self):
        sim = make_sim()
        with pytest.raises(ValueError):
            sim.add_arrivals(np.array([1.0, 2.0]), np.array([5.0]))


class TestLifecycle:
    def test_single_user_becomes_playing(self):
        sim = make_sim()
        sim.add_arrivals(np.array([5.0]), np.array([1000.0]))
        sim.run(until=60.0)
        assert sim.playing_users == 1
        assert sim.concurrent_users == 1

    def test_user_departs_at_intended_duration(self):
        sim = make_sim()
        sim.add_arrivals(np.array([5.0]), np.array([60.0]))
        sim.run(until=100.0)
        assert sim.concurrent_users == 0

    def test_activity_events_logged_in_order(self):
        sim = make_sim()
        sim.add_arrivals(np.array([5.0]), np.array([100.0]))
        sim.run(until=200.0)
        events = [
            r.event for r in sim.log.reports_of(ActivityReport)
        ]
        assert events[0] is ActivityEvent.JOIN
        assert ActivityEvent.START_SUBSCRIPTION in events
        assert ActivityEvent.PLAYER_READY in events
        assert events.count(ActivityEvent.JOIN) == 1

    def test_slot_reuse_after_departure(self):
        sim = make_sim()
        sim.add_arrivals(np.array([1.0, 100.0]), np.array([50.0, 50.0]))
        sim.run(until=200.0)
        # both sessions must have run; capacity stays small
        assert sim.sessions_spawned == 2

    def test_growth_beyond_capacity_hint(self):
        cfg = SystemConfig(n_servers=2)
        sim = FastSimulation(cfg, seed=0, capacity_hint=64)
        n = 200
        sim.add_arrivals(np.linspace(1, 50, n), np.full(n, 500.0))
        sim.run(until=100.0)
        # a couple of users may be mid-retry between sessions at the cut
        assert sim.concurrent_users >= n - 10
        assert sim.sessions_spawned >= n

    def test_program_ending_clears_audience(self):
        sim = make_sim()
        n = 30
        sim.add_arrivals(np.linspace(1, 10, n), np.full(n, 1000.0))
        sim.add_program_ending(100.0, leave_probability=1.0)
        sim.run(until=150.0)
        assert sim.concurrent_users == 0

    def test_program_ending_partial(self):
        sim = make_sim(seed=3)
        n = 60
        sim.add_arrivals(np.linspace(1, 10, n), np.full(n, 1000.0))
        sim.add_program_ending(100.0, leave_probability=0.5)
        sim.run(until=150.0)
        assert 10 < sim.concurrent_users < 50


class TestDataPlane:
    def test_heads_capped_by_parent(self):
        sim = make_sim()
        n = 10
        sim.add_arrivals(np.linspace(1, 5, n), np.full(n, 1000.0))
        sim.run(until=120.0)
        active = np.nonzero((sim.state == _PLAYING) | (sim.state == _BUFFERING))[0]
        for slot in active:
            for sub in range(sim.k):
                p = sim.parent[slot, sub]
                if p >= 0:
                    assert sim.H[slot, sub] <= sim.H[p, sub] + 1e-9

    def test_continuity_high_under_light_load(self):
        sim = make_sim(seed=5)
        n = 20
        sim.add_arrivals(np.linspace(1, 20, n), np.full(n, 1000.0))
        sim.run(until=300.0)
        assert sim.mean_continuity() > 0.9

    def test_children_counter_conserved(self):
        """sum(children) == number of live connections, across churn."""
        sim = make_sim(seed=7)
        n = 40
        sim.add_arrivals(np.linspace(1, 30, n), 100.0 + 100.0 * np.arange(n) % 300)
        for _ in range(400):
            sim.step()
            conn_count = int((sim.parent >= 0).sum())
            assert int(sim.children.sum()) == conn_count
            assert (sim.children >= 0).all()

    def test_bits_accounting_consistent(self):
        sim = make_sim(seed=5)
        n = 10
        sim.add_arrivals(np.linspace(1, 5, n), np.full(n, 1000.0))
        sim.run(until=200.0)
        # every downloaded bit was uploaded by someone
        assert sim.bits_down.sum() == pytest.approx(sim.bits_up.sum(), rel=1e-9)


class TestTelemetry:
    def test_status_reports_have_5min_cadence(self):
        sim = make_sim()
        sim.add_arrivals(np.array([0.0]), np.array([2000.0]))
        sim.run(until=1000.0)
        qos = list(sim.log.reports_of(QoSReport))
        assert 2 <= len(qos) <= 4

    def test_traffic_totals_monotone(self):
        sim = make_sim()
        sim.add_arrivals(np.array([0.0]), np.array([2000.0]))
        sim.run(until=1000.0)
        totals = [r.total_down for r in sim.log.reports_of(TrafficReport)]
        assert totals == sorted(totals)

    def test_retry_histogram_keys_nonnegative(self):
        sim = make_sim(seed=2)
        n = 30
        sim.add_arrivals(np.linspace(0, 10, n), np.full(n, 500.0))
        sim.run(until=300.0)
        hist = sim.retry_histogram()
        assert all(k >= 0 for k in hist)
        assert sum(hist.values()) <= n


class TestDeterminism:
    def test_same_seed_same_log(self):
        def run(seed):
            sim = make_sim(seed=seed)
            n = 15
            sim.add_arrivals(np.linspace(1, 20, n), np.full(n, 400.0))
            sim.run(until=300.0)
            return sim.log.dumps()

        assert run(4) == run(4)
        assert run(4) != run(5)
